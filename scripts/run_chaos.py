#!/usr/bin/env python
"""Seeded chaos soak runner (PR 6).

Runs :class:`repro.testing.chaos.ChaosScenario` over a batch of fixed
seeds and reports, per scenario, what was injected (controller crashes at
named failure points, ensemble faults, leader kills, duplicate and
retried submissions) and whether the end-to-end invariants held:

* exactly-once per idempotency token (no duplicate application),
* zero acked-transaction loss,
* logical model == physical devices (reconciler clean),
* a freshly recovered controller rebuilds the exact same model,
* no leaked locks.

Exit code 0 iff every scenario passes — this is what ``make chaos`` and
the CI chaos-smoke job run.  Seeds are fixed so failures reproduce:
re-run a single failing seed with ``--seeds N``.
"""

from __future__ import annotations

import argparse
import sys

from repro.testing.chaos import run_soak


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds",
        type=str,
        default="0-23",
        help="seed set: 'A-B' inclusive range or comma-separated list "
        "(default: 0-23)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=10,
        help="operations per scenario (default: 10)",
    )
    args = parser.parse_args(argv)

    if "-" in args.seeds and "," not in args.seeds:
        low, high = args.seeds.split("-", 1)
        seeds = list(range(int(low), int(high) + 1))
    else:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]

    reports = run_soak(seeds, num_ops=args.ops)
    for report in reports:
        print(report.summary())
    passed = sum(1 for r in reports if r.ok)
    crashes = sum(len(r.crashes) for r in reports)
    faults = sum(len(r.ensemble_faults) for r in reports)
    kills = sum(r.leader_kills for r in reports)
    dups = sum(r.duplicate_submits for r in reports)
    retries = sum(r.client_retries for r in reports)
    print(
        f"chaos soak: {passed}/{len(reports)} scenarios passed "
        f"({crashes} crashes, {faults} ensemble faults, {kills} leader "
        f"kills, {dups} duplicate submits, {retries} client retries)"
    )
    return 0 if passed == len(reports) else 1


if __name__ == "__main__":
    sys.exit(main())
