#!/usr/bin/env python
"""Merge benchmark outputs into one machine-readable BENCH JSON.

Combines the bench_writepath micro-benchmarks, the LARGE-fleet end-to-end
measurement, the sharded LARGE-fleet runs (PR 2), the pytest benchmark
fragments (sec 6.1 / 6.2) and the seed/PR 1 baselines into a single
document with computed speedup ratios, so future PRs have a perf
trajectory to compare against.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _load_fragments(path: str) -> list[dict]:
    fragments = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    fragments.append(json.loads(line))
    except FileNotFoundError:
        pass
    return fragments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--writepath", required=True)
    parser.add_argument("--large-fleet", required=True)
    parser.add_argument("--fragments", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--sharded", action="append", default=[],
                        help="path to a sharded measure_writepath JSON (repeatable)")
    parser.add_argument("--pr1", default=None,
                        help="BENCH_pr1.json for the single-controller reference")
    parser.add_argument("--pr2", default=None,
                        help="BENCH_pr2.json for the sharded single-shard reference")
    parser.add_argument("--pr3", default=None,
                        help="BENCH_pr3.json for the 2PC-era single-shard reference")
    parser.add_argument("--pr4", default=None,
                        help="BENCH_pr4.json for the replica-era single-shard "
                             "and fleet-view references (PR 5 gates)")
    parser.add_argument("--pr5", default=None,
                        help="BENCH_pr5.json for the snapshot-era single-shard "
                             "reference (PR 6 gate)")
    parser.add_argument("--pr6", default=None,
                        help="BENCH_pr6.json for the fault-tolerance-era "
                             "single-shard reference (PR 7 gate)")
    parser.add_argument("--pr8", default=None,
                        help="write-path reference for the PR 9 gate.  PR 8 "
                             "(the static invariant analyzer) shipped no "
                             "benchmark, so pass BENCH_pr7.json — the last "
                             "measured write path before PR 9")
    parser.add_argument("--pr9", default=None,
                        help="BENCH_pr9.json for the PR 10 gates: the "
                             "pipelined + optimised write path must beat "
                             "the PR 9 single-shard reference outright, "
                             "and its depth-1 (serial) configuration must "
                             "not regress against it")
    parser.add_argument("--pipeline-sweep", default=None,
                        help="pipeline-depth sweep JSON (measure_writepath "
                             "--depth-sweep; PR 10)")
    parser.add_argument("--cross-shard", default=None,
                        help="cross-shard 2PC mix measure_writepath JSON (PR 3)")
    parser.add_argument("--cross-shard-sweep", default=None,
                        help="cross-shard shard-scaling sweep JSON "
                             "(measure_writepath --cross-shard-mix "
                             "--shard-sweep; PR 9)")
    parser.add_argument("--replica", default=None,
                        help="measure_replica JSON (PR 4: staleness, catch-up, "
                             "read throughput, partial-hosting fleet view)")
    parser.add_argument("--pr", type=int, default=1)
    parser.add_argument("--min-ratio", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="fail (exit 1) unless ratios[NAME] >= VALUE; "
                             "repeatable — this is how acceptance gates "
                             "(e.g. single_shard_vs_pr3=0.9) are enforced "
                             "rather than merely recorded")
    parser.add_argument("--out", required=True)
    args = parser.parse_args()

    large = _load(args.large_fleet)
    baseline = _load(args.baseline)
    seed_bench = baseline["bench_config"]

    ratios = {
        "throughput_vs_seed": round(
            large["throughput_txn_s"] / seed_bench["throughput_txn_s"], 2
        ),
        "write_round_trips_per_commit_reduction": round(
            seed_bench["writes_per_commit"] / max(large["writes_per_commit"], 1e-9), 2
        ),
        "bytes_per_commit_reduction": round(
            seed_bench["bytes_per_commit"] / max(large["bytes_per_commit"], 1e-9), 2
        ),
    }

    if args.pr >= 10:
        subsystem = (
            "pipelined group commit: the controller step loop is split "
            "into a CPU stage (drain/handle/simulate/lock, writes "
            "buffered into sealed steps) and an I/O stage (one merged "
            "group-commit flush per bounded window, then per-step "
            "post-durability effects in seal order), with batched "
            "checkpoint write phases and an apply-once shared-tree "
            "ensemble; depth 1 is byte-for-byte the serial path, proven "
            "by three new crash edges in the fault matrix, a depth-3 "
            "chaos soak and the ack-before-flush analyzer rule"
        )
    elif args.pr >= 9:
        subsystem = (
            "concurrent cross-shard 2PC: the fleet-wide prepare ticket is "
            "replaced by wound-wait on txid order (disjoint cross-shard "
            "prepares run in parallel; an older blocked transaction wounds "
            "a younger PREPARING holder through the presumed-abort path, "
            "younger waits on older), proven by a deterministic "
            "interleaving + hypothesis property harness and new wound "
            "crash points in the fault matrix"
        )
    elif args.pr >= 7:
        subsystem = (
            "cross-shard-atomic replica reads: decision-log-aware read "
            "fence (advance past durable 2PC decisions or atomically "
            "exclude the in-flight transaction) + causally stitched "
            "multi-shard delta streams (barrier-held prefixes) + "
            "per-subtree fleet-view cache patching keyed by per-shard "
            "source kind"
        )
    elif args.pr >= 5:
        subsystem = (
            "O(1) copy-on-write model snapshots (structural-sharing forks, "
            "path-copying writers) + cached fleet-view merge from shared "
            "grafts + per-subtree delta subscriptions on read replicas + "
            "per-coordinator 2PC decision keys with retired-shard sweep + "
            "simulation-time foreign-write detection"
        )
    elif args.pr == 4:
        subsystem = (
            "per-shard read replicas + ReadProxy (fleet-wide reads from any "
            "process, watch-driven committed-log tailing, watermark-stamped "
            "consistency levels) + 2PC decision-record GC + prepare deadline"
        )
    elif args.pr == 3:
        subsystem = (
            "cross-shard two-phase commit (coordinator/participant shard "
            "leaders, prepare records, global decision log) + dispatch-loss "
            "window fix (dispatch epochs, worker claim records)"
        )
    elif args.pr == 2:
        subsystem = (
            "subtree-sharded controller scale-out + submit-side batching + "
            "watch-driven queue consumers"
        )
    else:
        subsystem = (
            "controller write path (group commit, incremental "
            "checkpoints, path interning, batched scheduling)"
        )
    result = {
        "pr": args.pr,
        "subsystem": subsystem,
        "seed_baseline": baseline,
        "large_fleet": large,
        "ratios": ratios,
        "micro": _load(args.writepath),
        "pytest_benchmarks": _load_fragments(args.fragments),
    }

    if args.pr1:
        pr1 = _load(args.pr1)
        pr1_tput = pr1["large_fleet"]["throughput_txn_s"]
        result["pr1_reference"] = {
            "throughput_txn_s": pr1_tput,
            "writes_per_commit": pr1["large_fleet"]["writes_per_commit"],
        }
        ratios["single_shard_vs_pr1"] = round(
            large["throughput_txn_s"] / pr1_tput, 2
        )
    if args.pr2:
        pr2 = _load(args.pr2)
        pr2_tput = pr2["large_fleet"]["throughput_txn_s"]
        result["pr2_reference"] = {
            "throughput_txn_s": pr2_tput,
            "writes_per_commit": pr2["large_fleet"]["writes_per_commit"],
        }
        ratios["single_shard_vs_pr2"] = round(
            large["throughput_txn_s"] / pr2_tput, 2
        )
    if args.sharded:
        sharded = [_load(path) for path in args.sharded]
        sharded.sort(key=lambda r: r["shards"])
        result["sharded_large_fleet"] = sharded
        if args.pr1:
            for run in sharded:
                ratios[f"sharded{run['shards']}_aggregate_vs_pr1"] = round(
                    run["aggregate_throughput_txn_s"] / pr1_tput, 2
                )
            single = large["throughput_txn_s"]
            for run in sharded:
                ratios[f"sharded{run['shards']}_scaling_vs_single_shard"] = round(
                    run["aggregate_throughput_txn_s"] / single, 2
                )
    if args.pr3:
        pr3 = _load(args.pr3)
        pr3_tput = pr3["large_fleet"]["throughput_txn_s"]
        result["pr3_reference"] = {
            "throughput_txn_s": pr3_tput,
            "writes_per_commit": pr3["large_fleet"]["writes_per_commit"],
        }
        # The PR 4 acceptance gate: the replica subsystem is read-only, so
        # single-shard write throughput must stay within 0.9x of PR 3.
        ratios["single_shard_vs_pr3"] = round(
            large["throughput_txn_s"] / pr3_tput, 2
        )
    if args.pr4:
        pr4 = _load(args.pr4)
        pr4_tput = pr4["large_fleet"]["throughput_txn_s"]
        result["pr4_reference"] = {
            "throughput_txn_s": pr4_tput,
            "writes_per_commit": pr4["large_fleet"]["writes_per_commit"],
            "fleet_views_per_s": pr4.get("replica", {})
            .get("fleet_view", {})
            .get("fleet_views_per_s"),
        }
        # The PR 5 write-path gate: snapshots/subscriptions are read-side,
        # so single-shard write throughput must stay within 0.9x of PR 4.
        ratios["single_shard_vs_pr4"] = round(
            large["throughput_txn_s"] / pr4_tput, 2
        )
    if args.pr5:
        pr5 = _load(args.pr5)
        pr5_tput = pr5["large_fleet"]["throughput_txn_s"]
        result["pr5_reference"] = {
            "throughput_txn_s": pr5_tput,
            "writes_per_commit": pr5["large_fleet"]["writes_per_commit"],
        }
        # The PR 6 gate: fault tolerance (token index, typed errors,
        # session recovery) must not tax the happy write path — stay
        # within 0.9x of the PR 5 single-shard throughput.
        ratios["single_shard_vs_pr5"] = round(
            large["throughput_txn_s"] / pr5_tput, 2
        )
    if args.pr6:
        pr6 = _load(args.pr6)
        pr6_tput = pr6["large_fleet"]["throughput_txn_s"]
        result["pr6_reference"] = {
            "throughput_txn_s": pr6_tput,
            "writes_per_commit": pr6["large_fleet"]["writes_per_commit"],
        }
        # The PR 7 gate: the read fence and stitched streams live entirely
        # on the read side — single-shard write throughput must stay
        # within 0.9x of PR 6.
        ratios["single_shard_vs_pr6"] = round(
            large["throughput_txn_s"] / pr6_tput, 2
        )
    if args.pr8:
        pr8 = _load(args.pr8)
        pr8_tput = pr8["large_fleet"]["throughput_txn_s"]
        result["pr8_reference"] = {
            "throughput_txn_s": pr8_tput,
            "writes_per_commit": pr8["large_fleet"]["writes_per_commit"],
            "source": args.pr8,
        }
        # The PR 9 gate: wound-wait replaces a coordination znode pair
        # with local txid comparisons, so the single-shard write path
        # (which never touched the ticket) must stay within 0.9x of the
        # last measured write path (BENCH_pr7.json; PR 8 was analysis-only).
        ratios["single_shard_vs_pr8"] = round(
            large["throughput_txn_s"] / pr8_tput, 2
        )
    pr9_tput = None
    if args.pr9:
        pr9 = _load(args.pr9)
        pr9_tput = pr9["large_fleet"]["throughput_txn_s"]
        result["pr9_reference"] = {
            "throughput_txn_s": pr9_tput,
            "writes_per_commit": pr9["large_fleet"]["writes_per_commit"],
        }
        # The PR 10 gate: this PR is the perf work itself, so the bar is
        # an outright win (>= 1.25x), not the usual don't-regress 0.9x.
        ratios["single_shard_vs_pr9"] = round(
            large["throughput_txn_s"] / pr9_tput, 2
        )
        # Round-trip discipline as a gateable ratio: >= 1.0 iff the
        # pipelined run needs no more write round-trips per commit than
        # the 0.29 the write path has held since PR 3.
        ratios["writes_per_commit_headroom"] = round(
            0.29 / max(large["writes_per_commit"], 1e-9), 2
        )
    if args.pipeline_sweep:
        sweep_doc = _load(args.pipeline_sweep)
        result["pipeline_depth_sweep"] = sweep_doc
        depth1 = next(
            (e for e in sweep_doc["sweep"] if e.get("pipeline_depth") == 1), None
        )
        if depth1 is not None and pr9_tput:
            # The PR 10 pay-for-what-you-use gate: pipeline_depth=1 is the
            # serial write path byte-for-byte, so with the window disabled
            # the new loop must not regress against the PR 9 reference.
            ratios["pipeline_depth1_vs_pr9"] = round(
                depth1["throughput_txn_s"] / pr9_tput, 2
            )
    if args.cross_shard:
        cross = _load(args.cross_shard)
        result["cross_shard_mix"] = cross
        ratios["cross_shard_mix_vs_single_shard"] = round(
            cross["throughput_txn_s"] / large["throughput_txn_s"], 2
        )
    if args.cross_shard_sweep:
        sweep_doc = _load(args.cross_shard_sweep)
        result["cross_shard_sweep"] = sweep_doc
        entries = sorted(sweep_doc["sweep"], key=lambda e: e["shards"])
        for previous, current in zip(entries, entries[1:]):
            # The PR 9 scaling gate: cross-shard aggregate throughput at a
            # fixed mix must strictly increase with the shard count (the
            # fleet-wide ticket made it flat).
            ratios[
                f"cross_shard_agg_{current['shards']}_vs_{previous['shards']}"
            ] = round(
                current["aggregate_throughput_txn_s"]
                / max(previous["aggregate_throughput_txn_s"], 1e-9),
                2,
            )
    if args.replica:
        replica = _load(args.replica)
        result["replica"] = replica
        views = replica.get("fleet_view", {}).get("fleet_views_per_s")
        pr4_views = (result.get("pr4_reference") or {}).get("fleet_views_per_s")
        if views and pr4_views:
            # The PR 5 read-path gate: >= 20x the PR 4 locked-clone rate.
            ratios["fleet_view_vs_pr4"] = round(views / pr4_views, 2)
        scaling = replica.get("snapshot_scaling")
        if scaling:
            # O(1) evidence as a gateable ratio: smallest-model fork cost
            # over largest-model fork cost (~1.0 when size-independent;
            # a deep copy would push it toward 1/size_ratio).
            ratios["snapshot_size_independence"] = round(
                1.0 / max(scaling["cow_cost_ratio_largest_vs_smallest"], 1e-9), 2
            )
        fenced = replica.get("fenced_fleet_view")
        if fenced:
            # The PR 7 read-path gate: the decision-log fence may not cost
            # more than half the unfenced replica-view throughput under a
            # sustained cross-shard commit mix.
            ratios["fenced_fleet_view_vs_unfenced"] = round(
                fenced["fenced_views_per_s"]
                / max(fenced["unfenced_views_per_s"], 1e-9),
                2,
            )

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    print(json.dumps(ratios, indent=2, sort_keys=True))

    failures = []
    for gate in args.min_ratio:
        name, _, threshold = gate.partition("=")
        try:
            minimum = float(threshold)
        except ValueError:
            failures.append(f"gate {gate!r}: malformed, expected NAME=VALUE")
            continue
        if name not in ratios:
            failures.append(f"gate {gate!r}: no such ratio (have {sorted(ratios)})")
        elif ratios[name] < minimum:
            failures.append(
                f"gate {gate!r} FAILED: ratios[{name!r}] = {ratios[name]}"
            )
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
