#!/usr/bin/env python
"""Measure controller write-path performance (logical-only fleet).

Runs the §6.1-style scalability workload at one fleet size and reports
throughput plus coordination-store I/O per committed transaction.  The
script works against both the seed implementation and the batched
write-path implementation: store *write round-trips* are counted by
wrapping the coordination-ensemble entry points (``create``, ``set``,
``delete``, and — when present — ``upsert`` and ``multi``), so a multi-op
group commit counts as a single round-trip, exactly as a ZooKeeper
``multi()`` would be.

Usage:
    PYTHONPATH=src python scripts/measure_writepath.py [--hosts N] [--txns N] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.common.config import TropicConfig  # noqa: E402
from repro.coordination.ensemble import CoordinationEnsemble  # noqa: E402
from repro.metrics.collectors import MemoryEstimator  # noqa: E402
from repro.tcloud.service import build_tcloud  # noqa: E402

WRITE_METHODS = ("create", "set", "delete", "upsert", "multi")


class WriteCounter:
    """Counts write round-trips by wrapping ensemble write entry points."""

    def __init__(self, ensemble: CoordinationEnsemble):
        self.round_trips = 0
        self.bytes_written = 0
        self._ensemble = ensemble
        self._originals = {}
        for name in WRITE_METHODS:
            original = getattr(ensemble, name, None)
            if original is None:
                continue
            self._originals[name] = original
            setattr(ensemble, name, self._wrap(name, original))

    def _wrap(self, name, original):
        def wrapper(*args, **kwargs):
            self.round_trips += 1
            if name in ("create", "set", "upsert") and len(args) >= 3:
                self.bytes_written += len(str(args[2]))
            elif name == "multi" and len(args) >= 2:
                for op in args[1]:
                    if len(op) >= 3 and op[2] is not None:
                        self.bytes_written += len(str(op[2]))
            return original(*args, **kwargs)

        return wrapper


def run(num_hosts: int, txn_batch: int, checkpoint_every: int) -> dict:
    config = TropicConfig(logical_only=True, checkpoint_every=checkpoint_every)
    cloud = build_tcloud(
        num_vm_hosts=num_hosts,
        num_storage_hosts=max(num_hosts // 4, 1),
        host_mem_mb=65536,
        config=config,
        logical_only=True,
    )
    with cloud.platform:
        counter = WriteCounter(cloud.platform.ensemble)
        ops_before = cloud.platform.ensemble.op_count
        model = cloud.platform.leader().model
        start = time.perf_counter()
        handles = []
        for index in range(txn_batch):
            host = cloud.inventory.vm_hosts[index % num_hosts]
            storage = cloud.inventory.storage_hosts[index % len(cloud.inventory.storage_hosts)]
            handles.append(
                cloud.platform.submit(
                    "spawnVM",
                    {
                        "vm_name": f"scale-vm-{index}",
                        "image_template": "template-small",
                        "storage_host": storage,
                        "vm_host": host,
                        "mem_mb": 512,
                    },
                    wait=False,
                )
            )
        cloud.platform.run_until_idle()
        results = [handle.wait(timeout=120.0) for handle in handles]
        elapsed = time.perf_counter() - start
        committed = sum(txn.state.value == "committed" for txn in results)
        return {
            "hosts": num_hosts,
            "txns": txn_batch,
            "committed": committed,
            "elapsed_s": round(elapsed, 4),
            "throughput_txn_s": round(committed / elapsed, 2),
            "store_write_round_trips": counter.round_trips,
            "writes_per_commit": round(counter.round_trips / max(committed, 1), 2),
            "store_bytes_written": counter.bytes_written,
            "bytes_per_commit": round(counter.bytes_written / max(committed, 1), 1),
            "total_ops": cloud.platform.ensemble.op_count - ops_before,
            "ops_per_commit": round(
                (cloud.platform.ensemble.op_count - ops_before) / max(committed, 1), 2
            ),
            "model_memory_mb": round(MemoryEstimator.estimate_bytes(model) / 1e6, 2),
            "checkpoint_every": checkpoint_every,
        }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=int(os.environ.get("TROPIC_BENCH_SCALE_LARGE", 800)))
    parser.add_argument("--txns", type=int, default=int(os.environ.get("TROPIC_BENCH_SCALE_TXNS", 150)))
    parser.add_argument("--checkpoint-every", type=int, default=50)
    parser.add_argument("--repeat", type=int, default=1,
                        help="run the workload N times and report the run with "
                             "the median throughput (wall-clock noise on shared "
                             "machines easily swings a single run +/-20%%)")
    parser.add_argument("--json", type=str, default=None, help="write result JSON to this path")
    args = parser.parse_args()

    runs = [run(args.hosts, args.txns, args.checkpoint_every)
            for _ in range(max(args.repeat, 1))]
    runs.sort(key=lambda r: r["throughput_txn_s"])
    result = dict(runs[len(runs) // 2])
    if len(runs) > 1:
        result["throughput_runs"] = [r["throughput_txn_s"] for r in runs]
    print(json.dumps(result, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
