#!/usr/bin/env python
"""Measure controller write-path performance (logical-only fleet).

Runs the §6.1-style scalability workload at one fleet size and reports
throughput plus coordination-store I/O per committed transaction.  The
script works against both the seed implementation and the batched
write-path implementation: store *write round-trips* are counted by
wrapping the coordination-ensemble entry points (``create``, ``set``,
``delete``, and — when present — ``upsert`` and ``multi``), so a multi-op
group commit counts as a single round-trip, exactly as a ZooKeeper
``multi()`` would be.

With ``--shards N`` the workload is partitioned over N subtree-sharded
controller deployments.  Shards share nothing (each has its own
coordination ensemble, store namespace, queues and election), so each
shard is measured as its own isolated deployment serving its partition of
the fleet, and the *aggregate* throughput is the sum of per-shard rates —
the capacity of a scale-out deployment running one shard per core or
machine.  On a multi-core box the shards genuinely run in parallel; this
container is single-core, so the shards are measured back-to-back instead
of concurrently (concurrent measurement on one core would only interleave
them and measure the same total).  The per-shard numbers and the
serialized wall clock are reported alongside the aggregate so nothing is
hidden.

Usage:
    PYTHONPATH=src python scripts/measure_writepath.py [--hosts N] [--txns N]
        [--shards N] [--json OUT]
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.common.config import TropicConfig  # noqa: E402
from repro.coordination.ensemble import CoordinationEnsemble  # noqa: E402
from repro.metrics.collectors import MemoryEstimator  # noqa: E402
from repro.tcloud.service import build_tcloud  # noqa: E402

WRITE_METHODS = ("create", "set", "delete", "upsert", "multi")


@contextlib.contextmanager
def quiesced_gc():
    """Benchmark hygiene for the timed region: collect garbage up front,
    then freeze the surviving (permanent) object graph so an incidental
    generation-2 collection does not traverse the whole fleet model
    mid-measurement.  The collector stays *enabled* — allocation churn from
    the write path itself is still collected and therefore still measured;
    only the multi-hundred-thousand-object bootstrap graph is exempted,
    which is what cuts run-to-run variance from ~±15% to ~±2%."""
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


class WriteCounter:
    """Counts write round-trips by wrapping ensemble write entry points."""

    def __init__(self, ensemble: CoordinationEnsemble):
        self.round_trips = 0
        self.bytes_written = 0
        self._ensemble = ensemble
        self._originals = {}
        for name in WRITE_METHODS:
            original = getattr(ensemble, name, None)
            if original is None:
                continue
            self._originals[name] = original
            setattr(ensemble, name, self._wrap(name, original))

    def _wrap(self, name, original):
        def wrapper(*args, **kwargs):
            self.round_trips += 1
            if name in ("create", "set", "upsert") and len(args) >= 3:
                self.bytes_written += len(str(args[2]))
            elif name == "multi" and len(args) >= 2:
                for op in args[1]:
                    if len(op) >= 3 and op[2] is not None:
                        self.bytes_written += len(str(op[2]))
            return original(*args, **kwargs)

        return wrapper


def run(
    num_hosts: int,
    txn_batch: int,
    checkpoint_every: int,
    num_shards: int = 1,
    shard: int | None = None,
    pipeline_depth: int = 1,
) -> dict:
    """One deployment's workload.  ``shard`` restricts the deployment to
    hosting that shard of an ``num_shards``-way partition and submits only
    transactions its subtrees own.  ``pipeline_depth`` sets the commit
    pipeline's in-flight window (PR 10; 1 = the serial write path)."""
    config = TropicConfig(
        logical_only=True,
        checkpoint_every=checkpoint_every,
        num_shards=num_shards,
        pipeline_depth=pipeline_depth,
    )
    cloud = build_tcloud(
        num_vm_hosts=num_hosts,
        num_storage_hosts=max(num_hosts // 4, 1),
        host_mem_mb=65536,
        config=config,
        logical_only=True,
        local_shards=None if shard is None else [shard],
    )
    with cloud.platform:
        router = cloud.platform.shard_router
        if shard is None:
            host_indices = list(range(num_hosts))
        else:
            host_indices = [
                index
                for index in range(num_hosts)
                if router.shard_of(cloud.inventory.vm_hosts[index]) == shard
            ]
        if not host_indices:
            raise SystemExit(
                f"shard {shard} owns no compute hosts at {num_hosts} hosts / "
                f"{num_shards} shards; use a larger fleet or fewer shards"
            )
        # Interleave hosts across storage groups: spawnVM write-locks its
        # storage host, so consecutive submissions sharing one would
        # conflict and fragment the scheduling pipeline into deferrals —
        # an artifact of submission order, not of the write path under test.
        by_storage: dict[str, list[int]] = {}
        for index in host_indices:
            by_storage.setdefault(cloud.inventory.storage_host_for(index), []).append(index)
        groups = list(by_storage.values())
        host_indices = [
            group[position]
            for position in range(max(len(g) for g in groups))
            for group in groups
            if position < len(group)
        ]
        requests = []
        for index in range(txn_batch):
            host_index = host_indices[index % len(host_indices)]
            requests.append(
                (
                    "spawnVM",
                    {
                        "vm_name": f"scale-vm-{index}",
                        "image_template": "template-small",
                        "storage_host": cloud.inventory.storage_host_for(host_index),
                        "vm_host": cloud.inventory.vm_hosts[host_index],
                        "mem_mb": 512,
                    },
                )
            )
        counter = WriteCounter(cloud.platform.ensemble)
        ops_before = cloud.platform.ensemble.op_count
        model = cloud.platform.leader(shard).model
        with quiesced_gc():
            start = time.perf_counter()
            # Submit-side batching: one store group commit + one queue group
            # write for the whole batch (the PR 2 client write path).
            handles = cloud.platform.submit_many(requests, wait=False)
            cloud.platform.run_until_idle()
            results = [handle.wait(timeout=120.0) for handle in handles]
            elapsed = time.perf_counter() - start
        committed = sum(txn.state.value == "committed" for txn in results)
        result = {
            "hosts": num_hosts,
            "txns": txn_batch,
            "committed": committed,
            "elapsed_s": round(elapsed, 4),
            "throughput_txn_s": round(committed / elapsed, 2),
            "store_write_round_trips": counter.round_trips,
            "writes_per_commit": round(counter.round_trips / max(committed, 1), 2),
            "store_bytes_written": counter.bytes_written,
            "bytes_per_commit": round(counter.bytes_written / max(committed, 1), 1),
            "total_ops": cloud.platform.ensemble.op_count - ops_before,
            "ops_per_commit": round(
                (cloud.platform.ensemble.op_count - ops_before) / max(committed, 1), 2
            ),
            "model_memory_mb": round(MemoryEstimator.estimate_bytes(model) / 1e6, 2),
            "checkpoint_every": checkpoint_every,
            "pipeline_depth": pipeline_depth,
            "pipeline": cloud.platform.leader(shard).io_stats().get("pipeline", {}),
        }
        if shard is not None:
            result["shard"] = shard
            result["owned_hosts"] = len(host_indices)
        return result


def run_cross_shard_mix(
    num_hosts: int,
    txn_batch: int,
    checkpoint_every: int,
    num_shards: int,
    mix: float,
    submit_shard: int | None = None,
) -> dict:
    """Throughput of a workload where a fraction ``mix`` of the spawns
    span two shards (VM on one shard, disk image on another) under
    ``cross_shard_policy='2pc'``.

    Runs one deployment hosting *all* shards (cross-shard transactions
    need every participant reachable), so the number reflects the cost
    of the 2PC protocol — prepare/vote/decision round-trips plus
    wound-wait contention where read/write sets actually collide; since
    PR 9 there is no fleet-wide prepare admission, so disjoint
    cross-shard prepares run concurrently.

    ``submit_shard`` restricts submissions to VM hosts owned by that
    shard (the cross fraction still pairs them with a foreign storage
    host).  The shard-scaling sweep uses this to measure each shard's
    submission stream as its own deployment and sum the rates, exactly
    like the share-nothing sharded measurement.
    """
    config = TropicConfig(
        logical_only=True,
        checkpoint_every=checkpoint_every,
        num_shards=num_shards,
        cross_shard_policy="2pc",
    )
    cloud = build_tcloud(
        num_vm_hosts=num_hosts,
        num_storage_hosts=max(num_hosts // 4, 1),
        host_mem_mb=65536,
        config=config,
        logical_only=True,
    )
    with cloud.platform:
        router = cloud.platform.shard_router
        storage_by_shard: dict[int, list[str]] = {}
        for host in cloud.inventory.storage_hosts:
            storage_by_shard.setdefault(router.shard_of(host), []).append(host)
        if submit_shard is None:
            host_indices = list(range(num_hosts))
        else:
            host_indices = [
                index
                for index in range(num_hosts)
                if router.shard_of(cloud.inventory.vm_hosts[index]) == submit_shard
            ]
            if not host_indices:
                raise SystemExit(
                    f"shard {submit_shard} owns no compute hosts at "
                    f"{num_hosts} hosts / {num_shards} shards"
                )
        cross_every = max(int(round(1.0 / mix)), 1) if mix > 0 else 0
        requests = []
        cross_submitted = 0
        for index in range(txn_batch):
            host_index = host_indices[index % len(host_indices)]
            vm_host = cloud.inventory.vm_hosts[host_index]
            storage_host = cloud.inventory.storage_host_for(host_index)
            if cross_every and index % cross_every == 0:
                home = router.shard_of(vm_host)
                foreign = [
                    hosts for shard, hosts in storage_by_shard.items() if shard != home
                ]
                if foreign:
                    storage_host = foreign[0][cross_submitted % len(foreign[0])]
                    cross_submitted += 1
            requests.append(
                (
                    "spawnVM",
                    {
                        "vm_name": f"mix-vm-{index}",
                        "image_template": "template-small",
                        "storage_host": storage_host,
                        "vm_host": vm_host,
                        "mem_mb": 512,
                    },
                )
            )
        counter = WriteCounter(cloud.platform.ensemble)
        with quiesced_gc():
            start = time.perf_counter()
            handles = cloud.platform.submit_many(requests, wait=False)
            cloud.platform.run_until_idle()
            results = [handle.wait(timeout=240.0) for handle in handles]
            elapsed = time.perf_counter() - start
        committed = sum(txn.state.value == "committed" for txn in results)
        cross_results = [txn for txn in results if txn.is_cross_shard]
        cross_committed = sum(
            txn.state.value == "committed" for txn in cross_results
        )
        result = {
            "shards": num_shards,
            "hosts": num_hosts,
            "txns": txn_batch,
            "cross_shard_policy": "2pc",
            "cross_shard_mix_requested": mix,
            "cross_shard_submitted": cross_submitted,
            "cross_shard_committed": cross_committed,
            "committed": committed,
            "elapsed_s": round(elapsed, 4),
            "throughput_txn_s": round(committed / elapsed, 2),
            "store_write_round_trips": counter.round_trips,
            "writes_per_commit": round(counter.round_trips / max(committed, 1), 2),
            "checkpoint_every": checkpoint_every,
            "method": (
                "One deployment hosting all shards; a fraction of spawns "
                "pairs a VM host with a storage host owned by another "
                "shard, exercising 2PC end to end (prepare records, "
                "decision log, participant application).  Wound-wait "
                "(PR 9) admits concurrent cross-shard prepares, so the "
                "mix fraction prices the protocol round-trips plus only "
                "the contention the read/write sets actually have."
            ),
        }
        if submit_shard is not None:
            result["submit_shard"] = submit_shard
            result["owned_hosts"] = len(host_indices)
        return result


def run_cross_shard_sweep(
    num_hosts: int,
    txn_batch: int,
    checkpoint_every: int,
    shard_counts: list[int],
    mix: float,
) -> dict:
    """Cross-shard throughput vs shard count at a fixed mix (PR 9).

    For each shard count, the mixed workload is partitioned by
    submitting shard; each partition runs against its own all-shards
    deployment and the aggregate is the sum of per-partition rates —
    the capacity of one submission stream per core/machine, exactly the
    aggregation the share-nothing sharded measurement uses.  The old
    fleet-wide prepare ticket serialised every cross-shard prepare
    through one znode, so cross-shard capacity was flat in the shard
    count; wound-wait only serialises transactions whose read/write
    sets actually conflict, letting the aggregate scale.
    """
    sweep = []
    for num_shards in shard_counts:
        base = txn_batch // num_shards
        remainder = txn_batch % num_shards
        per_shard = []
        for shard in range(num_shards):
            shard_txns = base + (1 if shard < remainder else 0)
            per_shard.append(
                run_cross_shard_mix(
                    num_hosts,
                    shard_txns,
                    checkpoint_every,
                    num_shards,
                    mix,
                    submit_shard=shard,
                )
            )
        committed = sum(r["committed"] for r in per_shard)
        sweep.append(
            {
                "shards": num_shards,
                "txns": txn_batch,
                "committed": committed,
                "cross_shard_submitted": sum(
                    r["cross_shard_submitted"] for r in per_shard
                ),
                "cross_shard_committed": sum(
                    r["cross_shard_committed"] for r in per_shard
                ),
                "per_shard_throughput_txn_s": [
                    r["throughput_txn_s"] for r in per_shard
                ],
                "aggregate_throughput_txn_s": round(
                    sum(r["throughput_txn_s"] for r in per_shard), 2
                ),
                "per_shard": per_shard,
            }
        )
    return {
        "cross_shard_mix": mix,
        "hosts": num_hosts,
        "checkpoint_every": checkpoint_every,
        "sweep": sweep,
        "method": (
            "Per shard count, the mixed workload is partitioned by "
            "submitting shard; each partition is measured against its own "
            "deployment hosting all shards (2PC needs every participant "
            "reachable) and the aggregate is the sum of per-partition "
            "rates — one submission stream per core/machine.  Valid only "
            "without fleet-wide prepare admission: wound-wait serialises "
            "nothing across disjoint read/write sets."
        ),
    }


def run_sharded(
    num_hosts: int,
    txn_batch: int,
    checkpoint_every: int,
    num_shards: int,
    pipeline_depth: int = 1,
) -> dict:
    """The LARGE-fleet workload partitioned over ``num_shards`` share-nothing
    shard deployments; reports per-shard and aggregate txn/s."""
    per_shard = []
    base = txn_batch // num_shards
    remainder = txn_batch % num_shards
    for shard in range(num_shards):
        shard_txns = base + (1 if shard < remainder else 0)
        per_shard.append(
            run(
                num_hosts,
                shard_txns,
                checkpoint_every,
                num_shards=num_shards,
                shard=shard,
                pipeline_depth=pipeline_depth,
            )
        )
    committed = sum(r["committed"] for r in per_shard)
    serialized_wall = sum(r["elapsed_s"] for r in per_shard)
    writes = sum(r["store_write_round_trips"] for r in per_shard)
    return {
        "shards": num_shards,
        "hosts": num_hosts,
        "txns": txn_batch,
        "committed": committed,
        "per_shard_throughput_txn_s": [r["throughput_txn_s"] for r in per_shard],
        "aggregate_throughput_txn_s": round(
            sum(r["throughput_txn_s"] for r in per_shard), 2
        ),
        "serialized_wall_clock_s": round(serialized_wall, 4),
        "serialized_wall_clock_txn_s": round(committed / max(serialized_wall, 1e-9), 2),
        "writes_per_commit": round(writes / max(committed, 1), 2),
        "checkpoint_every": checkpoint_every,
        "pipeline_depth": pipeline_depth,
        "per_shard": per_shard,
        "method": (
            "Shards share nothing (own ensemble, store namespace, queues, "
            "election); each shard deployment is measured in isolation on its "
            "partition of the fleet and the aggregate is the sum of per-shard "
            "rates — i.e. the capacity of one shard per core/machine.  This "
            "container has a single core, so shards are measured back-to-back; "
            "the serialized wall clock over the same total workload is also "
            "reported."
        ),
    }


def run_depth_sweep(
    num_hosts: int,
    txn_batch: int,
    checkpoint_every: int,
    depths: list[int],
    repeat: int,
) -> dict:
    """Single-shard throughput vs ``pipeline_depth`` (PR 10).

    Each depth runs the LARGE-fleet workload ``repeat`` times and reports
    the median run, so the depth-1 (serial write path) entry is directly
    comparable against the PR 9 reference — the pay-for-what-you-use gate
    — and the deeper entries show what the bounded window buys when
    several sealed steps share one group-commit flush.

    Reps are interleaved depth-by-depth (1,2,4, 1,2,4, ...) rather than
    blocked per depth, so slow host drift across the sweep's wall time
    lands on every depth equally instead of biasing the later ones."""
    runs_by_depth: dict[int, list[dict]] = {depth: [] for depth in depths}
    for _ in range(max(repeat, 1)):
        for depth in depths:
            runs_by_depth[depth].append(
                run(num_hosts, txn_batch, checkpoint_every, pipeline_depth=depth)
            )
    sweep = []
    for depth in depths:
        runs = sorted(runs_by_depth[depth], key=lambda r: r["throughput_txn_s"])
        entry = dict(runs[len(runs) // 2])
        if len(runs) > 1:
            entry["throughput_runs"] = [r["throughput_txn_s"] for r in runs]
        sweep.append(entry)
    return {
        "hosts": num_hosts,
        "txns": txn_batch,
        "checkpoint_every": checkpoint_every,
        "sweep": sweep,
        "method": (
            "The single-shard LARGE-fleet workload measured at each "
            "pipeline depth (median of the repeats; reps interleaved "
            "across depths so host drift hits all depths equally).  "
            "Depth 1 is the "
            "serial write path (seal immediately followed by its covering "
            "flush); deeper windows let several sealed CPU-stage batches "
            "share one merged group-commit multi.  On this single-core "
            "container the win is the amortised flush bookkeeping, not "
            "overlap — the per-depth pipeline counters (flushes, batches "
            "flushed, window high water) are included so the merge ratio "
            "is auditable."
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=int(os.environ.get("TROPIC_BENCH_SCALE_LARGE", 800)))
    parser.add_argument("--txns", type=int, default=int(os.environ.get("TROPIC_BENCH_SCALE_TXNS", 150)))
    parser.add_argument("--checkpoint-every", type=int, default=50)
    parser.add_argument("--shards", type=int, default=1,
                        help="partition the workload over N share-nothing "
                             "controller shards (per-shard + aggregate txn/s)")
    parser.add_argument("--cross-shard-mix", type=float, default=None,
                        help="measure a single deployment hosting --shards "
                             "shards where this fraction of the spawns spans "
                             "two shards under cross_shard_policy='2pc'")
    parser.add_argument("--shard-sweep", type=str, default=None,
                        help="with --cross-shard-mix: comma-separated shard "
                             "counts (e.g. '2,4'); measures the mixed "
                             "workload partitioned by submitting shard at "
                             "each count and reports per-count aggregate "
                             "throughput (the PR 9 scaling evidence)")
    parser.add_argument("--pipeline-depth", type=int, default=1,
                        help="commit-pipeline in-flight window "
                             "(config.pipeline_depth; 1 = serial write path)")
    parser.add_argument("--depth-sweep", type=str, default=None,
                        help="comma-separated pipeline depths (e.g. '1,2,4'); "
                             "measures the single-shard workload at each depth "
                             "and reports per-depth median throughput (the "
                             "PR 10 pay-for-what-you-use evidence)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run the workload N times and report the run with "
                             "the median throughput (wall-clock noise on shared "
                             "machines easily swings a single run +/-20%%)")
    parser.add_argument("--json", type=str, default=None, help="write result JSON to this path")
    args = parser.parse_args()

    if args.depth_sweep:
        depths = sorted({int(d) for d in args.depth_sweep.split(",") if d.strip()})
        result = run_depth_sweep(
            args.hosts, args.txns, args.checkpoint_every, depths, args.repeat
        )
        print(json.dumps(result, indent=2, sort_keys=True))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
        return
    if args.cross_shard_mix is not None and args.shard_sweep:
        counts = sorted({int(c) for c in args.shard_sweep.split(",") if c.strip()})
        runs = [run_cross_shard_sweep(args.hosts, args.txns, args.checkpoint_every,
                                      counts, args.cross_shard_mix)
                for _ in range(max(args.repeat, 1))]
        # Median by the largest shard count's aggregate (the gated number).
        runs.sort(key=lambda r: r["sweep"][-1]["aggregate_throughput_txn_s"])
        result = dict(runs[len(runs) // 2])
        if len(runs) > 1:
            result["aggregate_runs"] = [
                [entry["aggregate_throughput_txn_s"] for entry in r["sweep"]]
                for r in runs
            ]
        print(json.dumps(result, indent=2, sort_keys=True))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
        return
    if args.cross_shard_mix is not None:
        shards = max(args.shards, 2)
        runs = [run_cross_shard_mix(args.hosts, args.txns, args.checkpoint_every,
                                    shards, args.cross_shard_mix)
                for _ in range(max(args.repeat, 1))]
        runs.sort(key=lambda r: r["throughput_txn_s"])
        result = dict(runs[len(runs) // 2])
        if len(runs) > 1:
            result["throughput_runs"] = [r["throughput_txn_s"] for r in runs]
        print(json.dumps(result, indent=2, sort_keys=True))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
        return
    if args.shards > 1:
        runs = [run_sharded(args.hosts, args.txns, args.checkpoint_every, args.shards,
                            pipeline_depth=args.pipeline_depth)
                for _ in range(max(args.repeat, 1))]
        runs.sort(key=lambda r: r["aggregate_throughput_txn_s"])
        result = dict(runs[len(runs) // 2])
        if len(runs) > 1:
            result["aggregate_runs"] = [r["aggregate_throughput_txn_s"] for r in runs]
    else:
        runs = [run(args.hosts, args.txns, args.checkpoint_every,
                    pipeline_depth=args.pipeline_depth)
                for _ in range(max(args.repeat, 1))]
        runs.sort(key=lambda r: r["throughput_txn_s"])
        result = dict(runs[len(runs) // 2])
        if len(runs) > 1:
            result["throughput_runs"] = [r["throughput_txn_s"] for r in runs]
    print(json.dumps(result, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
