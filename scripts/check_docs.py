#!/usr/bin/env python
"""Documentation health check (CI `docs` job; `make docs-check`).

Two classes of rot this catches:

1. **Broken intra-repo links.**  Every relative markdown link in
   `docs/*.md`, `README.md` and `ROADMAP.md` must point at a file that
   exists; links into markdown files with a `#fragment` must name a
   heading that actually renders to that anchor (GitHub slug rules).
   The same anchor check covers the ``docs/<file>.md#anchor`` references
   inside module docstrings, so code and book cannot drift apart.
2. **Undocumented public modules.**  Every module under `src/repro/`
   (except empty `__init__.py` re-export stubs) must carry a module
   docstring.

Pure stdlib; exits non-zero with a report of every violation.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(Path(REPO, "docs").glob("*.md")) + [
    REPO / "README.md",
    REPO / "ROADMAP.md",
]
SRC_ROOT = REPO / "src" / "repro"

#: ``[text](target)`` — good enough for the plain markdown used here
#: (no reference-style links, no angle brackets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ``docs/<name>.md#anchor`` references inside Python docstrings.
_DOC_ANCHOR = re.compile(r"docs/([\w.-]+\.md)#([\w-]+)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")


def github_slug(heading: str) -> str:
    """The anchor GitHub renders for a heading: strip markdown emphasis
    and punctuation, lower-case, spaces to hyphens."""
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(markdown_path: Path) -> set[str]:
    anchors: set[str] = set()
    in_code_fence = False
    for line in markdown_path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(2)))
    return anchors


def check_markdown_links() -> list[str]:
    errors: list[str] = []
    for doc in DOC_FILES:
        in_code_fence = False
        for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for target in _LINK.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                    continue  # absolute URL (http:, mailto:, ...)
                where = f"{doc.relative_to(REPO)}:{lineno}"
                path_part, _, fragment = target.partition("#")
                if not path_part:  # same-file fragment
                    resolved = doc
                else:
                    resolved = (doc.parent / path_part).resolve()
                    if not resolved.exists():
                        errors.append(f"{where}: broken link {target!r} "
                                      f"(no such file {path_part!r})")
                        continue
                if fragment and resolved.suffix == ".md":
                    if fragment not in anchors_of(resolved):
                        errors.append(f"{where}: broken anchor {target!r} "
                                      f"(no heading slugs to #{fragment})")
    return errors


def check_docstring_anchors() -> list[str]:
    """``docs/x.md#anchor`` references in module docstrings must resolve."""
    errors: list[str] = []
    for module in sorted(SRC_ROOT.rglob("*.py")):
        doc = ast.get_docstring(ast.parse(module.read_text(encoding="utf-8")))
        if not doc:
            continue
        for name, fragment in _DOC_ANCHOR.findall(doc):
            target = REPO / "docs" / name
            where = str(module.relative_to(REPO))
            if not target.exists():
                errors.append(f"{where}: docstring references missing docs/{name}")
            elif fragment not in anchors_of(target):
                errors.append(f"{where}: docstring references docs/{name}#{fragment} "
                              f"but no heading slugs to it")
    return errors


def check_module_docstrings() -> list[str]:
    errors: list[str] = []
    for module in sorted(SRC_ROOT.rglob("*.py")):
        source = module.read_text(encoding="utf-8")
        if module.name == "__init__.py" and not source.strip():
            continue  # empty package marker
        if ast.get_docstring(ast.parse(source)) is None:
            errors.append(f"{module.relative_to(REPO)}: missing module docstring")
    return errors


def main() -> int:
    errors = (
        check_markdown_links()
        + check_docstring_anchors()
        + check_module_docstrings()
    )
    if errors:
        print(f"check_docs: {len(errors)} problem(s)")
        for error in errors:
            print(f"  {error}")
        return 1
    docs = len(DOC_FILES)
    modules = len(list(SRC_ROOT.rglob("*.py")))
    print(f"check_docs: OK ({docs} markdown files, {modules} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
