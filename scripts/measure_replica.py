#!/usr/bin/env python
"""Measure the read-replica subsystem: staleness, catch-up, read throughput.

Four measurements, all on the logical-only fleet (see
docs/operations.md#benchmarks):

* **bootstrap / catch-up** — time for a cold replica to rebuild a shard's
  model (checkpoint + applied-log replay) and the steady-state rate at
  which it applies committed transactions it fell behind on;
* **staleness under load** — the workload is committed in rounds with the
  replica refreshing between rounds: reports the watermark lag seen at
  each refresh (how stale a lazy reader gets) and the refresh latency
  (how fast it catches back up);
* **read throughput** — model reads per second served by a caught-up
  replica, plus the fleet-view rate of a partial-hosting process
  composing one leader with replicas of the other shards;
* **idle cost** — coordination operations issued by repeated reads of an
  unchanged fleet (the watch-parked guarantee: must be 0).

Usage:
    PYTHONPATH=src python scripts/measure_replica.py [--hosts N] [--txns N]
        [--shards N] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.common.config import TropicConfig  # noqa: E402
from repro.coordination.ensemble import CoordinationEnsemble  # noqa: E402
from repro.coordination.kvstore import KVStore  # noqa: E402
from repro.core.persistence import TropicStore  # noqa: E402
from repro.core.platform import shard_store_prefix  # noqa: E402
from repro.core.replica import ReadReplica  # noqa: E402
from repro.tcloud.service import build_tcloud  # noqa: E402


def _spawn_requests(cloud, count, tag):
    inventory = cloud.inventory
    num_hosts = len(inventory.vm_hosts)
    return [
        (
            "spawnVM",
            {
                "vm_name": f"{tag}-{i}",
                "image_template": "template-small",
                "storage_host": inventory.storage_host_for(i % num_hosts),
                "vm_host": inventory.vm_hosts[i % num_hosts],
                "mem_mb": 256,
            },
        )
        for i in range(count)
    ]


def _replica_for(cloud, shard=0):
    prefix = shard_store_prefix(shard, cloud.platform.config.num_shards)
    store = TropicStore(KVStore(cloud.platform.client, prefix))
    return ReadReplica(
        store, cloud.platform.schema, cloud.platform.procedures, shard_id=shard
    )


def run_single_shard(num_hosts: int, txns: int, rounds: int) -> dict:
    """Bootstrap, staleness-under-load and read-throughput measurement on
    one shard (checkpoints suppressed so the applied log carries the whole
    workload and catch-up cost is visible, not amortised away)."""
    config = TropicConfig(logical_only=True, checkpoint_every=1_000_000)
    cloud = build_tcloud(
        num_vm_hosts=num_hosts,
        num_storage_hosts=max(num_hosts // 4, 1),
        host_mem_mb=65536,
        config=config,
        logical_only=True,
    )
    with cloud.platform:
        per_round = max(txns // rounds, 1)
        # -- staleness under load: commit a round, then refresh ----------
        lags, refresh_seconds = [], []
        submitted = 0
        live = _replica_for(cloud)
        live.model()  # arm watches on the empty log
        for r in range(rounds):
            handles = cloud.platform.submit_many(
                _spawn_requests(cloud, per_round, f"r{r}"), wait=False
            )
            submitted += len(handles)
            cloud.platform.run_until_idle()
            for handle in handles:
                handle.wait(timeout=120.0)
            lags.append(live.lag())
            started = time.perf_counter()
            live.refresh()
            refresh_seconds.append(time.perf_counter() - started)
        # applied_txn counts actual commits (the applied log holds nothing
        # else), so aborted spawns cannot inflate the reported workload.
        committed = live.applied_txn
        # -- cold bootstrap over the full log ----------------------------
        cold = _replica_for(cloud)
        started = time.perf_counter()
        cold.model()
        bootstrap_s = time.perf_counter() - started
        # -- read throughput + idle cost ---------------------------------
        reads = 2000
        ops_before = cloud.platform.ensemble.op_count
        started = time.perf_counter()
        for _ in range(reads):
            live.model()
        read_elapsed = time.perf_counter() - started
        idle_ops = cloud.platform.ensemble.op_count - ops_before
        return {
            "hosts": num_hosts,
            "submitted": submitted,
            "committed": committed,
            "rounds": rounds,
            "staleness_txns_before_refresh": lags,
            "mean_staleness_txns": round(sum(lags) / len(lags), 2),
            "refresh_catchup_txn_s": round(
                committed / max(sum(refresh_seconds), 1e-9), 2
            ),
            "cold_bootstrap_s": round(bootstrap_s, 4),
            "cold_bootstrap_txn_s": round(committed / max(bootstrap_s, 1e-9), 2),
            "replica_reads_per_s": round(reads / max(read_elapsed, 1e-9), 2),
            "idle_read_coordination_ops": idle_ops,
            "watermark_equals_leader_log": cold.applied_txn
            == cloud.platform.store.applied_seq(),
        }


def run_fleet_view(num_hosts: int, txns: int, num_shards: int) -> dict:
    """Fleet-view reads from a process hosting only shard 0: two platforms
    share one ensemble (owner process hosts shards 1..N-1), the observer
    serves model_view(consistency='replica') over leaders + replicas."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    config = TropicConfig(
        logical_only=True, checkpoint_every=1_000_000, num_shards=num_shards
    )

    def build(local_shards):
        return build_tcloud(
            num_vm_hosts=num_hosts,
            num_storage_hosts=max(num_hosts // 4, 1),
            host_mem_mb=65536,
            config=config,
            logical_only=True,
            ensemble=ensemble,
            local_shards=local_shards,
        )

    owner = build(list(range(1, num_shards)))
    observer = build([0])
    with owner.platform, observer.platform:
        router = observer.platform.shard_router
        requests = {True: [], False: []}  # keyed by "observer owns it"
        for proc, args in _spawn_requests(observer, txns, "fv"):
            shard = router.shard_of(args["vm_host"])
            requests[shard == 0].append((proc, args))
        committed = 0
        for cloud, reqs in ((observer, requests[True]), (owner, requests[False])):
            if not reqs:
                continue
            handles = cloud.platform.submit_many(reqs, wait=False)
            cloud.platform.run_until_idle()
            committed += sum(
                handle.wait(timeout=120.0).state.value == "committed"
                for handle in handles
            )
        # First view pays replica bootstraps; then measure steady state.
        started = time.perf_counter()
        first = observer.platform.fleet_view()
        first_view_s = time.perf_counter() - started
        views = 50
        ops_before = ensemble.op_count
        started = time.perf_counter()
        for _ in range(views):
            observer.platform.fleet_view()
        elapsed = time.perf_counter() - started
        return {
            "shards": num_shards,
            "hosts": num_hosts,
            "submitted": txns,
            "committed": committed,
            "observer_hosts_shards": [0],
            "first_fleet_view_s": round(first_view_s, 4),
            "fleet_views_per_s": round(views / max(elapsed, 1e-9), 2),
            "idle_view_coordination_ops": ensemble.op_count - ops_before,
            "replica_watermarks": {
                str(s): w.applied_txn
                for s, w in first.watermarks.items()
                if w.source == "replica"
            },
            "vms_in_view": first.model.count("vm"),
            "method": (
                "Two platforms share one coordination ensemble: the owner "
                "process hosts shards 1..N-1, the observer hosts shard 0 "
                "only and serves model_view(consistency='replica') by "
                "composing its leader with watch-tailing replicas of the "
                "others.  Fleet-view cost is dominated by the O(model) "
                "merge clone; replica upkeep is zero on an idle fleet."
            ),
        }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int,
                        default=int(os.environ.get("TROPIC_BENCH_REPLICA_HOSTS", 200)))
    parser.add_argument("--txns", type=int,
                        default=int(os.environ.get("TROPIC_BENCH_REPLICA_TXNS", 200)))
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--shards", type=int, default=4,
                        help="fleet-view measurement: shard count (observer "
                             "hosts shard 0 only)")
    parser.add_argument("--json", type=str, default=None)
    args = parser.parse_args()

    result = {
        "single_shard": run_single_shard(args.hosts, args.txns, args.rounds),
        "fleet_view": run_fleet_view(args.hosts, args.txns, args.shards),
    }
    print(json.dumps(result, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
