#!/usr/bin/env python
"""Measure the read-replica subsystem: staleness, catch-up, read throughput.

Six measurements, all on the logical-only fleet (see
docs/operations.md#benchmarks):

* **bootstrap / catch-up** — time for a cold replica to rebuild a shard's
  model (checkpoint + applied-log replay) and the steady-state rate at
  which it applies committed transactions it fell behind on;
* **staleness under load** — the workload is committed in rounds with the
  replica refreshing between rounds: reports the watermark lag seen at
  each refresh (how stale a lazy reader gets) and the refresh latency
  (how fast it catches back up);
* **read throughput** — model reads per second served by a caught-up
  replica, plus the fleet-view rate of a partial-hosting process
  composing one leader with replicas of the other shards (PR 5: O(1)
  copy-on-write forks + a merged-view cache instead of O(model) clones);
* **snapshot scaling** (PR 5) — ``DataModel.clone()`` cost across model
  sizes: a CoW fork must cost the same at 50 and at 800 hosts;
* **subscribe latency** (PR 5) — per-subtree delta streams: deltas
  delivered per committed transaction and the poll latency from commit to
  delivery;
* **fenced fleet views** (PR 7) — fenced vs unfenced replica-consistency
  fleet-view throughput while cross-shard 2PC commits keep opening
  atomicity barriers on the observer's replicas;
* **idle cost** — coordination operations issued by repeated reads of an
  unchanged fleet (the watch-parked guarantee: must be 0).

Usage:
    PYTHONPATH=src python scripts/measure_replica.py [--hosts N] [--txns N]
        [--shards N] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.common.config import TropicConfig  # noqa: E402
from repro.coordination.ensemble import CoordinationEnsemble  # noqa: E402
from repro.coordination.kvstore import KVStore  # noqa: E402
from repro.core.persistence import TropicStore  # noqa: E402
from repro.core.platform import shard_store_prefix  # noqa: E402
from repro.core.replica import ReadReplica  # noqa: E402
from repro.tcloud.service import build_tcloud  # noqa: E402


def _spawn_requests(cloud, count, tag):
    inventory = cloud.inventory
    num_hosts = len(inventory.vm_hosts)
    return [
        (
            "spawnVM",
            {
                "vm_name": f"{tag}-{i}",
                "image_template": "template-small",
                "storage_host": inventory.storage_host_for(i % num_hosts),
                "vm_host": inventory.vm_hosts[i % num_hosts],
                "mem_mb": 256,
            },
        )
        for i in range(count)
    ]


def _replica_for(cloud, shard=0):
    prefix = shard_store_prefix(shard, cloud.platform.config.num_shards)
    store = TropicStore(KVStore(cloud.platform.client, prefix))
    return ReadReplica(
        store, cloud.platform.schema, cloud.platform.procedures, shard_id=shard
    )


def run_single_shard(num_hosts: int, txns: int, rounds: int) -> dict:
    """Bootstrap, staleness-under-load and read-throughput measurement on
    one shard (checkpoints suppressed so the applied log carries the whole
    workload and catch-up cost is visible, not amortised away)."""
    config = TropicConfig(logical_only=True, checkpoint_every=1_000_000)
    cloud = build_tcloud(
        num_vm_hosts=num_hosts,
        num_storage_hosts=max(num_hosts // 4, 1),
        host_mem_mb=65536,
        config=config,
        logical_only=True,
    )
    with cloud.platform:
        per_round = max(txns // rounds, 1)
        # -- staleness under load: commit a round, then refresh ----------
        lags, refresh_seconds = [], []
        submitted = 0
        live = _replica_for(cloud)
        live.model()  # arm watches on the empty log
        for r in range(rounds):
            handles = cloud.platform.submit_many(
                _spawn_requests(cloud, per_round, f"r{r}"), wait=False
            )
            submitted += len(handles)
            cloud.platform.run_until_idle()
            for handle in handles:
                handle.wait(timeout=120.0)
            lags.append(live.lag())
            started = time.perf_counter()
            live.refresh()
            refresh_seconds.append(time.perf_counter() - started)
        # applied_txn counts actual commits (the applied log holds nothing
        # else), so aborted spawns cannot inflate the reported workload.
        committed = live.applied_txn
        # -- cold bootstrap over the full log ----------------------------
        cold = _replica_for(cloud)
        started = time.perf_counter()
        cold.model()
        bootstrap_s = time.perf_counter() - started
        # -- read throughput + idle cost ---------------------------------
        reads = 2000
        ops_before = cloud.platform.ensemble.op_count
        started = time.perf_counter()
        for _ in range(reads):
            live.model()
        read_elapsed = time.perf_counter() - started
        idle_ops = cloud.platform.ensemble.op_count - ops_before
        return {
            "hosts": num_hosts,
            "submitted": submitted,
            "committed": committed,
            "rounds": rounds,
            "staleness_txns_before_refresh": lags,
            "mean_staleness_txns": round(sum(lags) / len(lags), 2),
            "refresh_catchup_txn_s": round(
                committed / max(sum(refresh_seconds), 1e-9), 2
            ),
            "cold_bootstrap_s": round(bootstrap_s, 4),
            "cold_bootstrap_txn_s": round(committed / max(bootstrap_s, 1e-9), 2),
            "replica_reads_per_s": round(reads / max(read_elapsed, 1e-9), 2),
            "idle_read_coordination_ops": idle_ops,
            "watermark_equals_leader_log": cold.applied_txn
            == cloud.platform.store.applied_seq(),
        }


def run_fleet_view(num_hosts: int, txns: int, num_shards: int) -> dict:
    """Fleet-view reads from a process hosting only shard 0: two platforms
    share one ensemble (owner process hosts shards 1..N-1), the observer
    serves model_view(consistency='replica') over leaders + replicas."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    config = TropicConfig(
        logical_only=True, checkpoint_every=1_000_000, num_shards=num_shards
    )

    def build(local_shards):
        return build_tcloud(
            num_vm_hosts=num_hosts,
            num_storage_hosts=max(num_hosts // 4, 1),
            host_mem_mb=65536,
            config=config,
            logical_only=True,
            ensemble=ensemble,
            local_shards=local_shards,
        )

    owner = build(list(range(1, num_shards)))
    observer = build([0])
    with owner.platform, observer.platform:
        router = observer.platform.shard_router
        requests = {True: [], False: []}  # keyed by "observer owns it"
        for proc, args in _spawn_requests(observer, txns, "fv"):
            shard = router.shard_of(args["vm_host"])
            requests[shard == 0].append((proc, args))
        committed = 0
        for cloud, reqs in ((observer, requests[True]), (owner, requests[False])):
            if not reqs:
                continue
            handles = cloud.platform.submit_many(reqs, wait=False)
            cloud.platform.run_until_idle()
            committed += sum(
                handle.wait(timeout=120.0).state.value == "committed"
                for handle in handles
            )
        # First view pays replica bootstraps; then measure steady state.
        started = time.perf_counter()
        first = observer.platform.fleet_view()
        first_view_s = time.perf_counter() - started
        views = 50
        ops_before = ensemble.op_count
        started = time.perf_counter()
        for _ in range(views):
            observer.platform.fleet_view()
        elapsed = time.perf_counter() - started
        return {
            "shards": num_shards,
            "hosts": num_hosts,
            "submitted": txns,
            "committed": committed,
            "observer_hosts_shards": [0],
            "first_fleet_view_s": round(first_view_s, 4),
            "fleet_views_per_s": round(views / max(elapsed, 1e-9), 2),
            "idle_view_coordination_ops": ensemble.op_count - ops_before,
            "replica_watermarks": {
                str(s): w.applied_txn
                for s, w in first.watermarks.items()
                if w.source == "replica"
            },
            "vms_in_view": first.model.count("vm"),
            "method": (
                "Two platforms share one coordination ensemble: the owner "
                "process hosts shards 1..N-1, the observer hosts shard 0 "
                "only and serves model_view(consistency='replica') by "
                "composing its leader with watch-tailing replicas of the "
                "others.  PR 5: views are O(1) copy-on-write forks of a "
                "cached merged tree (itself assembled from shared-subtree "
                "grafts, never deep clones), rebuilt only when a leader "
                "version or replica watermark advances; replica upkeep is "
                "zero on an idle fleet."
            ),
        }


def run_snapshot_scaling(sizes=None, iterations: int = 3000) -> dict:
    """O(1)-snapshot evidence: ``DataModel.clone()`` cost per model size
    (CoW fork — two epoch stamps regardless of node count), with the
    pre-PR 5 deep-copy cost alongside for scale.  Uses the same tree
    shape as the bench_writepath micro-guard (one shared builder)."""
    from repro.testing import SNAPSHOT_BENCH_SIZES, build_host_fleet_model as build

    sizes = sizes or SNAPSHOT_BENCH_SIZES
    rows = {}
    for hosts in sizes:
        model = build(hosts)
        started = time.perf_counter()
        for _ in range(iterations):
            model.clone()
        fork_s = (time.perf_counter() - started) / iterations
        deep_iters = max(iterations // 100, 10)
        started = time.perf_counter()
        for _ in range(deep_iters):
            model.deep_clone()
        deep_s = (time.perf_counter() - started) / deep_iters
        rows[str(hosts)] = {
            "nodes": model.count(),
            "cow_fork_us": round(fork_s * 1e6, 3),
            "deep_clone_us": round(deep_s * 1e6, 1),
        }
    smallest, largest = str(min(sizes)), str(max(sizes))
    return {
        "iterations": iterations,
        "by_hosts": rows,
        "size_ratio": round(max(sizes) / min(sizes), 1),
        "cow_cost_ratio_largest_vs_smallest": round(
            rows[largest]["cow_fork_us"] / max(rows[smallest]["cow_fork_us"], 1e-9), 2
        ),
        "deep_clone_cost_ratio_largest_vs_smallest": round(
            rows[largest]["deep_clone_us"] / max(rows[smallest]["deep_clone_us"], 1e-9), 2
        ),
        "method": (
            "Median per-call cost of DataModel.clone() (CoW fork) and "
            "deep_clone() (the seed's physical copy) at three model sizes. "
            "O(1) evidence: the fork's cost ratio between the largest and "
            "smallest model stays ~1 while the deep clone scales with the "
            "node count."
        ),
    }


def run_fenced_fleet_view(num_hosts: int, txns: int, rounds: int = 8) -> dict:
    """Fenced vs unfenced fleet-view throughput under a cross-shard mix
    (PR 7).

    Writer process hosts shards 0 and 1, the observer hosts shard 2 only,
    so *both* participants of every 0<->1 cross-shard spawn are
    replica-served at the observer — the shape the decision-log-aware
    read fence exists for.  Each round commits a mixed batch (cross-shard
    + single-shard spawns), opening fresh atomicity barriers on the
    observer's replicas, then times a block of ``fence=False`` views and
    a block of default (fenced) views; the fenced block pays the fence
    pass that confirms and closes the round's barriers."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    config = TropicConfig(
        logical_only=True,
        checkpoint_every=1_000_000,
        num_shards=3,
        cross_shard_policy="2pc",
    )

    def build(local_shards):
        return build_tcloud(
            num_vm_hosts=max(num_hosts - num_hosts % 3, 9),
            num_storage_hosts=max(num_hosts // 3, 3),
            host_mem_mb=65536,
            config=config,
            logical_only=True,
            ensemble=ensemble,
            local_shards=local_shards,
        )

    writer = build([0, 1])
    observer = build([2])
    with writer.platform, observer.platform:
        router = writer.platform.shard_router
        inventory = writer.inventory
        cross_pairs, single_pairs = [], []
        for vm_host in inventory.vm_hosts:
            a = router.shard_of(vm_host)
            if a == 2:
                continue
            for storage_host in inventory.storage_hosts:
                b = router.shard_of(storage_host)
                if b == 2:
                    continue
                pairs = single_pairs if b == a else cross_pairs
                if pairs is cross_pairs and any(p[0] == vm_host for p in pairs):
                    continue
                pairs.append((vm_host, storage_host))
        if not single_pairs:
            single_pairs = cross_pairs
        per_round = max(txns // rounds, 2)
        views_per_block = 25
        committed = 0
        unfenced_s = fenced_s = 0.0
        for r in range(rounds):
            requests = []
            for i in range(per_round):
                pairs = cross_pairs if i % 2 == 0 and cross_pairs else single_pairs
                vm_host, storage_host = pairs[(r * per_round + i) % len(pairs)]
                requests.append(
                    (
                        "spawnVM",
                        {
                            "vm_name": f"fence-r{r}-{i}",
                            "image_template": "template-small",
                            "storage_host": storage_host,
                            "vm_host": vm_host,
                            "mem_mb": 64,
                        },
                    )
                )
            handles = writer.platform.submit_many(requests, wait=False)
            writer.platform.run_until_idle()
            committed += sum(
                handle.wait(timeout=120.0).state.value == "committed"
                for handle in handles
            )
            # Untimed warm-up absorbs the round's replica catch-up so both
            # blocks time view assembly, not log replay; the fenced block
            # still pays the round's first fence pass.
            observer.platform.fleet_view(consistency="replica", fence=False)
            started = time.perf_counter()
            for _ in range(views_per_block):
                observer.platform.fleet_view(consistency="replica", fence=False)
            unfenced_s += time.perf_counter() - started
            started = time.perf_counter()
            for _ in range(views_per_block):
                observer.platform.fleet_view(consistency="replica")
            fenced_s += time.perf_counter() - started
        replicas = observer.platform.read_proxy.replicas()
        stats = {
            "barriers_opened": sum(
                r.stats["barriers_opened"] for r in replicas.values()
            ),
            "early_applies": sum(
                r.stats["early_applies"] for r in replicas.values()
            ),
            "view_cache_patches": observer.platform._view_cache_patches,
        }
        views = rounds * views_per_block
        unfenced_rate = round(views / max(unfenced_s, 1e-9), 2)
        fenced_rate = round(views / max(fenced_s, 1e-9), 2)
        return {
            "shards": 3,
            "rounds": rounds,
            "committed": committed,
            "views_per_block": views_per_block,
            "unfenced_views_per_s": unfenced_rate,
            "fenced_views_per_s": fenced_rate,
            "fenced_vs_unfenced": round(fenced_rate / max(unfenced_rate, 1e-9), 3),
            "fence_stats": stats,
            "method": (
                "Per round: commit a mixed cross-shard/single-shard batch "
                "(fresh atomicity barriers on the observer's replicas of "
                "both participants), then time 25 fence=False views and "
                "25 default fenced views.  The fenced block includes the "
                "fence pass that verifies each round's cross-shard "
                "commits against the decision log and closes their "
                "barriers; once quiescent the fence adds no coordination "
                "reads, so the steady-state ratio approaches 1."
            ),
        }


def run_subscribe(num_hosts: int, txns: int, rounds: int = 10) -> dict:
    """Per-subtree delta subscriptions: deltas delivered per commit and
    the poll latency from committed workload to delivered events."""
    config = TropicConfig(logical_only=True, checkpoint_every=1_000_000)
    cloud = build_tcloud(
        num_vm_hosts=num_hosts,
        num_storage_hosts=max(num_hosts // 4, 1),
        host_mem_mb=65536,
        config=config,
        logical_only=True,
    )
    with cloud.platform:
        host = cloud.inventory.vm_hosts[0]
        replica = _replica_for(cloud)
        cloud_sub = replica.subscribe(host)
        root_sub = replica.subscribe("/")
        per_round = max(txns // rounds, 1)
        deltas_host = 0
        committed = 0
        poll_seconds = []
        for r in range(rounds):
            requests = [
                (
                    "spawnVM",
                    {
                        "vm_name": f"sub-r{r}-{i}",
                        "image_template": "template-small",
                        "storage_host": cloud.inventory.storage_host_for(0),
                        "vm_host": host,
                        "mem_mb": 64,
                    },
                )
                for i in range(per_round)
            ]
            handles = cloud.platform.submit_many(requests, wait=False)
            cloud.platform.run_until_idle()
            committed += sum(
                handle.wait(timeout=120.0).state.value == "committed"
                for handle in handles
            )
            started = time.perf_counter()
            events = cloud_sub.poll()
            poll_seconds.append(time.perf_counter() - started)
            deltas_host += len(events)
        root_deltas = len(root_sub.poll())
        ops_before = cloud.platform.ensemble.op_count
        for _ in range(100):
            cloud_sub.poll()
        idle_ops = cloud.platform.ensemble.op_count - ops_before
        return {
            "hosts": num_hosts,
            "committed": committed,
            "rounds": rounds,
            "deltas_delivered_host_subtree": deltas_host,
            "deltas_delivered_root": root_deltas,
            "deltas_per_commit": round(deltas_host / max(committed, 1), 2),
            "mean_poll_latency_ms": round(
                1000 * sum(poll_seconds) / max(len(poll_seconds), 1), 3
            ),
            "max_poll_latency_ms": round(1000 * max(poll_seconds), 3),
            "idle_poll_coordination_ops": idle_ops,
            "method": (
                "One subscription on a host subtree plus one on '/' while "
                "spawns commit in rounds; poll() latency covers the "
                "replica's watch-driven catch-up plus delta derivation "
                "from the applied execution-log entries.  Idle polls must "
                "cost zero coordination operations."
            ),
        }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int,
                        default=int(os.environ.get("TROPIC_BENCH_REPLICA_HOSTS", 200)))
    parser.add_argument("--txns", type=int,
                        default=int(os.environ.get("TROPIC_BENCH_REPLICA_TXNS", 200)))
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--shards", type=int, default=4,
                        help="fleet-view measurement: shard count (observer "
                             "hosts shard 0 only)")
    parser.add_argument("--json", type=str, default=None)
    args = parser.parse_args()

    result = {
        "single_shard": run_single_shard(args.hosts, args.txns, args.rounds),
        "fleet_view": run_fleet_view(args.hosts, args.txns, args.shards),
        "snapshot_scaling": run_snapshot_scaling(),
        "subscribe": run_subscribe(min(args.hosts, 50), min(args.txns, 100)),
        "fenced_fleet_view": run_fenced_fleet_view(
            min(args.hosts, 60), min(args.txns, 64)
        ),
    }
    print(json.dumps(result, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
