#!/usr/bin/env bash
# Run the PR 10 write-path + sharding + cross-shard + read-path benchmark
# suite and write BENCH_pr10.json.
#
# Covers:
#   * bench_writepath.py        — micro-benchmarks (group commit, delta docs,
#                                 interning, submit batching, idle queue
#                                 watch, read-only/idle-free replica, O(1)
#                                 CoW snapshot guard, subscription cost)
#   * bench_sec61_scalability   — throughput + store writes/commit vs fleet size
#   * bench_sec62_safety_overhead — logical-layer constraint-checking cost
#   * scripts/measure_writepath — LARGE-fleet end-to-end measurement at 1, 2
#                                 and 4 controller shards (per-shard and
#                                 aggregate txn/s), the cross-shard mix
#                                 (a fraction of spawns spans two shards
#                                 under cross_shard_policy='2pc'), the
#                                 PR 9 cross-shard shard-scaling sweep at a
#                                 fixed 10% mix (wound-wait replaced the
#                                 fleet prepare ticket, so the aggregate
#                                 must scale with the shard count), and the
#                                 PR 10 pipeline-depth sweep (the main
#                                 single-shard run now measures the
#                                 pipelined write path at depth 2; the
#                                 sweep pins depth 1 — the serial path —
#                                 against the PR 9 reference)
#   * scripts/measure_replica   — replica staleness, catch-up rate, read
#                                 throughput, the partial-hosting fleet view,
#                                 snapshot O(1) scaling, subscribe latency
#                                 and the fenced-vs-unfenced fleet-view rate
#                                 under a cross-shard 2PC mix (PR 7; see
#                                 docs/operations.md)
#
# The results are merged with benchmarks/BASELINE_seed.json (seed commit)
# and BENCH_pr1..9.json so the JSON carries the speedup and scaling
# ratios — including the PR 10 acceptance gates (single-shard write
# throughput at depth 2 >= 1.25x the PR 9 reference — this PR *is* the
# perf work, so the bar is an outright win, at <= 0.29 write round-trips
# per commit; depth 1, the serial path byte-for-byte, >= 0.95x PR 9),
# the PR 9 cross-shard scaling gate (aggregate at a fixed 10% mix
# strictly increasing from 2 to 4 shards), plus the still-enforced
# PR 5/PR 7 read-path gates (fleet views >= 20x PR 4, O(1) snapshot
# cost, fenced views >= 0.5x unfenced).
#
# Usage: scripts/run_benchmarks.sh [output.json]   (default: BENCH_pr10.json)

set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_pr10.json}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== micro-benchmarks (bench_writepath) =="
python benchmarks/bench_writepath.py --json "$WORK/writepath.json"

echo "== LARGE-fleet end-to-end measurement (single shard, pipeline depth 2) =="
# 600-txn batch to match benchmarks/BASELINE_seed.json (short runs are
# dominated by host jitter; see the baseline's method note).  Depth 2 is
# the recommended production window (docs/operations.md).
python scripts/measure_writepath.py \
    --hosts "${TROPIC_BENCH_SCALE_LARGE:-800}" \
    --txns "${TROPIC_BENCH_LARGE_TXNS:-600}" \
    --checkpoint-every 100000 \
    --pipeline-depth "${TROPIC_BENCH_PIPELINE_DEPTH:-2}" \
    --repeat "${TROPIC_BENCH_REPEAT:-5}" \
    --json "$WORK/large_fleet.json"

echo "== pipeline-depth sweep (PR 10) =="
python scripts/measure_writepath.py \
    --hosts "${TROPIC_BENCH_SCALE_LARGE:-800}" \
    --txns "${TROPIC_BENCH_LARGE_TXNS:-600}" \
    --checkpoint-every 100000 \
    --depth-sweep "${TROPIC_BENCH_DEPTH_SWEEP:-1,2,4}" \
    --repeat "${TROPIC_BENCH_REPEAT:-5}" \
    --json "$WORK/depth_sweep.json"

SHARDED_ARGS=()
for SHARDS in ${TROPIC_BENCH_SHARD_COUNTS:-2 4}; do
    echo "== LARGE-fleet sharded measurement (${SHARDS} shards) =="
    python scripts/measure_writepath.py \
        --hosts "${TROPIC_BENCH_SCALE_LARGE:-800}" \
        --txns "${TROPIC_BENCH_LARGE_TXNS:-600}" \
        --checkpoint-every 100000 \
        --shards "$SHARDS" \
        --repeat "${TROPIC_BENCH_REPEAT:-5}" \
        --json "$WORK/sharded_${SHARDS}.json"
    SHARDED_ARGS+=(--sharded "$WORK/sharded_${SHARDS}.json")
done

echo "== replica staleness / read-throughput measurement =="
python scripts/measure_replica.py \
    --hosts "${TROPIC_BENCH_REPLICA_HOSTS:-200}" \
    --txns "${TROPIC_BENCH_REPLICA_TXNS:-200}" \
    --json "$WORK/replica.json"

echo "== cross-shard 2PC mix measurement =="
python scripts/measure_writepath.py \
    --hosts "${TROPIC_BENCH_SCALE_LARGE:-800}" \
    --txns "${TROPIC_BENCH_LARGE_TXNS:-600}" \
    --checkpoint-every 100000 \
    --shards 2 \
    --cross-shard-mix "${TROPIC_BENCH_CROSS_MIX:-0.1}" \
    --repeat "${TROPIC_BENCH_REPEAT:-5}" \
    --json "$WORK/cross_shard.json"

echo "== cross-shard shard-scaling sweep (PR 9) =="
python scripts/measure_writepath.py \
    --hosts "${TROPIC_BENCH_SCALE_LARGE:-800}" \
    --txns "${TROPIC_BENCH_LARGE_TXNS:-600}" \
    --checkpoint-every 100000 \
    --cross-shard-mix "${TROPIC_BENCH_CROSS_MIX:-0.1}" \
    --shard-sweep "${TROPIC_BENCH_SWEEP_SHARDS:-2,4}" \
    --repeat "${TROPIC_BENCH_REPEAT:-5}" \
    --json "$WORK/cross_sweep.json"

echo "== pytest benchmarks (sec 6.1 scalability, sec 6.2 safety overhead) =="
TROPIC_BENCH_JSON_OUT="$WORK/fragments.jsonl" \
    python -m pytest benchmarks/bench_sec61_scalability.py \
                     benchmarks/bench_sec62_safety_overhead.py \
                     -q -p no:cacheprovider

echo "== merging results into $OUT =="
python scripts/merge_bench.py \
    --writepath "$WORK/writepath.json" \
    --large-fleet "$WORK/large_fleet.json" \
    --fragments "$WORK/fragments.jsonl" \
    --baseline benchmarks/BASELINE_seed.json \
    --pr1 BENCH_pr1.json \
    --pr2 BENCH_pr2.json \
    --pr3 BENCH_pr3.json \
    --pr4 BENCH_pr4.json \
    --pr5 BENCH_pr5.json \
    --pr6 BENCH_pr6.json \
    --pr8 BENCH_pr7.json \
    --pr9 BENCH_pr9.json \
    --pipeline-sweep "$WORK/depth_sweep.json" \
    --cross-shard "$WORK/cross_shard.json" \
    --cross-shard-sweep "$WORK/cross_sweep.json" \
    --replica "$WORK/replica.json" \
    --min-ratio single_shard_vs_pr8=0.9 \
    --min-ratio single_shard_vs_pr9=1.25 \
    --min-ratio pipeline_depth1_vs_pr9=0.95 \
    --min-ratio writes_per_commit_headroom=1.0 \
    --min-ratio cross_shard_agg_4_vs_2=1.01 \
    --min-ratio fleet_view_vs_pr4=20 \
    --min-ratio snapshot_size_independence=0.2 \
    --min-ratio fenced_fleet_view_vs_unfenced=0.5 \
    --pr 10 \
    "${SHARDED_ARGS[@]}" \
    --out "$OUT"

echo "wrote $OUT"
