"""Setup shim.

The project is configured in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools lacks the
``bdist_wheel`` command needed by PEP 517 editable installs (use
``pip install -e . --no-use-pep517 --no-build-isolation`` there).
"""

from setuptools import setup

setup()
