#!/usr/bin/env python
"""Provision and tear down a multi-VM tenant environment atomically.

A tenant environment — several VMs, a tenant VLAN, firewall rules — is one
composite stored procedure (``provisionTenant``), so the whole environment
is created in a single ACID transaction: if the last VM does not fit on its
host, nothing is left behind, not even the VLAN.  This example shows the
successful case, the all-or-nothing rollback of an oversized request, and
the symmetric atomic teardown.

Run with:  python examples/tenant_provisioning.py
"""

from repro.tcloud import build_tcloud


def describe(cloud) -> None:
    print(f"  VMs:            {[r.name for r in cloud.list_vms()] or '(none)'}")
    model = cloud.platform.leader().model
    vlans = [model.get(p).get("vlan_id") for p in model.find(entity_type="vlan")]
    print(f"  VLANs:          {vlans or '(none)'}")
    print(f"  firewall rules: {cloud.list_firewall_rules() or '(none)'}")


def main() -> None:
    cloud = build_tcloud(num_vm_hosts=4, num_storage_hosts=2, host_mem_mb=8192)

    with cloud.platform:
        print("== Provision tenant 'acme': 3 VMs + VLAN 100 + 2 firewall rules ==")
        txn = cloud.provision_tenant(
            "acme",
            num_vms=3,
            mem_mb=1024,
            vlan_id=100,
            firewall_rules=[
                {"rule_id": 10, "src": "10.0.0.0/8", "dst": "acme", "policy": "allow"},
                {"rule_id": 20, "src": "any", "dst": "acme", "policy": "deny"},
            ],
        )
        print(f"transaction {txn.txid}: {txn.state.value} "
              f"({len(txn.log)} actions in one execution log)")
        describe(cloud)
        print()

        print("== An oversized tenant rolls back completely ==")
        doomed = cloud.provision_tenant("whale", num_vms=40, mem_mb=4096, vlan_id=300)
        print(f"transaction {doomed.txid}: {doomed.state.value}")
        print(f"  reason: {doomed.error}")
        describe(cloud)
        print()

        print("== Tear the tenant down (also one transaction) ==")
        down = cloud.teardown_tenant("acme", vlan_id=100, firewall_rule_ids=[10, 20])
        print(f"transaction {down.txid}: {down.state.value}")
        describe(cloud)

        print()
        print("cross-layer consistency check:",
              "in sync" if cloud.platform.reconciler().detect().is_empty else "DIVERGED")


if __name__ == "__main__":
    main()
