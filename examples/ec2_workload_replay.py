#!/usr/bin/env python
"""EC2-workload replay: concurrency and performance measurement (§6.1).

Synthesises the EC2 spawn trace calibrated to the paper's published
statistics, replays a time-compressed window of it against a logical-only
TROPIC deployment (the mode the paper uses for its large-scale performance
experiments), and prints the controller-utilisation series (Figure 4) and
the transaction-latency CDF (Figure 5) for the replayed window.

Run with:  python examples/ec2_workload_replay.py [window_seconds] [multiplier]
"""

import sys

from repro.common.config import TropicConfig
from repro.metrics.report import format_cdf, format_series
from repro.metrics.stats import cdf_points, summary
from repro.tcloud import build_tcloud
from repro.workloads import EC2TraceParams, LoadGenerator, ec2_spawn_trace


def main() -> None:
    window_s = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    multiplier = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    compression = 6.0

    params = EC2TraceParams().scaled_to(window_s)
    trace = ec2_spawn_trace(params, mem_mb=512).scaled(multiplier)
    stats = trace.stats()
    print(f"trace window: {window_s}s of the 1-hour EC2 trace, x{multiplier} intensity")
    print(f"  spawns: {stats.total_events}, mean rate {stats.mean_rate:.2f}/s, "
          f"peak {stats.peak_rate}/s")
    print(f"  replayed with time compression x{compression}\n")

    config = TropicConfig(
        num_controllers=1,
        num_workers=2,
        logical_only=True,
        checkpoint_every=100_000,
        heartbeat_interval=0.2,
        session_timeout=2.0,
    )
    cloud = build_tcloud(num_vm_hosts=100, num_storage_hosts=25, host_mem_mb=65536,
                         config=config, threaded=True, logical_only=True)
    with cloud.platform:
        generator = LoadGenerator(cloud)
        result = generator.replay_async(trace, compression=compression,
                                        utilization_bucket_s=window_s / 10.0)

    print(f"submitted {result.submitted}, committed {result.committed}, "
          f"aborted {result.aborted} in {result.wall_seconds:.1f}s wall time "
          f"({result.throughput:.1f} committed txn/s)\n")

    print(format_series(result.utilization, x_label="trace time (s)",
                        y_label="busy fraction",
                        title="Controller utilisation over the replayed window (cf. Figure 4)"))
    print()
    print(format_cdf(cdf_points(result.latencies),
                     title="Transaction latency CDF (cf. Figure 5)"))
    print()
    print(f"latency summary (s): {summary(result.latencies)}")


if __name__ == "__main__":
    main()
