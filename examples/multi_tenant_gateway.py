#!/usr/bin/env python
"""Serve two tenants through the API gateway (Figure 1's service entry point).

End users never talk to the TROPIC controllers directly: the gateway
authenticates each API key, enforces per-tenant quotas, namespaces resource
names and maps EC2-style actions onto transactional orchestrations.  The
example provisions instances and volumes for two tenants, shows a quota
denial and a cross-tenant access attempt being rejected, and dumps the
audit trail at the end.

Run with:  python examples/multi_tenant_gateway.py
"""

from repro.gateway import ApiGateway, TenantDirectory, TenantQuota
from repro.tcloud import build_tcloud


def show(label: str, response) -> None:
    status = "OK" if response.ok else f"{response.code}: {response.error}"
    print(f"  {label:42s} -> {status}")


def main() -> None:
    cloud = build_tcloud(num_vm_hosts=4, num_storage_hosts=2, host_mem_mb=8192)
    tenants = TenantDirectory()
    tenants.register("acme", "acme-key",
                     quota=TenantQuota(max_vms=3, max_total_mem_mb=4096))
    tenants.register("globex", "globex-key")

    with cloud.platform:
        gateway = ApiGateway(cloud, tenants)

        print("== acme provisions a small web tier ==")
        show("RunInstances web x2 (t.small)",
             gateway.handle("acme-key", "RunInstances", name="web", count=2,
                            instance_type="t.small"))
        show("CreateVolume data 20 GB",
             gateway.handle("acme-key", "CreateVolume", name="data", size_gb=20))
        show("AttachVolume data -> web-0",
             gateway.handle("acme-key", "AttachVolume", volume="data", instance="web-0"))

        print("\n== globex runs its own instances (names do not collide) ==")
        show("RunInstances web (t.medium)",
             gateway.handle("globex-key", "RunInstances", name="web",
                            instance_type="t.medium"))

        print("\n== service rules enforced at the gateway ==")
        show("acme exceeds its VM quota",
             gateway.handle("acme-key", "RunInstances", name="extra", count=2,
                            instance_type="t.small"))
        show("globex touches acme's volume",
             gateway.handle("globex-key", "DeleteVolume", name="data"))
        show("acme calls an operator-only action",
             gateway.handle("acme-key", "MigrateInstance", name="web-0"))

        print("\n== what each tenant sees ==")
        for key, tenant in (("acme-key", "acme"), ("globex-key", "globex")):
            instances = gateway.handle(key, "DescribeInstances").data["instances"]
            print(f"  {tenant}: {[i['instance'] for i in instances]}")

        print("\n== platform view (namespaced names) ==")
        for record in cloud.list_vms():
            print(f"  {record.path:45s} {record.state}")

        print("\n== audit trail ==")
        for entry in gateway.audit:
            print(f"  #{entry.seq:<3d} {entry.tenant:18s} {entry.action:20s} "
                  f"{entry.outcome:8s} {entry.error or ''}")


if __name__ == "__main__":
    main()
