#!/usr/bin/env python
"""Robustness and volatility demo: rollback, undo failure, repair and reload.

Reproduces, end to end, the §3.2/§4 scenarios of the paper:

1. a device fault in the last step of a spawn triggers undo of the whole
   execution log — the aborted transaction leaves no trace in either layer;
2. an undo failure produces a *failed* transaction and a fenced subtree;
3. an out-of-band host reboot (all VMs powered off) is detected and fixed
   by ``repair`` (logical → physical);
4. an operator installing a new image template out of band is adopted by
   ``reload`` (physical → logical).

Run with:  python examples/failure_recovery.py
"""

from repro.tcloud import build_tcloud


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    cloud = build_tcloud(num_vm_hosts=3, num_storage_hosts=2, host_mem_mb=8192)

    with cloud.platform:
        registry = cloud.inventory.registry
        host0 = registry.device_at("/vmRoot/vmHost0")
        host1 = registry.device_at("/vmRoot/vmHost1")
        storage1 = registry.device_at("/storageRoot/storageHost1")

        banner("1. Device fault in the last step -> atomic rollback")
        host0.faults.fail_next("startVM", message="hypervisor crashed")
        txn = cloud.spawn_vm("unlucky", vm_host="/vmRoot/vmHost0",
                             storage_host="/storageRoot/storageHost0")
        print(f"spawn outcome: {txn.state.value} ({txn.error})")
        print(f"VM left on host?        {host0.vm_state('unlucky')}")
        print(f"image left on storage?  "
              f"{registry.device_at('/storageRoot/storageHost0').has_image('unlucky-disk')}")
        print(f"cross-layer divergence: {len(cloud.platform.reconciler().detect())} deltas")

        banner("2. Undo failure -> failed transaction, fenced subtree")
        host1.faults.fail_next("startVM", message="hypervisor crashed")
        host1.faults.fail_next("removeVM", message="undo failed too")
        txn = cloud.spawn_vm("cursed", vm_host="/vmRoot/vmHost1",
                             storage_host="/storageRoot/storageHost1")
        print(f"spawn outcome: {txn.state.value} ({txn.error})")
        leader = cloud.platform.leader()
        print(f"host fenced? {leader.model.is_fenced('/vmRoot/vmHost1')}")
        blocked = cloud.spawn_vm("blocked", vm_host="/vmRoot/vmHost1",
                                 storage_host="/storageRoot/storageHost1")
        print(f"new transaction on the fenced host: {blocked.state.value}")

        banner("   ... repair reconciles the fenced host")
        report = cloud.platform.repair("/vmRoot/vmHost1")
        print(f"repair actions: {report.actions_executed}")
        print(f"host fenced after repair? {leader.model.is_fenced('/vmRoot/vmHost1')}")
        retried = cloud.spawn_vm("retried", vm_host="/vmRoot/vmHost1",
                                 storage_host="/storageRoot/storageHost1")
        print(f"retried spawn: {retried.state.value}")

        banner("3. Out-of-band host reboot -> repair restarts the VMs")
        for index in range(3):
            cloud.spawn_vm(f"svc-{index}", vm_host="/vmRoot/vmHost2", mem_mb=512)
        host2 = registry.device_at("/vmRoot/vmHost2")
        host2.power_cycle()
        print(f"VM states after reboot : "
              f"{[host2.vm_state(f'svc-{i}') for i in range(3)]}")
        report = cloud.platform.repair("/vmRoot/vmHost2")
        print(f"repair actions         : {[a for _, a, _ in report.actions_executed]}")
        print(f"VM states after repair : "
              f"{[host2.vm_state(f'svc-{i}') for i in range(3)]}")

        banner("4. Out-of-band template install -> reload adopts it")
        storage1.add_template("template-gpu", size_gb=48.0)
        result = cloud.platform.reload("/storageRoot/storageHost1")
        print(f"reload applied: {result.applied}")
        gpu_vm = cloud.spawn_vm("gpu-1", image_template="template-gpu",
                                storage_host="/storageRoot/storageHost1")
        print(f"spawn from the new template: {gpu_vm.state.value}")

        banner("Final state")
        print(f"VMs: {[r.name for r in cloud.list_vms()]}")
        print(f"controller stats: {cloud.platform.controller_stats()}")


if __name__ == "__main__":
    main()
