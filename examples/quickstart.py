#!/usr/bin/env python
"""Quickstart: spawn, inspect, migrate and destroy a VM with TCloud/TROPIC.

Builds a small data centre (4 compute hosts, 2 storage hosts, 1 router)
with mock devices, starts the TROPIC platform on the deterministic inline
runtime, and walks through the basic VM life cycle.  Every mutating call is
a transactional orchestration; the script prints each transaction's state
and, for the spawn, the execution log corresponding to Table 1 of the
paper.

Run with:  python examples/quickstart.py
"""

from repro.tcloud import build_tcloud


def main() -> None:
    cloud = build_tcloud(num_vm_hosts=4, num_storage_hosts=2, host_mem_mb=8192)

    with cloud.platform:
        print("== Spawn a VM (Table 1 execution log) ==")
        txn = cloud.spawn_vm("web-1", image_template="template-small", mem_mb=1024)
        print(f"transaction {txn.txid}: {txn.state.value}")
        print(txn.log.format_table())
        print()

        print("== Current inventory ==")
        for record in cloud.list_vms():
            print(f"  {record.path:40s} state={record.state:8s} mem={record.mem_mb} MB")
        print()

        print("== Migrate the VM to another host ==")
        migrated = cloud.migrate_vm("web-1")
        record = cloud.find_vm("web-1")
        print(f"transaction {migrated.txid}: {migrated.state.value}; now on {record.host}")
        print()

        print("== A transaction that violates a constraint aborts safely ==")
        doomed = cloud.spawn_vm("whale-1", mem_mb=64_000,  # exceeds host memory
                                vm_host="/vmRoot/vmHost0",
                                storage_host="/storageRoot/storageHost0")
        print(f"transaction {doomed.txid}: {doomed.state.value}")
        print(f"  reason: {doomed.error}")
        print(f"  VMs after the abort: {[r.name for r in cloud.list_vms()]}")
        print()

        print("== Stop and destroy ==")
        print(f"stop:    {cloud.stop_vm('web-1').state.value}")
        print(f"destroy: {cloud.destroy_vm('web-1').state.value}")
        print(f"VM count at the end: {cloud.vm_count()}")

        stats = cloud.platform.controller_stats()
        print()
        print(f"controller statistics: {stats}")


if __name__ == "__main__":
    main()
