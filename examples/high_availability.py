#!/usr/bin/env python
"""High-availability demo: leader failover under load (§2.3 / §6.4).

Starts the threaded runtime with three replicated controllers, submits a
stream of VM spawns, kills the lead controller mid-stream, and shows that

* a follower takes over after the coordination session of the dead leader
  expires (failure detection),
* the new leader restores the previous leader's state from the replicated
  store and resumes the in-flight transactions, and
* no submitted transaction is lost — every one reaches a terminal state.

Run with:  python examples/high_availability.py
"""

import time

from repro.common.config import TropicConfig
from repro.core.txn import TransactionState
from repro.tcloud import build_tcloud


def main() -> None:
    config = TropicConfig(
        num_controllers=3,
        num_workers=2,
        heartbeat_interval=0.05,
        session_timeout=0.5,
    )
    cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, host_mem_mb=16384,
                         config=config, threaded=True)

    with cloud.platform:
        platform = cloud.platform
        # Let the replicas elect an initial leader.
        while platform.leader_runner() is None:
            time.sleep(0.02)
        print(f"controller replicas : {platform.live_controller_names()}")
        print(f"initial leader      : {platform.leader_runner().controller.name}")

        warmup = cloud.spawn_vm("warmup", mem_mb=256, timeout=30.0)
        print(f"warm-up transaction : {warmup.state.value}")

        print("\nsubmitting 12 spawns, then killing the leader ...")
        handles = [cloud.spawn_vm(f"app-{i}", mem_mb=512, wait=False) for i in range(12)]
        killed_at = time.perf_counter()
        killed = platform.kill_leader()
        print(f"killed leader       : {killed}")

        # Work submitted while the failover is in progress.
        handles += [cloud.spawn_vm(f"late-{i}", mem_mb=512, wait=False) for i in range(4)]

        results = [handle.wait(timeout=60.0) for handle in handles]
        recovery_probe = cloud.spawn_vm("post-failover", mem_mb=256, timeout=60.0)
        recovery_time = time.perf_counter() - killed_at

        committed = sum(r.state is TransactionState.COMMITTED for r in results)
        aborted = sum(r.state is TransactionState.ABORTED for r in results)
        new_leader = platform.leader_runner()
        print(f"\nnew leader          : {new_leader.controller.name if new_leader else '-'}")
        print(f"recovery (to next commit): {recovery_time:.2f} s "
              f"(failure-detection timeout {config.session_timeout} s)")
        print(f"transactions        : {committed} committed, {aborted} aborted, "
              f"{len(results) - committed - aborted} other")
        print(f"post-failover probe : {recovery_probe.state.value}")
        print(f"transactions lost   : {sum(not r.is_terminal for r in results)}")
        print(f"VMs running         : {cloud.vm_count()}")


if __name__ == "__main__":
    main()
