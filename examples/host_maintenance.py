#!/usr/bin/env python
"""Operator workflows: atomic host evacuation, rebalancing and reconciliation.

An operator preparing a compute host for maintenance wants *all* of its VMs
moved elsewhere, or none (a half-evacuated host helps nobody).  The
``evacuateHost`` composite procedure runs every migration inside one
transaction, so TROPIC's atomicity gives exactly that guarantee.  The
example then simulates an out-of-band host reboot and shows the repair
mechanism (§4) restoring the physical layer to the logical state.

Run with:  python examples/host_maintenance.py
"""

from repro.tcloud import build_tcloud


def utilisation(cloud) -> None:
    for host, info in sorted(cloud.host_utilisation().items()):
        print(f"  {host:22s} running={info['running']}  "
              f"mem={info['mem_used_mb']}/{info['mem_mb']} MB")


def main() -> None:
    cloud = build_tcloud(num_vm_hosts=4, num_storage_hosts=2, host_mem_mb=8192)

    with cloud.platform:
        print("== Seed the fleet with a few workloads ==")
        for index in range(6):
            cloud.spawn_vm(f"svc-{index}", vm_host=f"/vmRoot/vmHost{index % 2}",
                           mem_mb=1024)
        utilisation(cloud)
        print()

        print("== Atomically evacuate vmHost0 for maintenance ==")
        txn = cloud.evacuate_host_atomic("/vmRoot/vmHost0")
        print(f"transaction {txn.txid}: {txn.state.value}")
        for move in txn.result["moves"]:
            print(f"  moved {move['vm']} -> {move['to']}")
        utilisation(cloud)
        print()

        print("== Rebalance: free 7 GB on vmHost1 by moving VMs to vmHost3 ==")
        txn = cloud.rebalance_hosts("/vmRoot/vmHost1", "/vmRoot/vmHost3",
                                    target_free_mb=7168)
        print(f"transaction {txn.txid}: {txn.state.value}; moved {txn.result['moved']}")
        utilisation(cloud)
        print()

        print("== Out-of-band reboot of vmHost2 and repair (§4) ==")
        device = cloud.inventory.registry.device_at("/vmRoot/vmHost2")
        device.power_cycle()
        diff = cloud.platform.reconciler().detect()
        print(f"divergence after the reboot: {len(diff.all_deltas())} node(s)")
        report = cloud.platform.repair("/vmRoot/vmHost2")
        print(f"repair actions: {[a for _, a, _ in report.actions_executed]}")
        print("cross-layer consistency check:",
              "in sync" if cloud.platform.reconciler().detect().is_empty else "DIVERGED")


if __name__ == "__main__":
    main()
