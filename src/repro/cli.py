"""Operator console for the TROPIC reproduction.

``tropic-demo`` (or ``python -m repro.cli``) builds an in-memory TCloud
deployment and runs self-contained demonstrations of the paper's
mechanisms from the command line:

* ``table1``       — print the spawnVM execution log (Table 1);
* ``lifecycle``    — spawn / migrate / constraint-abort / destroy walkthrough;
* ``replay-ec2``   — replay a scaled EC2 spawn trace and report Figure 4/5
  style metrics (controller busy fraction, latency percentiles);
* ``replay-hosting`` — replay the hosting-provider operation mix (§6.2);
* ``failover``     — kill the lead controller mid-workload and report the
  recovery time (§6.4);
* ``repair-drill`` — power-cycle a host out of band and repair it (§4);
* ``chaos``        — run seeded chaos scenarios (crashes + ensemble
  faults + retries) and check the end-to-end invariants;
* ``stats``        — run a short workload and print the write-path
  instrumentation: store I/O counters, the commit-pipeline flush/window
  stats (``--pipeline-depth`` overlaps simulation with the ensemble
  flush), checkpoint stats and resilience counters;
* ``inventory``    — print the fleet and per-host utilisation;
* ``2pc-gc``       — decision-record retention drill, including the
  administrative sweep for a permanently retired coordinator shard
  (``--retired-shard N``).

Every command prints its transactions' outcomes; nothing persists between
invocations (the coordination service and devices are simulated in
process), which makes the console safe to run anywhere.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.common.config import TropicConfig
from repro.core.txn import TransactionState
from repro.metrics.report import ascii_table, format_pipeline, format_resilience
from repro.metrics.stats import percentile
from repro.tcloud.service import TCloud, build_tcloud
from repro.workloads.ec2 import EC2TraceParams, ec2_spawn_trace
from repro.workloads.hosting import HostingTraceParams, hosting_trace
from repro.workloads.loadgen import LoadGenerator


def _build_cloud(args: argparse.Namespace, threaded: bool = False,
                 logical_only: bool = False) -> TCloud:
    config = TropicConfig(
        num_controllers=3 if threaded else 1,
        num_workers=2,
        logical_only=logical_only,
        heartbeat_interval=0.05,
        session_timeout=0.5,
        queue_poll_interval=0.002,
        num_shards=getattr(args, "shards", 1),
        # Demo workloads include cross-subtree orchestrations (migrate,
        # tenant provisioning); run them under 2PC instead of rejecting.
        cross_shard_policy=getattr(args, "cross_shard", "2pc"),
        read_mode=getattr(args, "read_mode", "replica"),
        pipeline_depth=getattr(args, "pipeline_depth", 1),
    )
    return build_tcloud(
        num_vm_hosts=args.hosts,
        num_storage_hosts=max(1, args.hosts // 4),
        host_mem_mb=args.host_mem_mb,
        config=config,
        threaded=threaded,
        logical_only=logical_only,
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def cmd_table1(args: argparse.Namespace) -> int:
    """Print the execution log of one spawnVM transaction (Table 1)."""
    cloud = _build_cloud(args)
    with cloud.platform:
        txn = cloud.spawn_vm("vm1", image_template="template-small", mem_mb=1024)
        print(f"spawnVM transaction {txn.txid}: {txn.state.value}")
        print()
        print(txn.log.format_table())
    return 0


def cmd_lifecycle(args: argparse.Namespace) -> int:
    """Spawn, migrate, violate a constraint, and destroy — end to end."""
    cloud = _build_cloud(args)
    with cloud.platform:
        spawn = cloud.spawn_vm("web-1", mem_mb=1024)
        print(f"spawn:    {spawn.state.value}")
        migrate = cloud.migrate_vm("web-1")
        print(f"migrate:  {migrate.state.value} -> {cloud.find_vm('web-1').host}")
        doomed = cloud.spawn_vm("whale", mem_mb=args.host_mem_mb * 2,
                                vm_host=cloud.inventory.vm_hosts[0],
                                storage_host=cloud.inventory.storage_hosts[0])
        print(f"oversized spawn: {doomed.state.value} ({doomed.error})")
        destroy = cloud.destroy_vm("web-1")
        print(f"destroy:  {destroy.state.value}")
        print(f"VMs left: {cloud.vm_count()}")
        print(f"cross-layer divergence: "
              f"{len(cloud.platform.reconciler().detect().all_deltas())} node(s)")
    return 0


def cmd_replay_ec2(args: argparse.Namespace) -> int:
    """Replay a scaled EC2 spawn trace (Figures 3-5 style metrics)."""
    cloud = _build_cloud(args, threaded=True, logical_only=True)
    params = EC2TraceParams().scaled_to(args.window)
    trace = ec2_spawn_trace(params, mem_mb=512).scaled(args.multiplier)
    print(f"replaying {len(trace)} spawn requests "
          f"({args.multiplier}x EC2, {args.window}s window, "
          f"compression {args.compression}x)")
    with cloud.platform:
        generator = LoadGenerator(cloud, prebind_spawns=True)
        result = generator.replay_async(trace, compression=args.compression,
                                        utilization_bucket_s=max(args.window / 10, 1.0))
    rows = [
        ("submitted", result.submitted),
        ("committed", result.committed),
        ("aborted", result.aborted),
        ("throughput (txn/s)", f"{result.throughput:.1f}"),
        ("median latency (ms)", f"{percentile(result.latencies, 50) * 1000:.1f}"),
        ("p95 latency (ms)", f"{percentile(result.latencies, 95) * 1000:.1f}"),
        ("avg controller busy fraction",
         f"{sum(u for _, u in result.utilization) / max(len(result.utilization), 1):.2f}"),
    ]
    print(ascii_table(("metric", "value"), rows, title="EC2 replay"))
    return 0


def cmd_replay_hosting(args: argparse.Namespace) -> int:
    """Replay the hosting-provider operation mix (§6.2)."""
    cloud = _build_cloud(args)
    trace = hosting_trace(HostingTraceParams(duration_s=args.window,
                                             num_operations=args.operations))
    with cloud.platform:
        generator = LoadGenerator(cloud)
        result = generator.replay_sync(trace)
        stats = cloud.platform.controller_stats()
    mix = trace.stats().mix
    rows = [
        ("operation mix", ", ".join(f"{op}:{n}" for op, n in sorted(mix.items()))),
        ("submitted", result.submitted),
        ("committed", result.committed),
        ("aborted", result.aborted),
        ("deferred (lock conflicts)", stats.get("deferred", 0)),
        ("median latency (ms)", f"{percentile(result.latencies, 50) * 1000:.1f}"),
    ]
    print(ascii_table(("metric", "value"), rows, title="hosting-workload replay"))
    return 0


def cmd_failover(args: argparse.Namespace) -> int:
    """Kill the lead controller mid-workload and measure recovery (§6.4)."""
    cloud = _build_cloud(args, threaded=True)
    clock = cloud.platform.clock
    with cloud.platform:
        for index in range(args.operations):
            cloud.spawn_vm(f"pre-{index}", mem_mb=256)
        handles = [cloud.spawn_vm(f"inflight-{i}", mem_mb=256, wait=False)
                   for i in range(5)]
        killed_at = clock.now()
        killed = cloud.platform.kill_leader()
        print(f"killed lead controller: {killed}")
        outcomes = [h.wait(timeout=30.0) for h in handles]
        recovered_at = clock.now()
        lost = [t for t in outcomes if t.state is not TransactionState.COMMITTED]
        print(f"in-flight transactions committed after failover: "
              f"{len(outcomes) - len(lost)}/{len(outcomes)}")
        print(f"time from kill to all in-flight transactions finished: "
              f"{recovered_at - killed_at:.2f}s")
        print(f"new leader: {cloud.platform.leader().name}")
        print(format_resilience(cloud.platform.resilience_stats()))
    return 0 if not lost else 1


def cmd_repair_drill(args: argparse.Namespace) -> int:
    """Simulate an out-of-band host reboot and repair it (§4)."""
    cloud = _build_cloud(args)
    with cloud.platform:
        for index in range(3):
            cloud.spawn_vm(f"svc-{index}", vm_host=cloud.inventory.vm_hosts[0], mem_mb=256)
        device = cloud.inventory.registry.device_at(cloud.inventory.vm_hosts[0])
        device.power_cycle()
        diff = cloud.platform.reconciler().detect()
        print(f"divergence after out-of-band reboot: {len(diff.all_deltas())} node(s)")
        report = cloud.platform.repair(cloud.inventory.vm_hosts[0])
        print(f"repair actions executed: {[a for _, a, _ in report.actions_executed]}")
        print(f"repair clean: {report.clean}")
        print(f"layers back in sync: {cloud.platform.reconciler().detect().is_empty}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the seeded chaos scenarios and check end-to-end invariants."""
    from repro.testing.chaos import run_soak

    seeds = list(range(args.seeds))
    reports = run_soak(seeds, num_ops=args.operations)
    for report in reports:
        print(report.summary())
    passed = sum(1 for r in reports if r.ok)
    print(f"chaos: {passed}/{len(reports)} scenarios passed "
          f"({sum(len(r.crashes) for r in reports)} crashes, "
          f"{sum(len(r.ensemble_faults) for r in reports)} ensemble faults, "
          f"{sum(r.client_retries for r in reports)} client retries)")
    return 0 if passed == len(reports) else 1


def cmd_twopc_gc(args: argparse.Namespace) -> int:
    """Demonstrate 2PC decision-record GC and the administrative sweep for
    a permanently decommissioned (retired) coordinator shard.

    Builds a sharded deployment, commits cross-shard transactions so the
    global decision log retains records keyed by coordinator shard
    (``/tropic/2pc/decisions/<shard>/<txid>``), then — with
    ``--retired-shard N`` — runs :meth:`TwoPCLog.retire_shard`: the retired
    shard's records are swept and its horizon is replaced by a retirement
    sentinel so the surviving coordinators' mark-and-sweep stops waiting
    for its checkpoints.
    """
    if args.shards < 2:
        args.shards = 2
    cloud = _build_cloud(args, logical_only=True)
    platform = cloud.platform
    with platform:
        twopc = platform.twopc
        # Pair each VM host with a storage host owned by another shard so
        # every spawn runs the full cross-shard two-phase protocol.
        router = platform.shard_router
        inventory = cloud.inventory
        spawned = 0
        for index, vm_host in enumerate(inventory.vm_hosts):
            partner = next(
                (s for s in inventory.storage_hosts
                 if router.shard_of(s) != router.shard_of(vm_host)),
                None,
            )
            if partner is None:
                continue
            txn = cloud.spawn_vm(
                f"gc-demo-{index}", vm_host=vm_host, storage_host=partner, mem_mb=256
            )
            if txn.state is TransactionState.COMMITTED:
                spawned += 1
            if spawned >= args.operations:
                break
        kv = twopc.kv
        def retained():
            counts: dict[str, int] = {}
            for child in kv.keys(twopc.DECISION_PREFIX):
                if child.startswith(twopc.SHARD_DIR_PREFIX):
                    counts[child] = len(kv.keys(f"{twopc.DECISION_PREFIX}/{child}"))
                else:
                    counts.setdefault("flat (legacy)", 0)
                    counts["flat (legacy)"] += 1
            return counts
        print(f"cross-shard transactions committed: {spawned}")
        rows = [(dir_, count) for dir_, count in sorted(retained().items())]
        print(ascii_table(("decision directory", "records"), rows,
                          title="retained decision records"))
        if args.retired_shard is None:
            print("\n(no --retired-shard given; records are garbage-collected "
                  "by their coordinators' quiesce-point checkpoints)")
            return 0
        result = twopc.retire_shard(args.retired_shard)
        print(f"\nretired shard {args.retired_shard}: "
              f"{result['records_removed']} record(s) swept, horizon replaced "
              f"by a retirement sentinel")
        rows = [(dir_, count) for dir_, count in sorted(retained().items())]
        print(ascii_table(("decision directory", "records"), rows,
                          title="retained decision records after sweep"))
        print(f"horizons now: {twopc.horizons()}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run a short logical workload and print the write-path stats."""
    cloud = _build_cloud(args, logical_only=True)
    with cloud.platform:
        for index in range(args.operations):
            cloud.spawn_vm(f"stat-{index}", mem_mb=256)
        leader = cloud.platform.leader()
        io = leader.io_stats()
        pipeline = io.pop("pipeline", {})
        rows = [
            (key, value)
            for key, value in sorted(io.items())
            if not isinstance(value, dict)
        ]
        print(ascii_table(
            ("counter", "value"), rows,
            title=f"store I/O ({args.operations} spawns, "
                  f"pipeline depth {leader.config.pipeline_depth})",
        ))
        print()
        print(format_pipeline(pipeline))
        print()
        checkpoint_rows = sorted(leader.store.checkpoint_stats.as_dict().items())
        print(ascii_table(("counter", "value"), checkpoint_rows, title="checkpoints"))
        print()
        print(format_resilience(cloud.platform.resilience_stats()))
    return 0


def cmd_inventory(args: argparse.Namespace) -> int:
    """Print the fleet layout and per-host utilisation."""
    cloud = _build_cloud(args)
    with cloud.platform:
        for index in range(args.operations):
            cloud.spawn_vm(f"seed-{index}", mem_mb=512)
        rows = []
        for host, info in sorted(cloud.host_utilisation().items()):
            rows.append((host, info["running"], f"{info['mem_used_mb']}/{info['mem_mb']} MB"))
        print(ascii_table(("compute host", "running VMs", "memory"), rows,
                          title="fleet utilisation"))
        print(f"\nstorage hosts: {len(cloud.inventory.storage_hosts)}   "
              f"routers: {len(cloud.inventory.routers)}   "
              f"resources in the data model: {cloud.platform.resource_count()}")
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tropic-demo",
        description="Self-contained demonstrations of the TROPIC reproduction.",
    )
    parser.add_argument("--hosts", type=int, default=4,
                        help="number of compute hosts in the simulated fleet")
    parser.add_argument("--host-mem-mb", type=int, default=8192,
                        help="memory capacity of each compute host (MB)")
    parser.add_argument("--shards", type=int, default=1,
                        help="number of controller shards the data-model tree "
                             "is partitioned over (1 = the paper's single "
                             "controller)")
    parser.add_argument("--cross-shard", choices=("reject", "pin", "2pc"),
                        default="2pc",
                        help="policy for transactions spanning shards: reject "
                             "at submit time, run two-phase commit across the "
                             "shard leaders (2pc, default for the demos), or "
                             "pin to the lowest involved shard (deprecated; "
                             "pinned effects on foreign subtrees are visible "
                             "only through the pinned shard)")
    parser.add_argument("--read-mode", choices=("replica", "leader"),
                        default="replica",
                        help="default consistency of fleet reads for shards "
                             "this process does not host: serve them from "
                             "per-shard read replicas tailing the owners' "
                             "committed logs (replica, bounded-stale), or "
                             "refuse partial hosting (leader)")

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the spawnVM execution log (Table 1)")
    sub.add_parser("lifecycle", help="VM life-cycle walkthrough with a constraint abort")

    replay = sub.add_parser("replay-ec2", help="replay a scaled EC2 spawn trace")
    replay.add_argument("--window", type=int, default=60,
                        help="trace window in seconds (paper: 3600)")
    replay.add_argument("--multiplier", type=int, default=1, choices=range(1, 6),
                        help="workload multiplier (1x-5x, Figure 4/5)")
    replay.add_argument("--compression", type=float, default=6.0,
                        help="time-compression factor for the replay")

    hosting = sub.add_parser("replay-hosting", help="replay the hosting operation mix")
    hosting.add_argument("--window", type=int, default=120, help="trace window in seconds")
    hosting.add_argument("--operations", type=int, default=60,
                         help="number of operations to generate")

    failover = sub.add_parser("failover", help="leader-failover drill (§6.4)")
    failover.add_argument("--operations", type=int, default=10,
                          help="transactions committed before the kill")

    sub.add_parser("repair-drill", help="out-of-band change + repair drill (§4)")

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos scenarios: crashes + ensemble faults + "
             "tokened client retries, with invariant checks",
    )
    chaos.add_argument("--seeds", type=int, default=8,
                       help="number of seeded scenarios to run (seeds 0..N-1)")
    chaos.add_argument("--operations", type=int, default=10,
                       help="operations per scenario")

    stats = sub.add_parser(
        "stats",
        help="run a short workload and print write-path instrumentation: "
             "store I/O, commit-pipeline flush/window stats, checkpoint "
             "round-trips, resilience counters",
    )
    stats.add_argument("--operations", type=int, default=24,
                       help="VMs to spawn before reporting the counters")
    stats.add_argument("--pipeline-depth", type=int, default=1,
                       help="commit-pipeline in-flight window depth "
                            "(config.pipeline_depth; 1 = serial group commit)")

    inventory = sub.add_parser("inventory", help="show fleet and utilisation")
    inventory.add_argument("--operations", type=int, default=6,
                           help="VMs to seed before reporting utilisation")

    twopc_gc = sub.add_parser(
        "2pc-gc",
        help="2PC decision-record retention drill, incl. the administrative "
             "sweep for a permanently decommissioned coordinator shard",
    )
    twopc_gc.add_argument("--retired-shard", type=int, default=None,
                          help="permanently decommissioned shard whose "
                               "decision records should be swept and whose "
                               "horizon should be retired")
    twopc_gc.add_argument("--operations", type=int, default=4,
                          help="cross-shard transactions to commit before "
                               "inspecting the decision log")

    return parser


_COMMANDS = {
    "table1": cmd_table1,
    "lifecycle": cmd_lifecycle,
    "replay-ec2": cmd_replay_ec2,
    "replay-hosting": cmd_replay_hosting,
    "failover": cmd_failover,
    "repair-drill": cmd_repair_drill,
    "chaos": cmd_chaos,
    "stats": cmd_stats,
    "inventory": cmd_inventory,
    "2pc-gc": cmd_twopc_gc,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
