"""The data model tree used by both the logical and physical layers.

Snapshots are copy-on-write (PR 5): :meth:`DataModel.clone` is an O(1)
*fork* — both trees share every node structurally, and each side
path-copies only the spine from the root to a mutated node (plus the
mutation target's subtree, claimed on first touch) before writing.  See
``docs/architecture.md#copy-on-write-snapshots`` for the ownership rules.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator

from repro.common.errors import DataModelError, InconsistencyError, UnknownPathError
from repro.datamodel.node import Node
from repro.datamodel.path import ROOT_PATH, ResourcePath

PathLike = "str | ResourcePath"

#: Global copy-on-write epoch source.  Epochs are unique across every
#: DataModel in the process, so a node stamped by one model's lineage can
#: never be mistaken for another's.
_EPOCHS = itertools.count(1)


class DataModel:
    """A tree of :class:`Node` objects addressed by :class:`ResourcePath`.

    The controller holds one instance as the *logical* data model; the
    physical layer derives equivalent instances from device state for
    reconciliation.  The class is deliberately a plain in-memory structure:
    durability is provided by the persistence layer (checkpoints and
    execution logs in the coordination store), not by the tree itself.

    **Copy-on-write ownership.**  Every model carries an ownership set of
    epoch stamps; a node may be mutated in place only if ``node.epoch`` is
    in the set.  :meth:`clone` forks the tree in O(1): the fork shares the
    root, and *both* models move to fresh ownership sets, so every
    pre-fork node becomes frozen for both sides.  Writers go through
    :meth:`get_for_write` (or the DataModel mutators), which path-copies
    shared spine nodes and claims the mutation target's subtree with a
    structural copy on first touch.  Direct ``Node``-API mutation is safe
    only inside a subtree returned by :meth:`get_for_write` — that is the
    contract the action-simulation funnel (``OrchestrationContext.do``,
    log replay/undo) upholds.
    """

    def __init__(self, root: Node | None = None):
        self.root = root or Node("", "root")
        #: Copy-on-write identity.  Nodes stamped ``+_epoch`` are
        #: *subtree-owned* (the whole subtree is exclusively this model's:
        #: claims via :meth:`get_for_write`, creations); nodes stamped
        #: ``-_epoch`` are *spine-owned* (the node itself is a private
        #: copy, its children may still be shared).  While ``_zero_owned``
        #: holds (no fork has ever happened), unstamped (epoch 0) nodes
        #: are subtree-owned too — a freshly built tree is unshared, so
        #: the write path pays nothing until the first snapshot.
        self._epoch = next(_EPOCHS)
        self._zero_owned = True
        #: Monotonic mutation counter (cheap change detection for read
        #: caches, e.g. the platform's merged fleet view).
        self._version = 0
        # -- per-subtree dirty tracking (incremental checkpoints) --------
        # Checkpoints are stored as one document per *second-level* node
        # (e.g. one per vmHost), so dirt is tracked at that granularity:
        # ``_dirty_pairs`` holds (top, child) units, ``_dirty_tops`` holds
        # top-level names whose entire subtree must be considered dirty
        # (subtree replacement, attribute edits on the top node).  A fresh
        # model is conservatively all-dirty so the first checkpoint is
        # always a full one.
        self._dirty_pairs: set[tuple[str, str]] = set()
        self._dirty_tops: set[str] = set()
        self._all_dirty = True

    # -- copy-on-write ownership ------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation entry point."""
        return self._version

    def owns(self, node: Node) -> bool:
        """Whether ``node`` may be mutated in place by this model (its
        *children* may still be shared; see :meth:`owns_subtree`)."""
        return self.owns_subtree(node) or node.epoch == -self._epoch

    def owns_subtree(self, node: Node) -> bool:
        """Whether the whole subtree under ``node`` is exclusively this
        model's (safe for direct Node-API mutation of descendants)."""
        return node.epoch == self._epoch or (self._zero_owned and node.epoch == 0)

    def _own_spine(self, rpath: ResourcePath, demote: bool = False) -> Node:
        """Return the node at ``rpath`` with every node from the root down
        to it exclusively owned via shallow (children-sharing) copies.
        The returned node's attrs may be mutated and its children dict
        restructured in place; its child *objects* may still be shared.

        ``demote=True`` downgrades every spine node to spine ownership
        (``-epoch``): used when a *shared* subtree is about to be grafted
        below, which invalidates any ancestor's subtree-ownership claim.
        """
        node = self.root
        if not self.owns(node):
            node = node.copy_node(-self._epoch)
            self.root = node
        elif demote and node.epoch != -self._epoch:
            node.epoch = -self._epoch
        for part in rpath.parts:
            child = node.child(part)
            if child is None:
                raise UnknownPathError(f"no node at {rpath} (missing {part!r})")
            if not self.owns(child):
                child = child.copy_node(-self._epoch)
                child.parent = node
                node.children[part] = child
            elif demote and child.epoch != -self._epoch:
                child.epoch = -self._epoch
            node = child
        return node

    def get_for_write(self, path: PathLike) -> Node:
        """Return the node at ``path`` with its *entire subtree* exclusively
        owned, path-copying the spine and claiming the subtree with a
        structural copy if it is shared with a snapshot or fork.

        This is the mutation funnel for code that writes through the Node
        API directly (action simulation functions, execution-log replay):
        inside the returned subtree, in-place mutation is safe.  Cost is
        O(path depth) once the subtree is owned; the one-time claim is
        O(subtree) — a second-level checkpoint unit in practice, never the
        whole model.
        """
        rpath = ResourcePath.parse(path)
        # The caller is about to mutate this subtree directly, so its
        # checkpoint unit has diverged; marking here (not just via the
        # transaction write set) keeps incremental checkpoints correct for
        # every funnelled write.  mark_dirty also bumps the version.
        self.mark_dirty(rpath)
        if rpath.is_root():
            # Root-targeted writers (none exist today) get a shallow-owned
            # root; claiming the whole tree would defeat O(1) snapshots.
            return self._own_spine(rpath)
        parent = self._own_spine(rpath.parent)
        child = parent.child(rpath.name)
        if child is None:
            raise UnknownPathError(f"no node at {rpath} (missing {rpath.name!r})")
        if not self.owns_subtree(child):
            if child.epoch == -self._epoch:
                # A spine copy of ours: mutable already, only its shared
                # descendants need copying.
                child.promote_subtree(self._epoch)
            else:
                child = child.copy_subtree(self._epoch)
                child.parent = parent
                parent.children[rpath.name] = child
        return child

    # -- dirty tracking ---------------------------------------------------

    def mark_dirty(self, path: PathLike) -> None:
        """Record that the checkpoint unit containing ``path`` diverged
        from the last checkpoint.  Mutations at the root mark everything;
        mutations on a top-level node mark its whole subtree."""
        rpath = ResourcePath.parse(path)
        self._version += 1
        parts = rpath.parts
        if not parts:
            self._all_dirty = True
        elif len(parts) == 1:
            self._dirty_tops.add(parts[0])
        else:
            self._dirty_pairs.add((parts[0], parts[1]))

    def mark_all_dirty(self) -> None:
        self._version += 1
        self._all_dirty = True

    def dirty_state(self) -> tuple[bool, set[str], set[tuple[str, str]]]:
        """``(all_dirty, dirty_top_names, dirty_pairs)`` accumulated since
        the last :meth:`clear_dirty`."""
        return self._all_dirty, set(self._dirty_tops), set(self._dirty_pairs)

    def clear_dirty(self) -> None:
        """Called by the persistence layer after a checkpoint captured the
        current state."""
        self._dirty_pairs.clear()
        self._dirty_tops.clear()
        self._all_dirty = False

    # -- lookup ---------------------------------------------------------

    def get(self, path: PathLike) -> Node:
        """Return the node at ``path`` or raise :class:`UnknownPathError`."""
        rpath = ResourcePath.parse(path)
        node = self.root
        for part in rpath.parts:
            child = node.child(part)
            if child is None:
                raise UnknownPathError(f"no node at {rpath} (missing {part!r})")
            node = child
        return node

    def exists(self, path: PathLike) -> bool:
        try:
            self.get(path)
            return True
        except UnknownPathError:
            return False

    def get_attr(self, path: PathLike, key: str, default: Any = None) -> Any:
        return self.get(path).get(key, default)

    def children(self, path: PathLike) -> list[Node]:
        node = self.get(path)
        return [node.children[name] for name in sorted(node.children)]

    def child_paths(self, path: PathLike) -> list[ResourcePath]:
        rpath = ResourcePath.parse(path)
        return [rpath.child(name) for name in sorted(self.get(rpath).children)]

    # -- mutation --------------------------------------------------------

    def create(
        self,
        path: PathLike,
        entity_type: str,
        attrs: dict[str, Any] | None = None,
    ) -> Node:
        """Create a node at ``path``; the parent must already exist."""
        rpath = ResourcePath.parse(path)
        if rpath.is_root():
            raise DataModelError("cannot create the root node")
        if self.get(rpath.parent).child(rpath.name) is not None:
            raise DataModelError(f"node already exists at {rpath}")
        parent = self._own_spine(rpath.parent)
        node = Node(rpath.name, entity_type, attrs)
        node.epoch = self._epoch
        parent.add_child(node)
        self.mark_dirty(rpath)
        return node

    def ensure(
        self,
        path: PathLike,
        entity_type: str,
        attrs: dict[str, Any] | None = None,
    ) -> Node:
        """Return the node at ``path``, creating it (and no ancestors) if absent."""
        rpath = ResourcePath.parse(path)
        if self.exists(rpath):
            return self.get(rpath)
        return self.create(rpath, entity_type, attrs)

    def delete(self, path: PathLike, recursive: bool = False) -> Node:
        """Remove the node at ``path``.

        Non-recursive deletion of a node with children is an error, mirroring
        the behaviour of decommissioning only empty resources.
        """
        rpath = ResourcePath.parse(path)
        if rpath.is_root():
            raise DataModelError("cannot delete the root node")
        node = self.get(rpath)
        if node.children and not recursive:
            raise DataModelError(f"node {rpath} has children; use recursive=True")
        parent = self._own_spine(rpath.parent)
        self.mark_dirty(rpath)
        child = parent.children.pop(rpath.name)
        # A child shared with a snapshot keeps its parent pointer: the
        # snapshot still reaches it top-down and its name chain (which is
        # all ``Node.path`` reads) is unchanged.  An exclusively owned
        # child is detached exactly as before.
        if self.owns(child):
            child.parent = None
        return child

    def set_attrs(self, path: PathLike, **attrs: Any) -> Node:
        node = self._own_spine(ResourcePath.parse(path))
        node.attrs.update(attrs)
        self.mark_dirty(path)
        return node

    def replace_subtree(self, path: PathLike, subtree: Node) -> Node:
        """Replace the node at ``path`` with ``subtree`` (used by *reload*,
        and by the merged fleet view to graft shared snapshot subtrees).

        A subtree this model does not own is grafted *without* mutating it
        when its name already matches (structural sharing: the donor tree
        keeps it untouched); a shared subtree under a different name is
        spine-copied first so the rename cannot corrupt the donor.
        """
        rpath = ResourcePath.parse(path)
        shared_graft = not self.owns_subtree(subtree)
        if rpath.is_root():
            if shared_graft and subtree.name != "":
                subtree = subtree.copy_node(-self._epoch)
            if self.owns(subtree):
                subtree.parent = None
                subtree.name = ""
            self.root = subtree
            self.mark_all_dirty()
            return subtree
        # Grafting a subtree we do not own in full invalidates every
        # ancestor's subtree-ownership claim — demote the spine so a later
        # get_for_write on an ancestor still copies the shared parts.
        parent = self._own_spine(rpath.parent, demote=shared_graft)
        existing = parent.children.pop(rpath.name, None)
        if existing is not None and self.owns(existing):
            existing.parent = None
        if shared_graft and not self.owns(subtree) and subtree.name != rpath.name:
            subtree = subtree.copy_node(-self._epoch)
        if self.owns(subtree):
            subtree.name = rpath.name
            subtree.parent = parent
        parent.children[rpath.name] = subtree
        self.mark_dirty(rpath)
        return subtree

    # -- traversal -------------------------------------------------------

    def walk(self, start: PathLike = ROOT_PATH) -> Iterator[tuple[ResourcePath, Node]]:
        """Yield ``(path, node)`` pairs for the subtree rooted at ``start``."""
        start_path = ResourcePath.parse(start)
        start_node = self.get(start_path)
        stack: list[tuple[ResourcePath, Node]] = [(start_path, start_node)]
        while stack:
            path, node = stack.pop()
            yield path, node
            for name in sorted(node.children, reverse=True):
                stack.append((path.child(name), node.children[name]))

    def find(
        self,
        entity_type: str | None = None,
        predicate: Callable[[ResourcePath, Node], bool] | None = None,
        start: PathLike = ROOT_PATH,
    ) -> list[ResourcePath]:
        """Return paths of nodes matching an entity type and/or predicate."""
        matches = []
        for path, node in self.walk(start):
            if entity_type is not None and node.entity_type != entity_type:
                continue
            if predicate is not None and not predicate(path, node):
                continue
            matches.append(path)
        return matches

    def count(self, entity_type: str | None = None) -> int:
        """Number of nodes (optionally of one entity type) in the model."""
        return sum(
            1
            for _, node in self.walk()
            if entity_type is None or node.entity_type == entity_type
        )

    # -- inconsistency fencing (§4) ---------------------------------------

    def mark_inconsistent(self, path: PathLike) -> None:
        """Fence off a subtree after a cross-layer inconsistency is detected."""
        self._own_spine(ResourcePath.parse(path)).inconsistent = True
        self.mark_dirty(path)

    def clear_inconsistent(self, path: PathLike) -> None:
        self._own_spine(ResourcePath.parse(path)).inconsistent = False
        self.mark_dirty(path)

    def is_fenced(self, path: PathLike) -> bool:
        """True if ``path`` or any ancestor is marked inconsistent."""
        rpath = ResourcePath.parse(path)
        node = self.root
        if node.inconsistent:
            return True
        for part in rpath.parts:
            node = node.child(part)
            if node is None:
                return False
            if node.inconsistent:
                return True
        return False

    def check_not_fenced(self, path: PathLike) -> None:
        if self.is_fenced(path):
            raise InconsistencyError(
                f"resource {ResourcePath.parse(path)} is fenced pending reconciliation",
                path=str(path),
            )

    def inconsistent_paths(self) -> list[ResourcePath]:
        return [path for path, node in self.walk() if node.inconsistent]

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return self.root.to_dict()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DataModel":
        return cls(Node.from_dict(data))

    def clone(self) -> "DataModel":
        """O(1) copy-on-write fork sharing every node with this model.

        Both trees move to fresh ownership epochs, so all pre-fork nodes
        are frozen for *both* sides; each side path-copies what it mutates
        (see the class docstring).  The fork is independently mutable and
        starts conservatively all-dirty, exactly like the deep clone it
        replaces; :meth:`deep_clone` remains for callers that need
        physically disjoint trees.
        """
        fork = DataModel(self.root)
        fork._zero_owned = False
        self._epoch = next(_EPOCHS)
        self._zero_owned = False
        return fork

    def deep_clone(self) -> "DataModel":
        """Full structural deep copy (the pre-CoW ``clone`` semantics)."""
        return DataModel(self.root.clone())

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        return f"<DataModel nodes={self.count()}>"
