"""The data model tree used by both the logical and physical layers."""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.common.errors import DataModelError, InconsistencyError, UnknownPathError
from repro.datamodel.node import Node
from repro.datamodel.path import ROOT_PATH, ResourcePath

PathLike = "str | ResourcePath"


class DataModel:
    """A tree of :class:`Node` objects addressed by :class:`ResourcePath`.

    The controller holds one instance as the *logical* data model; the
    physical layer derives equivalent instances from device state for
    reconciliation.  The class is deliberately a plain in-memory structure:
    durability is provided by the persistence layer (checkpoints and
    execution logs in the coordination store), not by the tree itself.
    """

    def __init__(self, root: Node | None = None):
        self.root = root or Node("", "root")
        # -- per-subtree dirty tracking (incremental checkpoints) --------
        # Checkpoints are stored as one document per *second-level* node
        # (e.g. one per vmHost), so dirt is tracked at that granularity:
        # ``_dirty_pairs`` holds (top, child) units, ``_dirty_tops`` holds
        # top-level names whose entire subtree must be considered dirty
        # (subtree replacement, attribute edits on the top node).  A fresh
        # model is conservatively all-dirty so the first checkpoint is
        # always a full one.
        self._dirty_pairs: set[tuple[str, str]] = set()
        self._dirty_tops: set[str] = set()
        self._all_dirty = True

    # -- dirty tracking ---------------------------------------------------

    def mark_dirty(self, path: PathLike) -> None:
        """Record that the checkpoint unit containing ``path`` diverged
        from the last checkpoint.  Mutations at the root mark everything;
        mutations on a top-level node mark its whole subtree."""
        rpath = ResourcePath.parse(path)
        parts = rpath.parts
        if not parts:
            self._all_dirty = True
        elif len(parts) == 1:
            self._dirty_tops.add(parts[0])
        else:
            self._dirty_pairs.add((parts[0], parts[1]))

    def mark_all_dirty(self) -> None:
        self._all_dirty = True

    def dirty_state(self) -> tuple[bool, set[str], set[tuple[str, str]]]:
        """``(all_dirty, dirty_top_names, dirty_pairs)`` accumulated since
        the last :meth:`clear_dirty`."""
        return self._all_dirty, set(self._dirty_tops), set(self._dirty_pairs)

    def clear_dirty(self) -> None:
        """Called by the persistence layer after a checkpoint captured the
        current state."""
        self._dirty_pairs.clear()
        self._dirty_tops.clear()
        self._all_dirty = False

    # -- lookup ---------------------------------------------------------

    def get(self, path: PathLike) -> Node:
        """Return the node at ``path`` or raise :class:`UnknownPathError`."""
        rpath = ResourcePath.parse(path)
        node = self.root
        for part in rpath.parts:
            child = node.child(part)
            if child is None:
                raise UnknownPathError(f"no node at {rpath} (missing {part!r})")
            node = child
        return node

    def exists(self, path: PathLike) -> bool:
        try:
            self.get(path)
            return True
        except UnknownPathError:
            return False

    def get_attr(self, path: PathLike, key: str, default: Any = None) -> Any:
        return self.get(path).get(key, default)

    def children(self, path: PathLike) -> list[Node]:
        node = self.get(path)
        return [node.children[name] for name in sorted(node.children)]

    def child_paths(self, path: PathLike) -> list[ResourcePath]:
        rpath = ResourcePath.parse(path)
        return [rpath.child(name) for name in sorted(self.get(rpath).children)]

    # -- mutation --------------------------------------------------------

    def create(
        self,
        path: PathLike,
        entity_type: str,
        attrs: dict[str, Any] | None = None,
    ) -> Node:
        """Create a node at ``path``; the parent must already exist."""
        rpath = ResourcePath.parse(path)
        if rpath.is_root():
            raise DataModelError("cannot create the root node")
        parent = self.get(rpath.parent)
        if parent.child(rpath.name) is not None:
            raise DataModelError(f"node already exists at {rpath}")
        node = Node(rpath.name, entity_type, attrs)
        parent.add_child(node)
        self.mark_dirty(rpath)
        return node

    def ensure(
        self,
        path: PathLike,
        entity_type: str,
        attrs: dict[str, Any] | None = None,
    ) -> Node:
        """Return the node at ``path``, creating it (and no ancestors) if absent."""
        rpath = ResourcePath.parse(path)
        if self.exists(rpath):
            return self.get(rpath)
        return self.create(rpath, entity_type, attrs)

    def delete(self, path: PathLike, recursive: bool = False) -> Node:
        """Remove the node at ``path``.

        Non-recursive deletion of a node with children is an error, mirroring
        the behaviour of decommissioning only empty resources.
        """
        rpath = ResourcePath.parse(path)
        if rpath.is_root():
            raise DataModelError("cannot delete the root node")
        node = self.get(rpath)
        if node.children and not recursive:
            raise DataModelError(f"node {rpath} has children; use recursive=True")
        parent = self.get(rpath.parent)
        self.mark_dirty(rpath)
        return parent.remove_child(rpath.name)

    def set_attrs(self, path: PathLike, **attrs: Any) -> Node:
        node = self.get(path)
        node.attrs.update(attrs)
        self.mark_dirty(path)
        return node

    def replace_subtree(self, path: PathLike, subtree: Node) -> Node:
        """Replace the node at ``path`` with ``subtree`` (used by *reload*)."""
        rpath = ResourcePath.parse(path)
        if rpath.is_root():
            self.root = subtree
            subtree.parent = None
            subtree.name = ""
            self.mark_all_dirty()
            return subtree
        parent = self.get(rpath.parent)
        if rpath.name in parent.children:
            parent.remove_child(rpath.name)
        subtree.name = rpath.name
        parent.add_child(subtree)
        self.mark_dirty(rpath)
        return subtree

    # -- traversal -------------------------------------------------------

    def walk(self, start: PathLike = ROOT_PATH) -> Iterator[tuple[ResourcePath, Node]]:
        """Yield ``(path, node)`` pairs for the subtree rooted at ``start``."""
        start_path = ResourcePath.parse(start)
        start_node = self.get(start_path)
        stack: list[tuple[ResourcePath, Node]] = [(start_path, start_node)]
        while stack:
            path, node = stack.pop()
            yield path, node
            for name in sorted(node.children, reverse=True):
                stack.append((path.child(name), node.children[name]))

    def find(
        self,
        entity_type: str | None = None,
        predicate: Callable[[ResourcePath, Node], bool] | None = None,
        start: PathLike = ROOT_PATH,
    ) -> list[ResourcePath]:
        """Return paths of nodes matching an entity type and/or predicate."""
        matches = []
        for path, node in self.walk(start):
            if entity_type is not None and node.entity_type != entity_type:
                continue
            if predicate is not None and not predicate(path, node):
                continue
            matches.append(path)
        return matches

    def count(self, entity_type: str | None = None) -> int:
        """Number of nodes (optionally of one entity type) in the model."""
        return sum(
            1
            for _, node in self.walk()
            if entity_type is None or node.entity_type == entity_type
        )

    # -- inconsistency fencing (§4) ---------------------------------------

    def mark_inconsistent(self, path: PathLike) -> None:
        """Fence off a subtree after a cross-layer inconsistency is detected."""
        self.get(path).inconsistent = True
        self.mark_dirty(path)

    def clear_inconsistent(self, path: PathLike) -> None:
        self.get(path).inconsistent = False
        self.mark_dirty(path)

    def is_fenced(self, path: PathLike) -> bool:
        """True if ``path`` or any ancestor is marked inconsistent."""
        rpath = ResourcePath.parse(path)
        node = self.root
        if node.inconsistent:
            return True
        for part in rpath.parts:
            node = node.child(part)
            if node is None:
                return False
            if node.inconsistent:
                return True
        return False

    def check_not_fenced(self, path: PathLike) -> None:
        if self.is_fenced(path):
            raise InconsistencyError(
                f"resource {ResourcePath.parse(path)} is fenced pending reconciliation",
                path=str(path),
            )

    def inconsistent_paths(self) -> list[ResourcePath]:
        return [path for path, node in self.walk() if node.inconsistent]

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return self.root.to_dict()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DataModel":
        return cls(Node.from_dict(data))

    def clone(self) -> "DataModel":
        return DataModel(self.root.clone())

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        return f"<DataModel nodes={self.count()}>"
