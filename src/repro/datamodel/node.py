"""Tree nodes of the hierarchical data model."""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.errors import DataModelError
from repro.common.jsonutil import deep_copy
from repro.datamodel.path import ResourcePath


class Node:
    """A single object in the data model tree.

    A node carries the entity type name (e.g. ``"vmHost"``), a dictionary
    of JSON-serialisable attributes, and named children.  Nodes also carry
    the *inconsistent* flag used by reconciliation (§4): when a cross-layer
    inconsistency is detected on a node, the node and its descendants are
    fenced off from further transactions until repaired or reloaded.
    """

    __slots__ = ("name", "entity_type", "attrs", "children", "parent", "inconsistent")

    def __init__(
        self,
        name: str,
        entity_type: str,
        attrs: dict[str, Any] | None = None,
        parent: "Node | None" = None,
    ):
        self.name = name
        self.entity_type = entity_type
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.children: dict[str, Node] = {}
        self.parent = parent
        self.inconsistent = False

    # -- structure ----------------------------------------------------

    @property
    def path(self) -> ResourcePath:
        """Reconstruct this node's path by walking up to the root."""
        parts: list[str] = []
        node: Node | None = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return ResourcePath(reversed(parts))

    def add_child(self, child: "Node") -> "Node":
        if child.name in self.children:
            raise DataModelError(f"duplicate child {child.name!r} under {self.path}")
        child.parent = self
        self.children[child.name] = child
        return child

    def remove_child(self, name: str) -> "Node":
        try:
            child = self.children.pop(name)
        except KeyError:
            raise DataModelError(f"no child {name!r} under {self.path}") from None
        child.parent = None
        return child

    def child(self, name: str) -> "Node | None":
        return self.children.get(name)

    def iter_subtree(self) -> Iterator["Node"]:
        """Yield this node and all descendants, depth-first, children in
        name order (deterministic for serialisation and diffing)."""
        yield self
        for name in sorted(self.children):
            yield from self.children[name].iter_subtree()

    # -- attributes ---------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def __getitem__(self, key: str) -> Any:
        try:
            return self.attrs[key]
        except KeyError:
            raise DataModelError(f"node {self.path} has no attribute {key!r}") from None

    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.attrs

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise the subtree rooted at this node."""
        return {
            "name": self.name,
            "entity_type": self.entity_type,
            "attrs": deep_copy(self.attrs),
            "inconsistent": self.inconsistent,
            "children": [self.children[name].to_dict() for name in sorted(self.children)],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any], parent: "Node | None" = None) -> "Node":
        node = cls(data["name"], data["entity_type"], data.get("attrs") or {}, parent)
        node.inconsistent = bool(data.get("inconsistent", False))
        for child_data in data.get("children", []):
            child = cls.from_dict(child_data, node)
            node.children[child.name] = child
        return node

    def clone(self) -> "Node":
        """Deep copy of the subtree (parent link of the copy is ``None``)."""
        return Node.from_dict(self.to_dict())

    def __repr__(self) -> str:
        return f"<Node {self.path} type={self.entity_type} attrs={self.attrs}>"
