"""Tree nodes of the hierarchical data model."""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.errors import DataModelError
from repro.common.jsonutil import deep_copy
from repro.datamodel.path import ResourcePath


class Node:
    """A single object in the data model tree.

    A node carries the entity type name (e.g. ``"vmHost"``), a dictionary
    of JSON-serialisable attributes, and named children.  Nodes also carry
    the *inconsistent* flag used by reconciliation (§4): when a cross-layer
    inconsistency is detected on a node, the node and its descendants are
    fenced off from further transactions until repaired or reloaded.

    ``epoch`` is the copy-on-write version stamp (see
    :class:`~repro.datamodel.tree.DataModel`): a node may be mutated in
    place only by the model whose ownership set contains its epoch; every
    other tree sharing it structurally must copy it first.  The stamp is an
    in-memory sharing artifact and is never serialised, so checkpoints and
    ``to_dict`` output are byte-identical to the pre-CoW format.
    """

    __slots__ = (
        "name", "entity_type", "attrs", "children", "parent", "inconsistent", "epoch"
    )

    def __init__(
        self,
        name: str,
        entity_type: str,
        attrs: dict[str, Any] | None = None,
        parent: "Node | None" = None,
    ):
        self.name = name
        self.entity_type = entity_type
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.children: dict[str, Node] = {}
        self.parent = parent
        self.inconsistent = False
        #: 0 = unstamped: exclusive to the model that built the tree until
        #: that model is forked, shared afterwards (a 0-epoch node created
        #: after a fork is conservatively treated as shared and copied on
        #: first write, which is always safe).  A model stamps ``+epoch``
        #: on nodes whose *whole subtree* it owns (claims, creations) and
        #: ``-epoch`` on spine copies, whose children may still be shared.
        self.epoch = 0

    # -- structure ----------------------------------------------------

    @property
    def path(self) -> ResourcePath:
        """Reconstruct this node's path by walking up to the root."""
        parts: list[str] = []
        node: Node | None = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return ResourcePath(reversed(parts))

    def add_child(self, child: "Node") -> "Node":
        if child.name in self.children:
            raise DataModelError(f"duplicate child {child.name!r} under {self.path}")
        child.parent = self
        self.children[child.name] = child
        return child

    def remove_child(self, name: str) -> "Node":
        try:
            child = self.children.pop(name)
        except KeyError:
            raise DataModelError(f"no child {name!r} under {self.path}") from None
        child.parent = None
        return child

    def child(self, name: str) -> "Node | None":
        return self.children.get(name)

    def iter_subtree(self) -> Iterator["Node"]:
        """Yield this node and all descendants, depth-first, children in
        name order (deterministic for serialisation and diffing)."""
        yield self
        for name in sorted(self.children):
            yield from self.children[name].iter_subtree()

    # -- attributes ---------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def __getitem__(self, key: str) -> Any:
        try:
            return self.attrs[key]
        except KeyError:
            raise DataModelError(f"node {self.path} has no attribute {key!r}") from None

    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.attrs

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise the subtree rooted at this node."""
        return {
            "name": self.name,
            "entity_type": self.entity_type,
            "attrs": deep_copy(self.attrs),
            "inconsistent": self.inconsistent,
            "children": [self.children[name].to_dict() for name in sorted(self.children)],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any], parent: "Node | None" = None) -> "Node":
        node = cls(data["name"], data["entity_type"], data.get("attrs") or {}, parent)
        node.inconsistent = bool(data.get("inconsistent", False))
        for child_data in data.get("children", []):
            child = cls.from_dict(child_data, node)
            node.children[child.name] = child
        return node

    def clone(self) -> "Node":
        """Deep copy of the subtree (parent link of the copy is ``None``)."""
        return Node.from_dict(self.to_dict())

    # -- copy-on-write copies ------------------------------------------

    def copy_node(self, epoch: int) -> "Node":
        """Spine copy for path-copying writers: a new node stamped with
        ``epoch`` whose attrs are private but whose *children are shared*
        with the original (the parent link is left for the caller to set).

        The copy's children keep their parent pointers into the original
        spine; that is safe because a spine copy never changes names, so
        the name chain — all :meth:`path` ever reads — is identical.
        """
        node = Node.__new__(Node)
        node.name = self.name
        node.entity_type = self.entity_type
        node.attrs = deep_copy(self.attrs)
        node.children = dict(self.children)
        node.parent = None
        node.inconsistent = self.inconsistent
        node.epoch = epoch
        return node

    def copy_subtree(self, epoch: int) -> "Node":
        """Structural deep copy of the whole subtree, every copy stamped
        with ``epoch`` — used by writers claiming exclusive ownership of a
        mutation target whose descendants may be mutated directly through
        the Node API (action simulation functions)."""
        node = self.copy_node(epoch)
        for name, child in self.children.items():
            copied = child.copy_subtree(epoch)
            copied.parent = node
            node.children[name] = copied
        return node

    def promote_subtree(self, epoch: int) -> None:
        """Upgrade a spine-owned node (stamped ``-epoch``: mutable, but
        with possibly-shared children) to full subtree ownership, copying
        exactly the descendants that are still shared.  Children already
        stamped ``+epoch`` were claimed or created whole and are skipped."""
        self.epoch = epoch
        for name, child in list(self.children.items()):
            if child.epoch == epoch:
                continue
            if child.epoch == -epoch:
                child.promote_subtree(epoch)
                continue
            copied = child.copy_subtree(epoch)
            copied.parent = self
            self.children[name] = copied

    def __repr__(self) -> str:
        return f"<Node {self.path} type={self.entity_type} attrs={self.attrs}>"
