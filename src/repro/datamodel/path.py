"""Resource paths.

Every object in the data model is identified by a slash-separated path such
as ``/vmRoot/vmHost3/vm17`` (cf. the execution log in Table 1 of the paper:
``/storageRoot/storageHost``, ``/vmRoot/vmHost``).  Paths are immutable and
hashable so they can key lock tables and inconsistency sets.

Paths are also *interned*: parsing the same string, or deriving the same
component tuple (child/parent/ancestor navigation), returns a shared
instance.  The controller hot path parses every read/write-set entry on
every scheduling pass and expands ancestor chains for intention locking, so
interning turns the dominant allocation cost into a dictionary hit and lets
equality short-circuit on identity.  The caches are bounded and simply
reset when full (paths are cheap to rebuild).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.common.errors import DataModelError

_COMPONENT_RE = re.compile(r"^[A-Za-z0-9._\-]+$")

#: Bounded intern caches: parse-text -> path and parts-tuple -> path.
_PARSE_CACHE: dict[str, "ResourcePath"] = {}
_PARTS_CACHE: dict[tuple[str, ...], "ResourcePath"] = {}
_CACHE_LIMIT = 1 << 16


class ResourcePath:
    """An immutable, normalised path in the resource tree."""

    __slots__ = ("_parts", "_hash", "_str")

    def __init__(self, parts: Iterable[str] = ()):
        parts = tuple(parts)
        for part in parts:
            if not _COMPONENT_RE.match(part):
                raise DataModelError(f"invalid path component: {part!r}")
        self._parts = parts
        self._hash = hash(parts)
        # Lazily cached text form: interned paths are rendered repeatedly
        # (read/write-set entries, lock-table keys, log records).
        self._str: str | None = None

    # -- construction -------------------------------------------------

    @classmethod
    def _intern(cls, parts: tuple[str, ...]) -> "ResourcePath":
        """Return a shared instance for an already-validated parts tuple."""
        cached = _PARTS_CACHE.get(parts)
        if cached is not None:
            return cached
        path = cls(parts)
        if len(_PARTS_CACHE) >= _CACHE_LIMIT:
            _PARTS_CACHE.clear()
        _PARTS_CACHE[parts] = path
        return path

    @classmethod
    def parse(cls, text: "str | ResourcePath") -> "ResourcePath":
        """Parse ``"/a/b/c"`` (leading slash optional, empty string = root)."""
        if isinstance(text, ResourcePath):
            return text
        if not isinstance(text, str):
            raise DataModelError(f"cannot parse path from {type(text).__name__}")
        cached = _PARSE_CACHE.get(text)
        if cached is not None:
            return cached
        stripped = text.strip()
        if stripped in ("", "/"):
            path = ROOT_PATH
        else:
            path = cls._intern(tuple(p for p in stripped.split("/") if p != ""))
        if len(_PARSE_CACHE) >= _CACHE_LIMIT:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[text] = path
        return path

    def child(self, name: str) -> "ResourcePath":
        """Return the path of a direct child."""
        return ResourcePath._intern(self._parts + (name,))

    def join(self, *names: str) -> "ResourcePath":
        """Return the path extended by several components."""
        return ResourcePath._intern(self._parts + tuple(names))

    # -- structure ----------------------------------------------------

    @property
    def parts(self) -> tuple[str, ...]:
        return self._parts

    @property
    def name(self) -> str:
        """The final component, or ``""`` for the root."""
        return self._parts[-1] if self._parts else ""

    @property
    def parent(self) -> "ResourcePath":
        """The parent path; the root is its own parent."""
        if not self._parts:
            return self
        return ResourcePath._intern(self._parts[:-1])

    @property
    def depth(self) -> int:
        return len(self._parts)

    def is_root(self) -> bool:
        return not self._parts

    def ancestors(self, include_self: bool = False) -> Iterator["ResourcePath"]:
        """Yield ancestors from the root downwards (optionally including self).

        The order (root first) matches how intention locks are acquired in
        the multi-granularity locking scheme (§3.1.3).
        """
        upper = len(self._parts) + (1 if include_self else 0)
        for i in range(upper):
            yield ResourcePath._intern(self._parts[:i])

    def is_ancestor_of(self, other: "ResourcePath", strict: bool = True) -> bool:
        """True if ``self`` lies on the path from the root to ``other``."""
        if len(self._parts) > len(other._parts):
            return False
        if strict and len(self._parts) == len(other._parts):
            return False
        return other._parts[: len(self._parts)] == self._parts

    def is_descendant_of(self, other: "ResourcePath", strict: bool = True) -> bool:
        return other.is_ancestor_of(self, strict=strict)

    def relative_to(self, ancestor: "ResourcePath") -> tuple[str, ...]:
        """Components of ``self`` below ``ancestor``."""
        if not ancestor.is_ancestor_of(self, strict=False):
            raise DataModelError(f"{self} is not under {ancestor}")
        return self._parts[len(ancestor._parts):]

    # -- dunder -------------------------------------------------------

    def __str__(self) -> str:
        text = self._str
        if text is None:
            text = "/" + "/".join(self._parts)
            self._str = text
        return text

    def __repr__(self) -> str:
        return f"ResourcePath({str(self)!r})"

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, ResourcePath):
            return self._parts == other._parts
        if isinstance(other, str):
            return self == ResourcePath.parse(other)
        return NotImplemented

    def __lt__(self, other: "ResourcePath") -> bool:
        return self._parts < other._parts

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parts)


#: The root of every data model tree.
ROOT_PATH = ResourcePath()
_PARTS_CACHE[()] = ROOT_PATH
