"""Entity types: queries, actions, constraints and stored-procedure metadata.

The paper (§2.2) associates four kinds of expressions/procedures with each
entity in the data model:

* *queries* inspect logical state (read-only),
* *actions* are atomic state transitions, defined twice — a logical
  simulation and a physical device API call — preferably with an undo
  action,
* *constraints* are service/engineering rules enforced at runtime,
* *stored procedures* compose the above into orchestration logic (these are
  registered with the orchestration core, see ``repro.core.procedures``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ConfigurationError, ConstraintViolation, DataModelError
from repro.datamodel.node import Node
from repro.datamodel.tree import DataModel

#: Logical simulation function: ``simulate(model, node, *args)``.
SimulateFn = Callable[..., Any]
#: Query function: ``query(model, node, *args) -> value``.
QueryFn = Callable[..., Any]
#: Constraint check: ``check(model, node) -> list[str]`` of violation messages.
CheckFn = Callable[[DataModel, Node], list[str]]


@dataclass
class ActionDef:
    """An atomic state transition of a resource.

    Attributes
    ----------
    name:
        Action name, e.g. ``createVM``.  In the physical layer the worker
        invokes the device driver method of the same name.
    simulate:
        Logical-layer implementation applied to the data model.
    undo:
        Name of the compensating action used for rollback, or ``None`` for
        irreversible actions (§3.2 notes most actions are reversible).
    undo_args:
        Function mapping ``(node, args)`` to the argument list of the undo
        action recorded in the execution log.  Defaults to no arguments.
    """

    name: str
    simulate: SimulateFn
    undo: str | None = None
    undo_args: Callable[[Node, list[Any]], list[Any]] | None = None

    def undo_arguments(self, node: Node, args: list[Any]) -> list[Any]:
        if self.undo is None:
            return []
        if self.undo_args is None:
            return []
        return list(self.undo_args(node, list(args)))


@dataclass
class QueryDef:
    """A read-only inspection of logical state."""

    name: str
    func: QueryFn


@dataclass
class ConstraintDef:
    """A service or engineering rule attached to an entity type."""

    name: str
    check: CheckFn
    description: str = ""

    def violations(self, model: DataModel, node: Node) -> list[str]:
        return list(self.check(model, node))


class EntityType:
    """Declares the behaviour of one kind of data-model node."""

    def __init__(self, name: str, default_attrs: dict[str, Any] | None = None):
        self.name = name
        self.default_attrs = dict(default_attrs or {})
        self.actions: dict[str, ActionDef] = {}
        self.queries: dict[str, QueryDef] = {}
        self.constraints: list[ConstraintDef] = []

    # -- declaration helpers (usable as decorators) ---------------------

    def action(
        self,
        name: str,
        undo: str | None = None,
        undo_args: Callable[[Node, list[Any]], list[Any]] | None = None,
    ) -> Callable[[SimulateFn], SimulateFn]:
        """Register a logical-layer action simulation function."""

        def decorator(func: SimulateFn) -> SimulateFn:
            if name in self.actions:
                raise ConfigurationError(f"duplicate action {name!r} on {self.name}")
            self.actions[name] = ActionDef(name, func, undo, undo_args)
            return func

        return decorator

    def query(self, name: str) -> Callable[[QueryFn], QueryFn]:
        def decorator(func: QueryFn) -> QueryFn:
            if name in self.queries:
                raise ConfigurationError(f"duplicate query {name!r} on {self.name}")
            self.queries[name] = QueryDef(name, func)
            return func

        return decorator

    def constraint(self, name: str, description: str = "") -> Callable[[CheckFn], CheckFn]:
        def decorator(func: CheckFn) -> CheckFn:
            self.constraints.append(ConstraintDef(name, func, description))
            return func

        return decorator

    # -- lookup ----------------------------------------------------------

    def get_action(self, name: str) -> ActionDef:
        try:
            return self.actions[name]
        except KeyError:
            raise DataModelError(f"entity {self.name!r} has no action {name!r}") from None

    def get_query(self, name: str) -> QueryDef:
        try:
            return self.queries[name]
        except KeyError:
            raise DataModelError(f"entity {self.name!r} has no query {name!r}") from None

    @property
    def has_constraints(self) -> bool:
        return bool(self.constraints)

    def __repr__(self) -> str:
        return (
            f"<EntityType {self.name} actions={sorted(self.actions)} "
            f"constraints={[c.name for c in self.constraints]}>"
        )


class ModelSchema:
    """Registry of entity types for one deployment (e.g. TCloud)."""

    def __init__(self) -> None:
        self._types: dict[str, EntityType] = {}
        # The implicit root entity type carries no behaviour.
        self.register(EntityType("root"))

    def register(self, entity_type: EntityType) -> EntityType:
        if entity_type.name in self._types:
            raise ConfigurationError(f"duplicate entity type {entity_type.name!r}")
        self._types[entity_type.name] = entity_type
        return entity_type

    def define(self, name: str, default_attrs: dict[str, Any] | None = None) -> EntityType:
        """Create and register a new entity type."""
        return self.register(EntityType(name, default_attrs))

    def get(self, name: str) -> EntityType:
        try:
            return self._types[name]
        except KeyError:
            raise DataModelError(f"unknown entity type {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._types

    def entity_types(self) -> list[EntityType]:
        return list(self._types.values())

    # -- constraint evaluation -------------------------------------------

    def check_node(self, model: DataModel, node: Node) -> list[str]:
        """Evaluate all constraints of ``node``'s entity type; return violations."""
        etype = self._types.get(node.entity_type)
        if etype is None:
            return []
        violations: list[str] = []
        for constraint in etype.constraints:
            for message in constraint.violations(model, node):
                violations.append(f"{constraint.name}@{node.path}: {message}")
        return violations

    def check_subtree(self, model: DataModel, path: Any = "/") -> list[str]:
        """Evaluate constraints over an entire subtree.

        Runs after every simulated action (§3.1.2), so the walk is a plain
        node stack — no per-node path construction or child sorting — and
        nodes whose entity type declares no constraints are skipped without
        the ``check_node`` call overhead.
        """
        violations: list[str] = []
        types = self._types
        stack = [model.get(path)]
        while stack:
            node = stack.pop()
            etype = types.get(node.entity_type)
            if etype is not None and etype.constraints:
                for constraint in etype.constraints:
                    for message in constraint.violations(model, node):
                        violations.append(f"{constraint.name}@{node.path}: {message}")
            children = node.children
            if children:
                stack.extend(children.values())
        return violations

    def enforce_subtree(self, model: DataModel, path: Any = "/") -> None:
        violations = self.check_subtree(model, path)
        if violations:
            raise ConstraintViolation("; ".join(violations), constraint="schema")

    def has_constraints(self, entity_type_name: str) -> bool:
        etype = self._types.get(entity_type_name)
        return bool(etype and etype.has_constraints)
