"""Snapshots and structural diffs of data models.

Snapshots back the persistence checkpoints (§2.3) and the periodic
cross-layer comparison used by reconciliation (§4): ``repair`` diffs the
logical model against the physical model and derives compensating actions,
while ``reload`` replaces logical subtrees with the physical truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datamodel.path import ResourcePath
from repro.datamodel.tree import DataModel


def snapshot(model: DataModel) -> dict[str, Any]:
    """Serialise a model into a JSON-compatible checkpoint."""
    return model.to_dict()


def restore(checkpoint: dict[str, Any]) -> DataModel:
    """Rebuild a model from a checkpoint produced by :func:`snapshot`."""
    return DataModel.from_dict(checkpoint)


# -- incremental (per-subtree) checkpoints -------------------------------
#
# The persistence layer stores one document per *second-level node* (e.g.
# one per vmHost) plus a small meta document describing the root and the
# top-level nodes, so a checkpoint only re-serialises the units dirtied
# since the previous one (see ``TropicStore.save_checkpoint_incremental``).
# These helpers define the split/reassemble contract.


def node_info(node: Any) -> dict[str, Any]:
    """Serialise one node *without* its children (checkpoint meta entry)."""
    return {
        "name": node.name,
        "entity_type": node.entity_type,
        "attrs": node.attrs,
        "inconsistent": node.inconsistent,
    }


def snapshot_root_info(model: DataModel) -> dict[str, Any]:
    """Serialise the root node *without* its children (checkpoint meta)."""
    return node_info(model.root)


def snapshot_unit(model: DataModel, top: str, child: str) -> dict[str, Any]:
    """Serialise one second-level checkpoint unit of ``model``."""
    return model.root.children[top].children[child].to_dict()


def restore_from_parts(
    root_info: dict[str, Any],
    tops: "dict[str, dict[str, Any]]",
    units: "dict[tuple[str, str], dict[str, Any]]",
) -> DataModel:
    """Reassemble a model from a root descriptor, top-level node
    descriptors, and second-level unit documents."""
    from repro.datamodel.node import Node

    def build(info: dict[str, Any]) -> Node:
        node = Node(
            info.get("name", ""),
            info.get("entity_type", "root"),
            info.get("attrs") or {},
        )
        node.inconsistent = bool(info.get("inconsistent", False))
        return node

    root = build(root_info)
    for top_name in sorted(tops):
        top_node = build(tops[top_name])
        root.add_child(top_node)
    for (top_name, child_name) in sorted(units):
        top_node = root.children.get(top_name)
        if top_node is None:
            continue
        top_node.add_child(Node.from_dict(units[(top_name, child_name)]))
    return DataModel(root)


@dataclass
class NodeDelta:
    """One difference between two models at a given path."""

    path: ResourcePath
    kind: str  # "added", "removed", "changed"
    attrs_left: dict[str, Any] = field(default_factory=dict)
    attrs_right: dict[str, Any] = field(default_factory=dict)
    changed_keys: list[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<NodeDelta {self.kind} {self.path} keys={self.changed_keys}>"


@dataclass
class ModelDiff:
    """Structural difference between a left (e.g. logical) and a right
    (e.g. physical) model."""

    added: list[NodeDelta] = field(default_factory=list)
    removed: list[NodeDelta] = field(default_factory=list)
    changed: list[NodeDelta] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def all_deltas(self) -> list[NodeDelta]:
        return self.added + self.removed + self.changed

    def __len__(self) -> int:
        return len(self.added) + len(self.removed) + len(self.changed)


def diff_models(
    left: DataModel,
    right: DataModel,
    start: str | ResourcePath = "/",
) -> ModelDiff:
    """Compare two models under ``start``.

    ``added`` lists nodes present only in ``right``; ``removed`` nodes present
    only in ``left``; ``changed`` nodes present in both but with differing
    attributes.  When reconciling, ``left`` is the logical model and ``right``
    the physical model, so e.g. a VM whose physical state is ``stopped`` while
    the logical state is ``running`` appears in ``changed``.
    """
    start_path = ResourcePath.parse(start)
    left_nodes = (
        {path: node for path, node in left.walk(start_path)}
        if left.exists(start_path)
        else {}
    )
    right_nodes = (
        {path: node for path, node in right.walk(start_path)}
        if right.exists(start_path)
        else {}
    )

    diff = ModelDiff()
    for path in sorted(set(left_nodes) | set(right_nodes)):
        in_left = path in left_nodes
        in_right = path in right_nodes
        if in_left and not in_right:
            diff.removed.append(
                NodeDelta(path, "removed", attrs_left=dict(left_nodes[path].attrs))
            )
        elif in_right and not in_left:
            diff.added.append(
                NodeDelta(path, "added", attrs_right=dict(right_nodes[path].attrs))
            )
        else:
            lattrs = left_nodes[path].attrs
            rattrs = right_nodes[path].attrs
            changed_keys = sorted(
                key
                for key in set(lattrs) | set(rattrs)
                if lattrs.get(key) != rattrs.get(key)
            )
            if changed_keys or left_nodes[path].entity_type != right_nodes[path].entity_type:
                diff.changed.append(
                    NodeDelta(
                        path,
                        "changed",
                        attrs_left=dict(lattrs),
                        attrs_right=dict(rattrs),
                        changed_keys=changed_keys,
                    )
                )
    return diff
