"""Semi-structured hierarchical data model (paper §2.2).

Cloud resources are represented as a tree of objects.  Each tree node is an
instance of an :class:`~repro.datamodel.schema.EntityType`, which declares

* **queries** — read-only inspections of system state,
* **actions** — atomic state transitions, defined once for the logical layer
  (simulation on the data model) and once for the physical layer (device API
  call), each preferably with an undo action,
* **constraints** — service and engineering rules enforced at runtime.

The same tree structure is used for the controller's logical data model and
for the physical data model derived from device state.
"""

from repro.datamodel.path import ROOT_PATH, ResourcePath
from repro.datamodel.node import Node
from repro.datamodel.tree import DataModel
from repro.datamodel.schema import (
    ActionDef,
    ConstraintDef,
    EntityType,
    ModelSchema,
    QueryDef,
)
from repro.datamodel.snapshot import ModelDiff, diff_models, snapshot, restore

__all__ = [
    "ROOT_PATH",
    "ResourcePath",
    "Node",
    "DataModel",
    "EntityType",
    "ActionDef",
    "QueryDef",
    "ConstraintDef",
    "ModelSchema",
    "ModelDiff",
    "diff_models",
    "snapshot",
    "restore",
]
