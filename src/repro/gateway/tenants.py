"""Tenant records, API-key authentication and per-tenant quotas.

Quotas are *service rules* in the sense of §2.1: engineering limits a cloud
provider imposes on each customer (how many VMs, how much memory, how much
block storage).  They complement — but never replace — the resource-level
constraints enforced inside the transactional platform: a request within
quota can still abort if, say, no compute host has enough free memory.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.errors import ReproError


class GatewayError(ReproError):
    """Base class for API-gateway failures."""


class AuthenticationError(GatewayError):
    """The API key does not identify any active tenant."""


class AuthorizationError(GatewayError):
    """The tenant is not allowed to perform the requested action."""


class QuotaExceeded(GatewayError):
    """Admitting the request would exceed one of the tenant's quotas."""


@dataclass
class TenantQuota:
    """Per-tenant resource ceilings (``None`` means unlimited)."""

    max_vms: int | None = 20
    max_total_mem_mb: int | None = 65536
    max_volumes: int | None = 20
    max_volume_gb: float | None = 1024.0

    def validate(self) -> None:
        for name in ("max_vms", "max_total_mem_mb", "max_volumes", "max_volume_gb"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative or None")


@dataclass
class Tenant:
    """One cloud customer known to the gateway."""

    name: str
    api_key: str
    quota: TenantQuota = field(default_factory=TenantQuota)
    active: bool = True
    #: Extra actions this tenant may call beyond the standard user actions
    #: (e.g. operators get "MigrateInstance").
    extra_actions: set[str] = field(default_factory=set)

    def prefix(self) -> str:
        """Namespace prefix applied to every resource the tenant creates."""
        return f"{self.name}--"

    def owns(self, resource_name: str) -> bool:
        return resource_name.startswith(self.prefix())

    def qualify(self, resource_name: str) -> str:
        """Fully qualified (tenant-prefixed) name of a tenant resource."""
        if self.owns(resource_name):
            return resource_name
        return f"{self.prefix()}{resource_name}"

    def unqualify(self, resource_name: str) -> str:
        """Strip the tenant prefix for display back to the tenant."""
        if self.owns(resource_name):
            return resource_name[len(self.prefix()):]
        return resource_name


class TenantDirectory:
    """Registry of tenants, keyed by name and by (hashed) API key."""

    def __init__(self) -> None:
        self._by_name: dict[str, Tenant] = {}
        self._by_key: dict[str, str] = {}

    @staticmethod
    def _digest(api_key: str) -> str:
        return hashlib.sha256(api_key.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        api_key: str,
        quota: TenantQuota | None = None,
        extra_actions: set[str] | None = None,
    ) -> Tenant:
        """Add a tenant; ``api_key`` is stored only as a digest."""
        if name in self._by_name:
            raise GatewayError(f"tenant {name!r} is already registered")
        if "--" in name:
            raise GatewayError("tenant names must not contain '--' (the namespace separator)")
        digest = self._digest(api_key)
        if digest in self._by_key:
            raise GatewayError("another tenant already uses this API key")
        quota = quota or TenantQuota()
        quota.validate()
        tenant = Tenant(
            name=name,
            api_key=digest,
            quota=quota,
            extra_actions=set(extra_actions or ()),
        )
        self._by_name[name] = tenant
        self._by_key[digest] = name
        return tenant

    def deactivate(self, name: str) -> None:
        """Disable a tenant without forgetting its resources."""
        self.get(name).active = False

    def reactivate(self, name: str) -> None:
        self.get(name).active = True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> Tenant:
        try:
            return self._by_name[name]
        except KeyError:
            raise GatewayError(f"unknown tenant {name!r}") from None

    def authenticate(self, api_key: str) -> Tenant:
        """Resolve an API key to an active tenant."""
        name = self._by_key.get(self._digest(api_key))
        if name is None:
            raise AuthenticationError("invalid API key")
        tenant = self._by_name[name]
        if not tenant.active:
            raise AuthenticationError(f"tenant {name!r} is deactivated")
        return tenant

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)
