"""Append-only audit trail of API-gateway requests.

The April-2011 EC2 outage the paper cites started with an operator change
that violated an implicit service rule; an audit log that ties every
request to a tenant, an outcome and (when one was submitted) a transaction
id is the minimum a provider needs to reconstruct such incidents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.clock import Clock, RealClock


@dataclass
class AuditRecord:
    """One gateway request and its outcome."""

    seq: int
    time: float
    tenant: str
    action: str
    params: dict[str, Any] = field(default_factory=dict)
    outcome: str = "ok"
    txid: str | None = None
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "tenant": self.tenant,
            "action": self.action,
            "params": dict(self.params),
            "outcome": self.outcome,
            "txid": self.txid,
            "error": self.error,
        }


class AuditLog:
    """In-memory, append-only audit log with simple filtering."""

    def __init__(self, clock: Clock | None = None, capacity: int | None = None):
        self.clock = clock or RealClock()
        self.capacity = capacity
        self._records: list[AuditRecord] = []
        self._seq = 0

    def record(
        self,
        tenant: str,
        action: str,
        params: dict[str, Any] | None = None,
        outcome: str = "ok",
        txid: str | None = None,
        error: str | None = None,
    ) -> AuditRecord:
        """Append one record (oldest records are dropped beyond capacity)."""
        self._seq += 1
        entry = AuditRecord(
            seq=self._seq,
            time=self.clock.now(),
            tenant=tenant,
            action=action,
            params=dict(params or {}),
            outcome=outcome,
            txid=txid,
            error=error,
        )
        self._records.append(entry)
        if self.capacity is not None and len(self._records) > self.capacity:
            self._records = self._records[-self.capacity:]
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def entries(
        self,
        tenant: str | None = None,
        action: str | None = None,
        outcome: str | None = None,
    ) -> list[AuditRecord]:
        """Records matching every given filter, in submission order."""
        result = []
        for record in self._records:
            if tenant is not None and record.tenant != tenant:
                continue
            if action is not None and record.action != action:
                continue
            if outcome is not None and record.outcome != outcome:
                continue
            result.append(record)
        return result

    def denials(self, tenant: str | None = None) -> list[AuditRecord]:
        """Requests rejected by the gateway itself (auth, quota, validation)."""
        return [r for r in self.entries(tenant=tenant) if r.outcome == "denied"]

    def last(self) -> AuditRecord | None:
        return self._records[-1] if self._records else None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)
