"""The API gateway request dispatcher.

:class:`ApiGateway` exposes an EC2-style action API (``RunInstances``,
``TerminateInstances``, ``CreateVolume``, ...) on top of a
:class:`~repro.tcloud.service.TCloud` deployment.  Each request is

1. authenticated against the :class:`~repro.gateway.tenants.TenantDirectory`,
2. authorised (some actions are operator-only),
3. validated and checked against the tenant's quotas,
4. translated into one or more transactional orchestrations, and
5. recorded in the :class:`~repro.gateway.audit.AuditLog` together with the
   transaction outcome.

The gateway never manipulates resources directly — everything goes through
stored procedures, so the ACID guarantees of the platform apply unchanged.
Tenant isolation is by namespacing: every resource a tenant creates carries
the ``{tenant}--`` prefix and tenants can only address resources they own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import (
    CrossShardTransaction,
    ProcedureError,
    QuorumLostError,
    ReproError,
    SessionExpiredError,
    ShardUnavailable,
    TxnTimeout,
)
from repro.core.txn import Transaction, TransactionState
from repro.gateway.audit import AuditLog
from repro.gateway.tenants import (
    AuthenticationError,
    AuthorizationError,
    GatewayError,
    QuotaExceeded,
    Tenant,
    TenantDirectory,
)
from repro.tcloud.service import TCloud

#: EC2-like instance types offered by the gateway.
INSTANCE_TYPES: dict[str, dict[str, Any]] = {
    "t.small": {"mem_mb": 512, "image_template": "template-small"},
    "t.medium": {"mem_mb": 1024, "image_template": "template-small"},
    "t.large": {"mem_mb": 2048, "image_template": "template-medium"},
    "t.xlarge": {"mem_mb": 4096, "image_template": "template-large"},
}

#: Actions every tenant may call.
USER_ACTIONS = frozenset(
    {
        "RunInstances",
        "TerminateInstances",
        "StartInstances",
        "StopInstances",
        "DescribeInstances",
        "CreateSnapshot",
        "CreateVolume",
        "DeleteVolume",
        "AttachVolume",
        "DetachVolume",
        "DescribeVolumes",
    }
)

#: Actions reserved for tenants explicitly granted them (operators).
OPERATOR_ACTIONS = frozenset({"MigrateInstance", "DescribeHosts"})


@dataclass
class ApiResponse:
    """Structured result of one gateway request."""

    ok: bool
    action: str
    code: str = "OK"
    data: Any = None
    error: str | None = None
    txids: list[str] = field(default_factory=list)
    #: Typed retry contract: ``retryable=True`` marks a transient platform
    #: fault (leader failover, quorum loss, a timed-out wait) that the
    #: client may re-drive after ``retry_after_s`` seconds.  A ``Timeout``
    #: code is *ambiguous* — the transaction may still commit — so it must
    #: only be retried with the same idempotency token.
    retryable: bool = False
    retry_after_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "action": self.action,
            "code": self.code,
            "data": self.data,
            "error": self.error,
            "txids": list(self.txids),
            "retryable": self.retryable,
            "retry_after_s": self.retry_after_s,
        }


class ApiGateway:
    """EC2-style multi-tenant front end for a TCloud deployment."""

    def __init__(
        self,
        cloud: TCloud,
        tenants: TenantDirectory | None = None,
        audit: AuditLog | None = None,
    ):
        self.cloud = cloud
        self.tenants = tenants or TenantDirectory()
        self.audit = audit or AuditLog(clock=cloud.platform.clock)
        self._handlers: dict[str, Callable[..., ApiResponse]] = {
            "RunInstances": self._run_instances,
            "TerminateInstances": self._terminate_instances,
            "StartInstances": self._start_instances,
            "StopInstances": self._stop_instances,
            "DescribeInstances": self._describe_instances,
            "CreateSnapshot": self._create_snapshot,
            "CreateVolume": self._create_volume,
            "DeleteVolume": self._delete_volume,
            "AttachVolume": self._attach_volume,
            "DetachVolume": self._detach_volume,
            "DescribeVolumes": self._describe_volumes,
            "MigrateInstance": self._migrate_instance,
            "DescribeHosts": self._describe_hosts,
        }

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def handle(self, api_key: str, action: str, **params: Any) -> ApiResponse:
        """Authenticate, authorise, dispatch and audit one API request."""
        try:
            tenant = self.tenants.authenticate(api_key)
        except AuthenticationError as exc:
            response = ApiResponse(ok=False, action=action, code="AuthFailure", error=str(exc))
            self.audit.record("<unauthenticated>", action, params, outcome="denied",
                              error=str(exc))
            return response

        try:
            self._authorise(tenant, action)
            handler = self._handlers[action]
            response = handler(tenant, **params)
        except (AuthorizationError, QuotaExceeded, GatewayError) as exc:
            response = ApiResponse(ok=False, action=action, code=type(exc).__name__,
                                   error=str(exc))
            self.audit.record(tenant.name, action, params, outcome="denied", error=str(exc))
            return response
        except TypeError as exc:
            # Missing/unexpected request parameters surface as client errors.
            response = ApiResponse(ok=False, action=action, code="InvalidParameter",
                                   error=str(exc))
            self.audit.record(tenant.name, action, params, outcome="denied", error=str(exc))
            return response
        except ProcedureError as exc:
            response = ApiResponse(ok=False, action=action, code="NotFound", error=str(exc))
            self.audit.record(tenant.name, action, params, outcome="denied", error=str(exc))
            return response
        except CrossShardTransaction as exc:
            # Sharded deployments under the 'reject' policy refuse
            # orchestrations spanning shards; clients see a dedicated code
            # so they can split the request per shard and retry.
            response = ApiResponse(ok=False, action=action, code="CrossShard", error=str(exc))
            self.audit.record(tenant.name, action, params, outcome="denied", error=str(exc))
            return response
        except (
            SessionExpiredError,
            QuorumLostError,
            TxnTimeout,
            ShardUnavailable,
            ConnectionError,
        ) as exc:
            # Transient (or, for Timeout, ambiguous) platform faults:
            # surface a typed retryable response with a backoff hint
            # instead of a raw InternalError, so well-behaved clients back
            # off and re-drive while a failover completes.
            code = "Timeout" if isinstance(exc, TxnTimeout) else "Unavailable"
            response = ApiResponse(
                ok=False, action=action, code=code, error=str(exc),
                retryable=True, retry_after_s=self._retry_after(),
            )
            self.audit.record(tenant.name, action, params, outcome="error", error=str(exc))
            return response
        except ReproError as exc:
            response = ApiResponse(ok=False, action=action, code="InternalError",
                                   error=str(exc))
            self.audit.record(tenant.name, action, params, outcome="error", error=str(exc))
            return response

        outcome = "ok" if response.ok else "aborted"
        self.audit.record(tenant.name, action, params, outcome=outcome,
                          txid=response.txids[0] if response.txids else None,
                          error=response.error)
        return response

    def _retry_after(self) -> float:
        """Backoff hint for retryable responses: a leader failover needs
        roughly one session timeout to be detected plus recovery."""
        return max(self.cloud.platform.config.session_timeout, 0.05)

    def _authorise(self, tenant: Tenant, action: str) -> None:
        if action in USER_ACTIONS:
            return
        if action in OPERATOR_ACTIONS and action in tenant.extra_actions:
            return
        if action not in self._handlers:
            raise GatewayError(f"unknown API action {action!r}")
        raise AuthorizationError(f"tenant {tenant.name!r} may not call {action}")

    # ------------------------------------------------------------------
    # Quota accounting
    # ------------------------------------------------------------------

    def _tenant_vms(self, tenant: Tenant):
        return [r for r in self.cloud.list_vms() if tenant.owns(r.name)]

    def _tenant_volumes(self, tenant: Tenant):
        return [r for r in self.cloud.list_volumes() if tenant.owns(r.name)]

    def _check_vm_quota(self, tenant: Tenant, new_vms: int, new_mem_mb: int) -> None:
        quota = tenant.quota
        existing = self._tenant_vms(tenant)
        if quota.max_vms is not None and len(existing) + new_vms > quota.max_vms:
            raise QuotaExceeded(
                f"tenant {tenant.name!r} would have {len(existing) + new_vms} VMs "
                f"(quota {quota.max_vms})"
            )
        if quota.max_total_mem_mb is not None:
            total = sum(r.mem_mb for r in existing) + new_mem_mb
            if total > quota.max_total_mem_mb:
                raise QuotaExceeded(
                    f"tenant {tenant.name!r} would use {total} MB of memory "
                    f"(quota {quota.max_total_mem_mb} MB)"
                )

    def _check_volume_quota(self, tenant: Tenant, new_volumes: int, new_gb: float) -> None:
        quota = tenant.quota
        existing = self._tenant_volumes(tenant)
        if quota.max_volumes is not None and len(existing) + new_volumes > quota.max_volumes:
            raise QuotaExceeded(
                f"tenant {tenant.name!r} would have {len(existing) + new_volumes} volumes "
                f"(quota {quota.max_volumes})"
            )
        if quota.max_volume_gb is not None:
            total = sum(r.size_gb for r in existing) + new_gb
            if total > quota.max_volume_gb:
                raise QuotaExceeded(
                    f"tenant {tenant.name!r} would use {total:.1f} GB of block storage "
                    f"(quota {quota.max_volume_gb:.1f} GB)"
                )

    def _owned_vm(self, tenant: Tenant, name: str) -> str:
        """Qualified name of a VM the tenant owns; raises if it does not."""
        qualified = tenant.qualify(name)
        if self.cloud.find_vm(qualified) is None:
            raise GatewayError(f"instance {name!r} not found for tenant {tenant.name!r}")
        return qualified

    def _owned_volume(self, tenant: Tenant, name: str) -> str:
        qualified = tenant.qualify(name)
        if self.cloud.find_volume(qualified) is None:
            raise GatewayError(f"volume {name!r} not found for tenant {tenant.name!r}")
        return qualified

    # ------------------------------------------------------------------
    # Instance actions
    # ------------------------------------------------------------------

    def _run_instances(
        self,
        tenant: Tenant,
        name: str,
        count: int = 1,
        instance_type: str = "t.medium",
        mem_mb: int | None = None,
        image_template: str | None = None,
    ) -> ApiResponse:
        if count < 1:
            raise GatewayError("count must be >= 1")
        if instance_type not in INSTANCE_TYPES:
            raise GatewayError(
                f"unknown instance type {instance_type!r}; offered: {sorted(INSTANCE_TYPES)}"
            )
        spec = INSTANCE_TYPES[instance_type]
        mem = int(mem_mb if mem_mb is not None else spec["mem_mb"])
        template = image_template or spec["image_template"]
        self._check_vm_quota(tenant, new_vms=count, new_mem_mb=mem * count)
        # Instance names are unique per tenant (a gateway-level service rule:
        # the platform only requires uniqueness per compute host).
        requested = [name] if count == 1 else [f"{name}-{i}" for i in range(count)]
        for short_name in requested:
            if self.cloud.find_vm(tenant.qualify(short_name)) is not None:
                raise GatewayError(
                    f"instance {short_name!r} already exists for tenant {tenant.name!r}"
                )

        # One batched submission: the INITIALIZED documents group-commit in
        # a single store write per owning shard and the requests enqueue in
        # one queue write (submit-side batching).
        specs = [
            {"vm_name": tenant.qualify(short_name), "image_template": template, "mem_mb": mem}
            for short_name in requested
        ]
        txns = self.cloud.spawn_vms(specs)
        instances = []
        txids = []
        all_ok = True
        for spec, txn in zip(specs, txns):
            txids.append(txn.txid)
            committed = txn.state is TransactionState.COMMITTED
            all_ok = all_ok and committed
            instances.append(
                {
                    "instance": tenant.unqualify(spec["vm_name"]),
                    "state": "running" if committed else "failed",
                    "txid": txn.txid,
                    "error": txn.error,
                }
            )
        return ApiResponse(
            ok=all_ok,
            action="RunInstances",
            code="OK" if all_ok else "OperationAborted",
            data={"instances": instances},
            error=None if all_ok else "one or more instances could not be provisioned",
            txids=txids,
        )

    def _lifecycle(self, tenant: Tenant, names: list[str] | str, method: str,
                   action: str) -> ApiResponse:
        if isinstance(names, str):
            names = [names]
        results = []
        txids = []
        all_ok = True
        for name in names:
            qualified = self._owned_vm(tenant, name)
            txn: Transaction = getattr(self.cloud, method)(qualified)
            txids.append(txn.txid)
            ok = txn.state is TransactionState.COMMITTED
            all_ok = all_ok and ok
            results.append({"instance": name, "ok": ok, "error": txn.error})
        return ApiResponse(
            ok=all_ok,
            action=action,
            code="OK" if all_ok else "OperationAborted",
            data={"results": results},
            error=None if all_ok else "one or more operations aborted",
            txids=txids,
        )

    def _terminate_instances(self, tenant: Tenant, names: list[str] | str) -> ApiResponse:
        return self._lifecycle(tenant, names, "destroy_vm", "TerminateInstances")

    def _start_instances(self, tenant: Tenant, names: list[str] | str) -> ApiResponse:
        return self._lifecycle(tenant, names, "start_vm", "StartInstances")

    def _stop_instances(self, tenant: Tenant, names: list[str] | str) -> ApiResponse:
        return self._lifecycle(tenant, names, "stop_vm", "StopInstances")

    def _describe_instances(self, tenant: Tenant) -> ApiResponse:
        instances = [
            {
                "instance": tenant.unqualify(record.name),
                "state": record.state,
                "mem_mb": record.mem_mb,
                "host": record.host,
            }
            for record in self._tenant_vms(tenant)
        ]
        return ApiResponse(ok=True, action="DescribeInstances", data={"instances": instances})

    def _create_snapshot(self, tenant: Tenant, name: str, snapshot_name: str) -> ApiResponse:
        qualified = self._owned_vm(tenant, name)
        snapshot = tenant.qualify(snapshot_name)
        txn = self.cloud.snapshot_vm(qualified, snapshot)
        ok = txn.state is TransactionState.COMMITTED
        return ApiResponse(
            ok=ok,
            action="CreateSnapshot",
            code="OK" if ok else "OperationAborted",
            data={"snapshot": snapshot_name} if ok else None,
            error=txn.error,
            txids=[txn.txid],
        )

    def _migrate_instance(self, tenant: Tenant, name: str,
                          dst_host: str | None = None) -> ApiResponse:
        qualified = self._owned_vm(tenant, name)
        txn = self.cloud.migrate_vm(qualified, dst_host=dst_host)
        ok = txn.state is TransactionState.COMMITTED
        record = self.cloud.find_vm(qualified)
        return ApiResponse(
            ok=ok,
            action="MigrateInstance",
            code="OK" if ok else "OperationAborted",
            data={"instance": name, "host": record.host if record else None},
            error=txn.error,
            txids=[txn.txid],
        )

    def _describe_hosts(self, tenant: Tenant) -> ApiResponse:
        return ApiResponse(ok=True, action="DescribeHosts",
                           data={"hosts": self.cloud.host_utilisation()})

    # ------------------------------------------------------------------
    # Volume actions
    # ------------------------------------------------------------------

    def _create_volume(self, tenant: Tenant, name: str, size_gb: float) -> ApiResponse:
        if float(size_gb) <= 0:
            raise GatewayError("size_gb must be positive")
        self._check_volume_quota(tenant, new_volumes=1, new_gb=float(size_gb))
        txn = self.cloud.create_volume(tenant.qualify(name), float(size_gb))
        ok = txn.state is TransactionState.COMMITTED
        return ApiResponse(
            ok=ok,
            action="CreateVolume",
            code="OK" if ok else "OperationAborted",
            data={"volume": name, "size_gb": float(size_gb)} if ok else None,
            error=txn.error,
            txids=[txn.txid],
        )

    def _delete_volume(self, tenant: Tenant, name: str) -> ApiResponse:
        qualified = self._owned_volume(tenant, name)
        txn = self.cloud.delete_volume(qualified)
        ok = txn.state is TransactionState.COMMITTED
        return ApiResponse(ok=ok, action="DeleteVolume",
                           code="OK" if ok else "OperationAborted",
                           data={"volume": name}, error=txn.error, txids=[txn.txid])

    def _attach_volume(self, tenant: Tenant, volume: str, instance: str) -> ApiResponse:
        qualified_volume = self._owned_volume(tenant, volume)
        qualified_vm = self._owned_vm(tenant, instance)
        txn = self.cloud.attach_volume(qualified_volume, qualified_vm)
        ok = txn.state is TransactionState.COMMITTED
        return ApiResponse(ok=ok, action="AttachVolume",
                           code="OK" if ok else "OperationAborted",
                           data={"volume": volume, "instance": instance},
                           error=txn.error, txids=[txn.txid])

    def _detach_volume(self, tenant: Tenant, volume: str, instance: str) -> ApiResponse:
        qualified_volume = self._owned_volume(tenant, volume)
        qualified_vm = self._owned_vm(tenant, instance)
        txn = self.cloud.detach_volume(qualified_volume, qualified_vm)
        ok = txn.state is TransactionState.COMMITTED
        return ApiResponse(ok=ok, action="DetachVolume",
                           code="OK" if ok else "OperationAborted",
                           data={"volume": volume, "instance": instance},
                           error=txn.error, txids=[txn.txid])

    def _describe_volumes(self, tenant: Tenant) -> ApiResponse:
        volumes = [
            {
                "volume": tenant.unqualify(record.name),
                "size_gb": record.size_gb,
                "attached_to": (
                    tenant.unqualify(record.attached_to.rsplit("/", 1)[-1])
                    if record.attached_to
                    else None
                ),
            }
            for record in self._tenant_volumes(tenant)
        ]
        return ApiResponse(ok=True, action="DescribeVolumes", data={"volumes": volumes})
