"""API service gateway (Figure 1): the end-user entry point to TROPIC.

Cloud end users do not talk to the TROPIC controllers directly; their
requests arrive through an API gateway that authenticates the caller,
enforces per-tenant service rules (quotas), namespaces resource names, maps
API actions onto TCloud orchestrations and records every request in an
audit log.  The gateway is deliberately thin: all safety-critical checks
(constraints, concurrency control, atomicity) still happen inside the
transactional platform — the gateway adds the *multi-tenant* service rules
that live above individual resources.

Public classes:

* :class:`~repro.gateway.tenants.Tenant`, :class:`~repro.gateway.tenants.
  TenantDirectory`, :class:`~repro.gateway.tenants.TenantQuota` — tenant
  records, API-key authentication and quota definitions;
* :class:`~repro.gateway.audit.AuditLog` — append-only request audit trail;
* :class:`~repro.gateway.api.ApiGateway` — the request dispatcher;
* :class:`~repro.gateway.api.ApiResponse` — structured responses.
"""

from repro.gateway.api import ApiGateway, ApiResponse
from repro.gateway.audit import AuditLog, AuditRecord
from repro.gateway.tenants import Tenant, TenantDirectory, TenantQuota

__all__ = [
    "ApiGateway",
    "ApiResponse",
    "AuditLog",
    "AuditRecord",
    "Tenant",
    "TenantDirectory",
    "TenantQuota",
]
