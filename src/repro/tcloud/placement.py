"""Placement of new VMs and disk images onto hosts.

The TCloud API gateway chooses a compute host and a storage host for each
spawn request (the paper's operators can also pin hosts explicitly, e.g.
for consolidation).  Placement reads the *logical* data model — the same
state the constraints are checked against — so a well-placed VM normally
commits without constraint aborts, while a deliberately bad placement (or a
race that the constraint engine catches) aborts safely.
"""

from __future__ import annotations

import itertools

from repro.common.errors import ProcedureError
from repro.datamodel.tree import DataModel

LEAST_LOADED = "least_loaded"
ROUND_ROBIN = "round_robin"
FIRST_FIT = "first_fit"
STRATEGIES = (LEAST_LOADED, ROUND_ROBIN, FIRST_FIT)


class PlacementEngine:
    """Chooses compute and storage hosts for new VMs."""

    def __init__(self, strategy: str = LEAST_LOADED):
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown placement strategy {strategy!r}")
        self.strategy = strategy
        self._round_robin = itertools.count()

    # -- compute ---------------------------------------------------------

    def pick_vm_host(
        self,
        model: DataModel,
        mem_mb: int,
        hypervisor: str | None = None,
    ) -> str:
        """Pick a compute host with enough free memory (and hypervisor type)."""
        candidates = []
        for path in model.find(entity_type="vmHost"):
            host = model.get(path)
            if hypervisor is not None and host.get("hypervisor") != hypervisor:
                continue
            committed = sum(
                vm.get("mem_mb", 0)
                for vm in host.children.values()
                if vm.entity_type == "vm" and vm.get("state") == "running"
            )
            free = host.get("mem_mb", 0) - committed
            if free >= mem_mb:
                candidates.append((str(path), free))
        if not candidates:
            raise ProcedureError(
                f"no compute host has {mem_mb} MB free"
                + (f" with hypervisor {hypervisor}" if hypervisor else "")
            )
        if self.strategy == LEAST_LOADED:
            # Most free memory first: spreads load across hosts.
            return max(candidates, key=lambda item: item[1])[0]
        if self.strategy == ROUND_ROBIN:
            index = next(self._round_robin) % len(candidates)
            return sorted(path for path, _ in candidates)[index]
        return sorted(path for path, _ in candidates)[0]  # first fit

    # -- storage -----------------------------------------------------------

    def pick_storage_host(
        self, model: DataModel, size_gb: float, template: str | None = None
    ) -> str:
        """Pick a storage host with enough free capacity.

        With ``template`` set, only hosts holding that image template are
        considered (the spawn path); with ``template=None`` any storage host
        qualifies (the block-volume path).
        """
        candidates = []
        for path in model.find(entity_type="storageHost"):
            host = model.get(path)
            if template is not None and host.child(template) is None:
                continue
            used = sum(
                child.get("size_gb", 0.0)
                for child in host.children.values()
                if child.entity_type in ("image", "volume")
            )
            free = host.get("capacity_gb", 0.0) - used
            if free >= size_gb:
                candidates.append((str(path), free))
        if not candidates:
            wanted = f" with template {template!r}" if template is not None else ""
            raise ProcedureError(f"no storage host{wanted} has {size_gb} GB free")
        if self.strategy == LEAST_LOADED:
            return max(candidates, key=lambda item: item[1])[0]
        if self.strategy == ROUND_ROBIN:
            index = next(self._round_robin) % len(candidates)
            return sorted(path for path, _ in candidates)[index]
        return sorted(path for path, _ in candidates)[0]
