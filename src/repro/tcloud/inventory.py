"""Fleet construction: initial logical model + matching mock devices.

The paper's performance experiments (§6.1) run against 12,500 compute
servers with 8 VM slots each (100,000 VMs) and 3,125 storage servers (one
per 4 compute servers).  :func:`build_inventory` constructs a scaled
version of that data centre: a logical :class:`~repro.datamodel.tree.
DataModel` for the controller and, unless running logical-only, a
:class:`~repro.drivers.registry.DeviceRegistry` of mock devices whose
initial state matches the logical model exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datamodel.tree import DataModel
from repro.drivers.compute import ComputeHostDevice
from repro.drivers.network import RouterDevice
from repro.drivers.registry import DeviceRegistry
from repro.drivers.storage import StorageHostDevice

VM_ROOT = "/vmRoot"
STORAGE_ROOT = "/storageRoot"
NET_ROOT = "/netRoot"

#: Default disk image templates installed on every storage host.
DEFAULT_TEMPLATES = {
    "template-small": 8.0,
    "template-medium": 16.0,
    "template-large": 32.0,
}


@dataclass
class TCloudInventory:
    """The assembled data centre: logical model, devices and path helpers."""

    model: DataModel
    registry: DeviceRegistry | None
    vm_hosts: list[str] = field(default_factory=list)
    storage_hosts: list[str] = field(default_factory=list)
    routers: list[str] = field(default_factory=list)
    templates: dict[str, float] = field(default_factory=dict)

    def vm_host_path(self, index: int) -> str:
        return self.vm_hosts[index]

    def storage_host_path(self, index: int) -> str:
        return self.storage_hosts[index]

    def storage_host_for(self, vm_host_index: int) -> str:
        """Storage host assigned to a compute host (4 compute : 1 storage)."""
        if not self.storage_hosts:
            raise IndexError("inventory has no storage hosts")
        return self.storage_hosts[vm_host_index * len(self.storage_hosts) // max(len(self.vm_hosts), 1)]

    def device_for(self, path: str):
        if self.registry is None:
            return None
        return self.registry.device_at(path)


def build_inventory(
    num_vm_hosts: int = 4,
    num_storage_hosts: int = 2,
    num_routers: int = 1,
    host_mem_mb: int = 8192,
    host_cpu_cores: int = 8,
    storage_capacity_gb: float = 4096.0,
    hypervisors: list[str] | None = None,
    templates: dict[str, float] | None = None,
    with_devices: bool = True,
    device_call_latency: float = 0.0,
) -> TCloudInventory:
    """Build a TCloud data centre of the requested size.

    ``hypervisors`` cycles across compute hosts (e.g. ``["xen-4.1",
    "kvm-1.0"]`` creates a heterogeneous fleet, used by the VM-type
    constraint experiments).  With ``with_devices=False`` only the logical
    model is produced (logical-only mode, §5).
    """
    if num_vm_hosts < 1 or num_storage_hosts < 1:
        raise ValueError("need at least one compute host and one storage host")
    hypervisors = hypervisors or ["xen-4.1"]
    templates = dict(templates if templates is not None else DEFAULT_TEMPLATES)

    model = DataModel()
    registry = DeviceRegistry() if with_devices else None
    inventory = TCloudInventory(
        model=model, registry=registry, templates=templates
    )

    model.create(VM_ROOT, "vmRoot")
    model.create(STORAGE_ROOT, "storageRoot")
    model.create(NET_ROOT, "netRoot")
    if registry is not None:
        registry.register_container(VM_ROOT, "vmRoot")
        registry.register_container(STORAGE_ROOT, "storageRoot")
        registry.register_container(NET_ROOT, "netRoot")

    for index in range(num_storage_hosts):
        name = f"storageHost{index}"
        path = f"{STORAGE_ROOT}/{name}"
        model.create(path, "storageHost", {"capacity_gb": storage_capacity_gb})
        for template_name, size_gb in templates.items():
            model.create(
                f"{path}/{template_name}",
                "image",
                {"size_gb": size_gb, "exported": False, "template": True},
            )
        inventory.storage_hosts.append(path)
        if registry is not None:
            device = StorageHostDevice(
                name, capacity_gb=storage_capacity_gb, call_latency=device_call_latency
            )
            for template_name, size_gb in templates.items():
                device.add_template(template_name, size_gb)
            registry.register(path, device)

    for index in range(num_vm_hosts):
        name = f"vmHost{index}"
        path = f"{VM_ROOT}/{name}"
        hypervisor = hypervisors[index % len(hypervisors)]
        model.create(
            path,
            "vmHost",
            {
                "hypervisor": hypervisor,
                "mem_mb": host_mem_mb,
                "cpu_cores": host_cpu_cores,
                "imported_images": [],
            },
        )
        inventory.vm_hosts.append(path)
        if registry is not None:
            registry.register(
                path,
                ComputeHostDevice(
                    name,
                    hypervisor=hypervisor,
                    mem_mb=host_mem_mb,
                    cpu_cores=host_cpu_cores,
                    call_latency=device_call_latency,
                ),
            )

    for index in range(num_routers):
        name = f"router{index}"
        path = f"{NET_ROOT}/{name}"
        model.create(path, "router", {"max_vlans": 4096})
        inventory.routers.append(path)
        if registry is not None:
            registry.register(path, RouterDevice(name, call_latency=device_call_latency))

    return inventory
