"""TCloud safety constraints (§6.2).

The evaluation highlights two representative constraints:

* **VM memory constraint** — the aggregated memory of running VMs must not
  exceed the host's capacity (prevents overloading a compute server);
* **VM type constraint** — a VM cannot run on (or be migrated to) a host
  whose hypervisor differs from the one it was built for.

A third, storage-capacity constraint protects storage hosts the same way.
The checks are plain functions over the logical data model; they are
attached to entity types in :mod:`repro.tcloud.entities` and enforced by
the constraint engine after every simulated action.
"""

from __future__ import annotations

from repro.datamodel.node import Node
from repro.datamodel.tree import DataModel


def vm_memory_constraint(model: DataModel, host: Node) -> list[str]:
    """Aggregated memory of running VMs must fit in the host's memory."""
    capacity = host.get("mem_mb", 0)
    used = sum(
        vm.get("mem_mb", 0)
        for vm in host.children.values()
        if vm.entity_type == "vm" and vm.get("state") == "running"
    )
    if used > capacity:
        return [f"running VMs use {used} MB but host capacity is {capacity} MB"]
    return []


def vm_hypervisor_constraint(model: DataModel, host: Node) -> list[str]:
    """Every VM on a host must match the host's hypervisor type."""
    host_hypervisor = host.get("hypervisor")
    violations = []
    for vm in host.children.values():
        if vm.entity_type != "vm":
            continue
        vm_hypervisor = vm.get("hypervisor")
        if vm_hypervisor is not None and vm_hypervisor != host_hypervisor:
            violations.append(
                f"VM {vm.name} requires hypervisor {vm_hypervisor} "
                f"but host runs {host_hypervisor}"
            )
    return violations


def storage_capacity_constraint(model: DataModel, host: Node) -> list[str]:
    """Total size of images and volumes on a storage host must fit its capacity."""
    capacity = host.get("capacity_gb", 0.0)
    used = sum(
        child.get("size_gb", 0.0)
        for child in host.children.values()
        if child.entity_type in ("image", "volume")
    )
    if used > capacity:
        return [f"images and volumes use {used:.1f} GB but capacity is {capacity:.1f} GB"]
    return []


def volume_attachment_constraint(model: DataModel, host: Node) -> list[str]:
    """Attached volumes must be exported as network block devices.

    A volume that is attached to a VM but no longer exported would leave the
    VM with a dangling block device, the kind of half-configured state the
    EC2 outage postmortem attributes to unchecked storage operations.
    """
    violations = []
    for volume in host.children.values():
        if volume.entity_type != "volume":
            continue
        if volume.get("attached_to") and not volume.get("exported", False):
            violations.append(
                f"volume {volume.name} is attached to {volume.get('attached_to')} "
                "but is not exported"
            )
    return violations


def firewall_capacity_constraint(model: DataModel, router: Node) -> list[str]:
    """The number of firewall rules on a router must not exceed its TCAM budget."""
    max_rules = int(router.get("max_fw_rules", 1024))
    rules = [
        child for child in router.children.values() if child.entity_type == "fwRule"
    ]
    if len(rules) > max_rules:
        return [f"router has {len(rules)} firewall rules but supports at most {max_rules}"]
    return []


def vlan_range_constraint(model: DataModel, router: Node) -> list[str]:
    """VLAN ids configured on a router must be unique and within range."""
    violations = []
    seen: dict[int, str] = {}
    max_vlans = router.get("max_vlans", 4096)
    for vlan in router.children.values():
        if vlan.entity_type != "vlan":
            continue
        vlan_id = vlan.get("vlan_id")
        if vlan_id is None:
            continue
        if not 1 <= int(vlan_id) <= max_vlans:
            violations.append(f"VLAN id {vlan_id} out of range 1..{max_vlans}")
        if vlan_id in seen:
            violations.append(f"duplicate VLAN id {vlan_id} ({seen[vlan_id]} and {vlan.name})")
        seen[vlan_id] = vlan.name
    return violations
