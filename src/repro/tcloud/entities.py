"""TCloud entity types: the logical-layer behaviour of cloud resources.

Each entity type defines, for the logical layer, the *simulation* of every
device action plus its undo action and the constraints to enforce (§2.2).
The physical counterparts of the actions live in :mod:`repro.drivers`; the
worker resolves the same action names against the device registered at the
resource path.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import DataModelError
from repro.datamodel.node import Node
from repro.datamodel.schema import EntityType, ModelSchema
from repro.datamodel.tree import DataModel
from repro.tcloud.constraints import (
    firewall_capacity_constraint,
    storage_capacity_constraint,
    vlan_range_constraint,
    vm_hypervisor_constraint,
    vm_memory_constraint,
    volume_attachment_constraint,
)


def _child(node: Node, name: str, kind: str) -> Node:
    child = node.child(name)
    if child is None:
        raise DataModelError(f"no {kind} named {name!r} under {node.path}")
    return child


# ----------------------------------------------------------------------
# Compute hosts
# ----------------------------------------------------------------------

def _build_vm_host() -> EntityType:
    vm_host = EntityType(
        "vmHost",
        default_attrs={"hypervisor": "xen-4.1", "mem_mb": 32768, "cpu_cores": 8,
                       "imported_images": []},
    )

    @vm_host.action("importImage", undo="unimportImage",
                    undo_args=lambda node, args: [args[0]])
    def import_image(model: DataModel, node: Node, vm_image: str) -> None:
        images = list(node.get("imported_images", []))
        if vm_image not in images:
            images.append(vm_image)
        node["imported_images"] = sorted(images)

    @vm_host.action("unimportImage", undo="importImage",
                    undo_args=lambda node, args: [args[0]])
    def unimport_image(model: DataModel, node: Node, vm_image: str) -> None:
        node["imported_images"] = sorted(
            image for image in node.get("imported_images", []) if image != vm_image
        )

    @vm_host.action("createVM", undo="removeVM",
                    undo_args=lambda node, args: [args[0]])
    def create_vm(
        model: DataModel,
        node: Node,
        vm_name: str,
        vm_image: str,
        mem_mb: int = 1024,
        hypervisor: str | None = None,
    ) -> None:
        if node.child(vm_name) is not None:
            raise DataModelError(f"VM {vm_name} already exists on {node.path}")
        if vm_image not in node.get("imported_images", []):
            raise DataModelError(f"image {vm_image} is not imported on {node.path}")
        node.add_child(
            Node(
                vm_name,
                "vm",
                {
                    "state": "stopped",
                    "mem_mb": int(mem_mb),
                    "image": vm_image,
                    # The hypervisor the VM was built for; defaults to the
                    # host's.  Migration passes the original value so the
                    # VM-type constraint can reject incompatible hosts.
                    "hypervisor": hypervisor or node.get("hypervisor"),
                },
            )
        )

    @vm_host.action(
        "removeVM",
        undo="createVM",
        undo_args=lambda node, args: _remove_vm_undo_args(node, args),
    )
    def remove_vm(model: DataModel, node: Node, vm_name: str) -> None:
        vm = _child(node, vm_name, "VM")
        if vm.get("state") == "running":
            raise DataModelError(f"VM {vm_name} is running; stop it before removal")
        node.remove_child(vm_name)

    @vm_host.action("startVM", undo="stopVM", undo_args=lambda node, args: [args[0]])
    def start_vm(model: DataModel, node: Node, vm_name: str) -> None:
        _child(node, vm_name, "VM")["state"] = "running"

    @vm_host.action("stopVM", undo="startVM", undo_args=lambda node, args: [args[0]])
    def stop_vm(model: DataModel, node: Node, vm_name: str) -> None:
        _child(node, vm_name, "VM")["state"] = "stopped"

    @vm_host.query("memoryAvailable")
    def memory_available(model: DataModel, node: Node) -> int:
        used = sum(
            vm.get("mem_mb", 0)
            for vm in node.children.values()
            if vm.entity_type == "vm" and vm.get("state") == "running"
        )
        return int(node.get("mem_mb", 0)) - used

    @vm_host.query("listVMs")
    def list_vms(model: DataModel, node: Node) -> list[str]:
        return sorted(name for name, vm in node.children.items() if vm.entity_type == "vm")

    @vm_host.query("vmState")
    def vm_state(model: DataModel, node: Node, vm_name: str) -> str | None:
        vm = node.child(vm_name)
        return None if vm is None else vm.get("state")

    vm_host.constraint(
        "vm-memory", "aggregated memory of running VMs must not exceed host capacity"
    )(vm_memory_constraint)
    vm_host.constraint(
        "vm-hypervisor", "VMs must match the host's hypervisor type"
    )(vm_hypervisor_constraint)
    return vm_host


def _remove_vm_undo_args(node: Node, args: list[Any]) -> list[Any]:
    """Undo of removeVM recreates the VM with its original image and memory."""
    vm = node.child(args[0])
    if vm is None:
        return [args[0], "", 1024]
    return [args[0], vm.get("image", ""), vm.get("mem_mb", 1024)]


# ----------------------------------------------------------------------
# Storage hosts
# ----------------------------------------------------------------------

def _build_storage_host() -> EntityType:
    storage = EntityType("storageHost", default_attrs={"capacity_gb": 4096.0})

    @storage.action("cloneImage", undo="removeImage",
                    undo_args=lambda node, args: [args[1]])
    def clone_image(model: DataModel, node: Node, image_template: str, vm_image: str) -> None:
        template = _child(node, image_template, "image template")
        if node.child(vm_image) is not None:
            raise DataModelError(f"image {vm_image} already exists on {node.path}")
        node.add_child(
            Node(
                vm_image,
                "image",
                {"size_gb": template.get("size_gb", 8.0), "exported": False, "template": False},
            )
        )

    @storage.action("removeImage")
    def remove_image(model: DataModel, node: Node, vm_image: str) -> None:
        image = _child(node, vm_image, "image")
        if image.get("exported"):
            raise DataModelError(f"image {vm_image} is still exported")
        node.remove_child(vm_image)

    @storage.action("exportImage", undo="unexportImage",
                    undo_args=lambda node, args: [args[0]])
    def export_image(model: DataModel, node: Node, vm_image: str) -> None:
        _child(node, vm_image, "image")["exported"] = True

    @storage.action("unexportImage", undo="exportImage",
                    undo_args=lambda node, args: [args[0]])
    def unexport_image(model: DataModel, node: Node, vm_image: str) -> None:
        _child(node, vm_image, "image")["exported"] = False

    @storage.action("createVolume", undo="deleteVolume",
                    undo_args=lambda node, args: [args[0]])
    def create_volume(model: DataModel, node: Node, volume_name: str, size_gb: float) -> None:
        if node.child(volume_name) is not None:
            raise DataModelError(f"volume {volume_name} already exists on {node.path}")
        node.add_child(
            Node(
                volume_name,
                "volume",
                {"size_gb": float(size_gb), "exported": False, "attached_to": None},
            )
        )

    @storage.action(
        "deleteVolume",
        undo="createVolume",
        undo_args=lambda node, args: _delete_volume_undo_args(node, args),
    )
    def delete_volume(model: DataModel, node: Node, volume_name: str) -> None:
        volume = _child(node, volume_name, "volume")
        if volume.get("attached_to"):
            raise DataModelError(
                f"volume {volume_name} is attached to {volume.get('attached_to')}"
            )
        if volume.get("exported"):
            raise DataModelError(f"volume {volume_name} is still exported")
        node.remove_child(volume_name)

    @storage.action("exportVolume", undo="unexportVolume",
                    undo_args=lambda node, args: [args[0]])
    def export_volume(model: DataModel, node: Node, volume_name: str) -> None:
        _child(node, volume_name, "volume")["exported"] = True

    @storage.action("unexportVolume", undo="exportVolume",
                    undo_args=lambda node, args: [args[0]])
    def unexport_volume(model: DataModel, node: Node, volume_name: str) -> None:
        volume = _child(node, volume_name, "volume")
        if volume.get("attached_to"):
            raise DataModelError(
                f"volume {volume_name} is attached to {volume.get('attached_to')}; detach first"
            )
        volume["exported"] = False

    @storage.action("connectVolume", undo="disconnectVolume",
                    undo_args=lambda node, args: [args[0], args[1]])
    def connect_volume(model: DataModel, node: Node, volume_name: str, vm_ref: str) -> None:
        volume = _child(node, volume_name, "volume")
        if volume.get("attached_to"):
            raise DataModelError(
                f"volume {volume_name} is already attached to {volume.get('attached_to')}"
            )
        volume["attached_to"] = vm_ref

    @storage.action("disconnectVolume", undo="connectVolume",
                    undo_args=lambda node, args: [args[0], args[1]])
    def disconnect_volume(model: DataModel, node: Node, volume_name: str, vm_ref: str) -> None:
        volume = _child(node, volume_name, "volume")
        if volume.get("attached_to") != vm_ref:
            raise DataModelError(
                f"volume {volume_name} is not attached to {vm_ref}"
            )
        volume["attached_to"] = None

    @storage.query("freeCapacity")
    def free_capacity(model: DataModel, node: Node) -> float:
        used = sum(
            child.get("size_gb", 0.0)
            for child in node.children.values()
            if child.entity_type in ("image", "volume")
        )
        return float(node.get("capacity_gb", 0.0)) - used

    @storage.query("hasImage")
    def has_image(model: DataModel, node: Node, name: str) -> bool:
        return node.child(name) is not None

    @storage.query("hasVolume")
    def has_volume(model: DataModel, node: Node, name: str) -> bool:
        child = node.child(name)
        return child is not None and child.entity_type == "volume"

    @storage.query("volumeAttachment")
    def volume_attachment(model: DataModel, node: Node, name: str) -> str | None:
        child = node.child(name)
        return None if child is None else child.get("attached_to")

    @storage.query("listVolumes")
    def list_volumes(model: DataModel, node: Node) -> list[str]:
        return sorted(
            name for name, child in node.children.items() if child.entity_type == "volume"
        )

    storage.constraint(
        "storage-capacity", "total image and volume size must not exceed storage capacity"
    )(storage_capacity_constraint)
    storage.constraint(
        "volume-attachment", "attached volumes must be exported"
    )(volume_attachment_constraint)
    return storage


def _delete_volume_undo_args(node: Node, args: list[Any]) -> list[Any]:
    """Undo of deleteVolume recreates the volume with its original size."""
    volume = node.child(args[0])
    if volume is None:
        return [args[0], 0.0]
    return [args[0], volume.get("size_gb", 0.0)]


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------

def _build_router() -> EntityType:
    router = EntityType("router", default_attrs={"max_vlans": 4096})

    @router.action("createVlan", undo="deleteVlan",
                   undo_args=lambda node, args: [args[0]])
    def create_vlan(model: DataModel, node: Node, vlan_id: int, vlan_name: str = "") -> None:
        name = f"vlan{int(vlan_id)}"
        if node.child(name) is not None:
            raise DataModelError(f"VLAN {vlan_id} already exists on {node.path}")
        node.add_child(
            Node(name, "vlan", {"vlan_id": int(vlan_id), "name": vlan_name or name, "ports": []})
        )

    @router.action("deleteVlan")
    def delete_vlan(model: DataModel, node: Node, vlan_id: int) -> None:
        name = f"vlan{int(vlan_id)}"
        vlan = _child(node, name, "VLAN")
        if vlan.get("ports"):
            raise DataModelError(f"VLAN {vlan_id} still has attached ports")
        node.remove_child(name)

    @router.action("attachPort", undo="detachPort",
                   undo_args=lambda node, args: [args[0], args[1]])
    def attach_port(model: DataModel, node: Node, vlan_id: int, port: str) -> None:
        vlan = _child(node, f"vlan{int(vlan_id)}", "VLAN")
        ports = list(vlan.get("ports", []))
        if port not in ports:
            ports.append(port)
        vlan["ports"] = sorted(ports)

    @router.action("detachPort", undo="attachPort",
                   undo_args=lambda node, args: [args[0], args[1]])
    def detach_port(model: DataModel, node: Node, vlan_id: int, port: str) -> None:
        vlan = _child(node, f"vlan{int(vlan_id)}", "VLAN")
        vlan["ports"] = sorted(p for p in vlan.get("ports", []) if p != port)

    @router.action(
        "addFirewallRule",
        undo="removeFirewallRule",
        undo_args=lambda node, args: [args[0]],
    )
    def add_firewall_rule(
        model: DataModel,
        node: Node,
        rule_id: int,
        src: str = "any",
        dst: str = "any",
        policy: str = "deny",
    ) -> None:
        name = f"fw{int(rule_id)}"
        if node.child(name) is not None:
            raise DataModelError(f"firewall rule {rule_id} already exists on {node.path}")
        node.add_child(
            Node(
                name,
                "fwRule",
                {"rule_id": int(rule_id), "src": src, "dst": dst, "policy": policy},
            )
        )

    @router.action(
        "removeFirewallRule",
        undo="addFirewallRule",
        undo_args=lambda node, args: _remove_firewall_undo_args(node, args),
    )
    def remove_firewall_rule(model: DataModel, node: Node, rule_id: int) -> None:
        name = f"fw{int(rule_id)}"
        _child(node, name, "firewall rule")
        node.remove_child(name)

    @router.query("listVlans")
    def list_vlans(model: DataModel, node: Node) -> list[int]:
        return sorted(
            vlan.get("vlan_id") for vlan in node.children.values() if vlan.entity_type == "vlan"
        )

    @router.query("listFirewallRules")
    def list_firewall_rules(model: DataModel, node: Node) -> list[int]:
        return sorted(
            rule.get("rule_id")
            for rule in node.children.values()
            if rule.entity_type == "fwRule"
        )

    router.constraint("vlan-range", "VLAN ids must be unique and in range")(
        vlan_range_constraint
    )
    router.constraint("firewall-capacity", "firewall rules must fit the router's budget")(
        firewall_capacity_constraint
    )
    return router


def _remove_firewall_undo_args(node: Node, args: list[Any]) -> list[Any]:
    """Undo of removeFirewallRule re-adds the rule with its original fields."""
    rule = node.child(f"fw{int(args[0])}")
    if rule is None:
        return [args[0]]
    return [args[0], rule.get("src", "any"), rule.get("dst", "any"), rule.get("policy", "deny")]


# ----------------------------------------------------------------------
# Schema assembly
# ----------------------------------------------------------------------

def build_schema() -> ModelSchema:
    """Construct the TCloud model schema (entity types + constraints)."""
    schema = ModelSchema()
    schema.define("vmRoot")
    schema.define("storageRoot")
    schema.define("netRoot")
    schema.define("container")
    schema.register(_build_vm_host())
    schema.register(_build_storage_host())
    schema.register(_build_router())
    schema.define("vm")
    schema.define("image")
    schema.define("vlan")
    schema.define("volume")
    schema.define("fwRule")
    return schema
