"""Composite TCloud orchestrations built from other stored procedures.

The paper's programming model allows stored procedures to be "composed of
queries, actions and other stored procedures" (§2.2).  The procedures in
this module exercise that composition: each one calls the primitive VM /
volume / network procedures of :mod:`repro.tcloud.procedures` through
:meth:`~repro.core.context.OrchestrationContext.call`, so the whole
workflow — provisioning a tenant environment, evacuating a compute host for
maintenance, cloning or rebalancing VMs — runs as **one** ACID transaction:
either every constituent orchestration takes effect or none does.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import OrchestrationContext
from repro.tcloud.procedures import disk_image_name


# ----------------------------------------------------------------------
# Tenant environments
# ----------------------------------------------------------------------

def provision_tenant(
    ctx: OrchestrationContext,
    tenant: str,
    vms: list[dict[str, Any]],
    router: str | None = None,
    vlan_id: int | None = None,
    firewall_rules: list[dict[str, Any]] | None = None,
) -> dict:
    """Provision a complete tenant environment in one transaction.

    ``vms`` is a list of spawn requests (``vm_name``, ``vm_host``,
    ``storage_host``, optional ``image_template`` and ``mem_mb``).  When a
    ``router`` and ``vlan_id`` are given, a tenant VLAN is created and every
    VM is attached to it; ``firewall_rules`` are then installed on the same
    router.  A constraint violation or error anywhere — e.g. the last VM not
    fitting on its host — rolls back the whole environment.
    """
    ctx.require(bool(vms), f"tenant {tenant!r} requests no VMs")
    spawned: list[str] = []
    for request in vms:
        outcome = ctx.call(
            "spawnVM",
            vm_name=request["vm_name"],
            image_template=request.get("image_template", "template-small"),
            storage_host=request["storage_host"],
            vm_host=request["vm_host"],
            mem_mb=request.get("mem_mb", 1024),
        )
        spawned.append(outcome["vm"])

    if router is not None and vlan_id is not None:
        ctx.call("createVLAN", router=router, vlan_id=vlan_id, name=tenant)
        for request in vms:
            ctx.call(
                "attachVMToVLAN",
                router=router,
                vlan_id=vlan_id,
                vm_host=request["vm_host"],
                vm_name=request["vm_name"],
            )

    installed_rules: list[int] = []
    for rule in firewall_rules or []:
        target_router = rule.get("router", router)
        ctx.require(
            target_router is not None,
            f"firewall rule {rule.get('rule_id')} for tenant {tenant!r} names no router",
        )
        ctx.call(
            "addFirewallRule",
            router=target_router,
            rule_id=rule["rule_id"],
            src=rule.get("src", "any"),
            dst=rule.get("dst", "any"),
            policy=rule.get("policy", "deny"),
        )
        installed_rules.append(int(rule["rule_id"]))

    return {
        "tenant": tenant,
        "vms": spawned,
        "vlan_id": vlan_id,
        "firewall_rules": installed_rules,
    }


def teardown_tenant(
    ctx: OrchestrationContext,
    tenant: str,
    vms: list[dict[str, Any]],
    router: str | None = None,
    vlan_id: int | None = None,
    firewall_rule_ids: list[int] | None = None,
) -> dict:
    """Decommission a tenant environment in one transaction.

    Firewall rules are removed first, then every VM is destroyed (with its
    disk image), and finally the tenant VLAN is deleted.  The reverse order
    of :func:`provision_tenant` keeps intermediate states safe: the VLAN
    outlives its members, never the other way around.
    """
    if firewall_rule_ids:
        ctx.require(router is not None, "removing firewall rules requires a router")
    for rule_id in firewall_rule_ids or []:
        ctx.call(
            "removeFirewallRule",
            router=router,
            rule_id=int(rule_id),
        )
    if router is not None and vlan_id is not None:
        # Detach every port before the VLAN itself can be removed.
        vlan_path = f"{router}/vlan{int(vlan_id)}"
        ctx.require(ctx.exists(vlan_path), f"VLAN {vlan_id} does not exist on {router}")
        for port in list(ctx.get_attr(vlan_path, "ports", [])):
            ctx.do(router, "detachPort", int(vlan_id), port)
    destroyed: list[str] = []
    for request in vms:
        ctx.call(
            "destroyVM",
            vm_host=request["vm_host"],
            vm_name=request["vm_name"],
            storage_host=request.get("storage_host"),
        )
        destroyed.append(request["vm_name"])
    if router is not None and vlan_id is not None:
        ctx.call("deleteVLAN", router=router, vlan_id=vlan_id)
    return {"tenant": tenant, "destroyed": destroyed, "vlan_id": vlan_id}


# ----------------------------------------------------------------------
# Host maintenance
# ----------------------------------------------------------------------

def evacuate_host(
    ctx: OrchestrationContext,
    src_host: str,
    dst_hosts: list[str],
) -> dict:
    """Migrate *every* VM off ``src_host`` as one atomic transaction.

    Destinations are chosen greedily: each VM goes to the compatible
    destination host with the most available memory at that point of the
    simulation.  If any VM cannot be placed — no compatible destination or
    all destinations full — the whole evacuation aborts and the source host
    keeps its VMs, which is what an operator wants before powering a host
    down for maintenance.
    """
    ctx.require(ctx.exists(src_host), f"compute host {src_host} does not exist")
    candidates = [host for host in dst_hosts if host != src_host and ctx.exists(host)]
    ctx.require(bool(candidates), "no destination hosts available for evacuation")

    src_hypervisor = ctx.get_attr(src_host, "hypervisor")
    vm_names = [
        name
        for name in ctx.children(src_host)
        if ctx.node(f"{src_host}/{name}").entity_type == "vm"
    ]
    moves: list[dict[str, str]] = []
    for vm_name in vm_names:
        compatible = [
            host
            for host in candidates
            if ctx.get_attr(host, "hypervisor") == src_hypervisor
        ]
        ctx.require(
            bool(compatible),
            f"no destination host runs hypervisor {src_hypervisor!r} for VM {vm_name}",
        )
        target = max(compatible, key=lambda host: ctx.query(host, "memoryAvailable"))
        ctx.call("migrateVM", vm_name=vm_name, src_host=src_host, dst_host=target)
        moves.append({"vm": vm_name, "to": target})
    return {"evacuated": src_host, "moves": moves}


def rebalance_hosts(
    ctx: OrchestrationContext,
    src_host: str,
    dst_host: str,
    target_free_mb: int,
) -> dict:
    """Migrate VMs from ``src_host`` to ``dst_host`` until the source has at
    least ``target_free_mb`` of memory available (or no movable VM is left).

    Smaller VMs are moved first so the source frees memory with the fewest
    migrations that still reach the target.  Aborts if the target cannot be
    reached — a partial rebalance would leave the operator guessing.
    """
    ctx.require(ctx.exists(src_host), f"compute host {src_host} does not exist")
    ctx.require(ctx.exists(dst_host), f"compute host {dst_host} does not exist")
    ctx.require(src_host != dst_host, "source and destination hosts are identical")

    moves: list[str] = []
    movable = sorted(
        (
            name
            for name in ctx.children(src_host)
            if ctx.node(f"{src_host}/{name}").entity_type == "vm"
            and ctx.get_attr(f"{src_host}/{name}", "state") == "running"
        ),
        key=lambda name: ctx.get_attr(f"{src_host}/{name}", "mem_mb", 0),
    )
    for vm_name in movable:
        if ctx.query(src_host, "memoryAvailable") >= target_free_mb:
            break
        ctx.call("migrateVM", vm_name=vm_name, src_host=src_host, dst_host=dst_host)
        moves.append(vm_name)
    ctx.require(
        ctx.query(src_host, "memoryAvailable") >= target_free_mb,
        f"cannot free {target_free_mb} MB on {src_host} by migrating to {dst_host}",
    )
    return {"rebalanced": src_host, "moved": moves, "to": dst_host}


# ----------------------------------------------------------------------
# VM cloning
# ----------------------------------------------------------------------

def clone_vm(
    ctx: OrchestrationContext,
    vm_name: str,
    new_vm_name: str,
    vm_host: str,
    storage_host: str,
    dst_host: str | None = None,
    mem_mb: int | None = None,
) -> dict:
    """Clone an existing VM onto ``dst_host`` (default: the same host).

    The source VM is stopped for the duration of the disk-image copy so the
    clone is crash-consistent, then restarted; the copy is used as the image
    template for a regular ``spawnVM`` of the new VM.  Rollback restores the
    source VM's running state and removes the copied image.
    """
    state = ctx.query(vm_host, "vmState", vm_name)
    ctx.require(state is not None, f"VM {vm_name} does not exist on {vm_host}")
    source = ctx.read(f"{vm_host}/{vm_name}")
    source_image = source.get("image") or disk_image_name(vm_name)
    clone_image = f"{new_vm_name}-base"
    ctx.require(
        not ctx.query(storage_host, "hasImage", clone_image),
        f"image {clone_image} already exists on {storage_host}",
    )

    if state == "running":
        ctx.do(vm_host, "stopVM", vm_name)
    ctx.do(storage_host, "cloneImage", source_image, clone_image)
    if state == "running":
        ctx.do(vm_host, "startVM", vm_name)

    outcome = ctx.call(
        "spawnVM",
        vm_name=new_vm_name,
        image_template=clone_image,
        storage_host=storage_host,
        vm_host=dst_host or vm_host,
        mem_mb=mem_mb if mem_mb is not None else source.get("mem_mb", 1024),
    )
    return {"cloned_from": f"{vm_host}/{vm_name}", "vm": outcome["vm"]}


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------

def register_composite_procedures(registry) -> None:
    """Add the composite orchestrations to a stored-procedure registry."""
    registry.register("provisionTenant", provision_tenant)
    registry.register("teardownTenant", teardown_tenant)
    registry.register("evacuateHost", evacuate_host)
    registry.register("rebalanceHosts", rebalance_hosts)
    registry.register("cloneVM", clone_vm)
