"""The TCloud service: an EC2-like API on top of the TROPIC platform (§5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.clock import Clock
from repro.common.config import TropicConfig
from repro.common.errors import ProcedureError
from repro.core.platform import TransactionHandle, TropicPlatform
from repro.core.sharding import colocated_assignments
from repro.core.txn import Transaction
from repro.coordination.ensemble import CoordinationEnsemble
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import TCloudInventory, build_inventory
from repro.tcloud.placement import PlacementEngine
from repro.tcloud.procedures import build_procedures, disk_image_name


@dataclass
class VMRecord:
    """Location and state of a VM as known to the logical layer."""

    name: str
    host: str
    state: str
    mem_mb: int
    image: str

    @property
    def path(self) -> str:
        return f"{self.host}/{self.name}"


@dataclass
class VolumeRecord:
    """Location and attachment state of a block volume."""

    name: str
    storage_host: str
    size_gb: float
    exported: bool
    attached_to: str | None

    @property
    def path(self) -> str:
        return f"{self.storage_host}/{self.name}"


class TCloud:
    """End-user facing cloud service built on TROPIC.

    All mutating calls are transactional orchestrations submitted to the
    platform; read-only calls inspect the leader's logical data model.
    """

    def __init__(
        self,
        platform: TropicPlatform,
        inventory: TCloudInventory,
        placement: PlacementEngine | None = None,
    ):
        self.platform = platform
        self.inventory = inventory
        self.placement = placement or PlacementEngine()

    # ------------------------------------------------------------------
    # VM life cycle API (the operations of the hosting workload, §6.2)
    # ------------------------------------------------------------------

    def spawn_vm(
        self,
        vm_name: str,
        image_template: str = "template-small",
        mem_mb: int = 1024,
        vm_host: str | None = None,
        storage_host: str | None = None,
        hypervisor: str | None = None,
        wait: bool = True,
        timeout: float | None = 30.0,
    ) -> Transaction | TransactionHandle:
        """Spawn a VM, placing it automatically unless hosts are pinned."""
        model = self._placement_model()
        if vm_host is None:
            vm_host = self.placement.pick_vm_host(model, mem_mb, hypervisor)
        if storage_host is None:
            size = self.inventory.templates.get(image_template, 8.0)
            storage_host = self.placement.pick_storage_host(model, size, image_template)
        return self.platform.submit(
            "spawnVM",
            {
                "vm_name": vm_name,
                "image_template": image_template,
                "storage_host": storage_host,
                "vm_host": vm_host,
                "mem_mb": mem_mb,
            },
            wait=wait,
            timeout=timeout,
        )

    def spawn_vms(
        self,
        specs: list[dict[str, Any]],
        wait: bool = True,
        timeout: float | None = 60.0,
    ) -> list[Transaction | TransactionHandle]:
        """Spawn several VMs with submit-side batching.

        Each spec takes the same keys as :meth:`spawn_vm` (``vm_name`` is
        required; placement fields are resolved per spec when omitted).
        All transactions are persisted in one group commit per owning
        shard and enqueued in one queue write, instead of two coordination
        round-trips per VM.
        """
        model = self._placement_model()
        if any("vm_host" not in spec or "storage_host" not in spec for spec in specs):
            # The whole batch is placed before anything commits, so the
            # live model never reflects earlier picks.  Reserve each pick
            # in a private clone instead, or every spec would land on the
            # same "least loaded" host and trip the memory constraint.
            model = model.clone()
        requests: list[tuple[str, dict[str, Any]]] = []
        for index, spec in enumerate(specs):
            template = spec.get("image_template", "template-small")
            mem_mb = int(spec.get("mem_mb", 1024))
            size = self.inventory.templates.get(template, 8.0)
            vm_host = spec.get("vm_host")
            if vm_host is None:
                vm_host = self.placement.pick_vm_host(model, mem_mb, spec.get("hypervisor"))
                model.create(
                    f"{vm_host}/reserved-{index}", "vm",
                    {"mem_mb": mem_mb, "state": "running"},
                )
            storage_host = spec.get("storage_host")
            if storage_host is None:
                storage_host = self.placement.pick_storage_host(model, size, template)
                model.create(
                    f"{storage_host}/reserved-{index}", "image", {"size_gb": size}
                )
            requests.append(
                (
                    "spawnVM",
                    {
                        "vm_name": spec["vm_name"],
                        "image_template": template,
                        "storage_host": storage_host,
                        "vm_host": vm_host,
                        "mem_mb": mem_mb,
                    },
                )
            )
        return self.platform.submit_many(requests, wait=wait, timeout=timeout)

    def start_vm(self, vm_name: str, wait: bool = True, timeout: float | None = 30.0):
        record = self._locate(vm_name)
        return self.platform.submit(
            "startVM", {"vm_host": record.host, "vm_name": vm_name}, wait=wait, timeout=timeout
        )

    def stop_vm(self, vm_name: str, wait: bool = True, timeout: float | None = 30.0):
        record = self._locate(vm_name)
        return self.platform.submit(
            "stopVM", {"vm_host": record.host, "vm_name": vm_name}, wait=wait, timeout=timeout
        )

    def destroy_vm(self, vm_name: str, wait: bool = True, timeout: float | None = 30.0):
        record = self._locate(vm_name)
        storage_host = self._storage_host_of(record)
        return self.platform.submit(
            "destroyVM",
            {"vm_host": record.host, "vm_name": vm_name, "storage_host": storage_host},
            wait=wait,
            timeout=timeout,
        )

    def migrate_vm(
        self,
        vm_name: str,
        dst_host: str | None = None,
        wait: bool = True,
        timeout: float | None = 30.0,
    ):
        """Migrate a VM to ``dst_host`` (or to an automatically chosen host)."""
        record = self._locate(vm_name)
        if dst_host is None:
            model = self.platform.model_view()
            hypervisor = model.get(record.host).get("hypervisor")
            candidates = [
                path
                for path in model.find(entity_type="vmHost")
                if str(path) != record.host and model.get(path).get("hypervisor") == hypervisor
            ]
            if not candidates:
                raise ProcedureError(f"no compatible destination host for {vm_name}")
            dst_host = self.placement.pick_vm_host(model, record.mem_mb, hypervisor)
            if dst_host == record.host:
                dst_host = str(candidates[0])
        return self.platform.submit(
            "migrateVM",
            {"vm_name": vm_name, "src_host": record.host, "dst_host": dst_host},
            wait=wait,
            timeout=timeout,
        )

    def snapshot_vm(
        self,
        vm_name: str,
        snapshot_name: str,
        wait: bool = True,
        timeout: float | None = 30.0,
    ):
        """Take a crash-consistent snapshot of the VM's disk image."""
        record = self._locate(vm_name)
        storage_host = self._storage_host_of(record)
        if storage_host is None:
            raise ProcedureError(f"cannot locate the disk image of VM {vm_name}")
        return self.platform.submit(
            "snapshotVM",
            {
                "vm_host": record.host,
                "vm_name": vm_name,
                "storage_host": storage_host,
                "snapshot_name": snapshot_name,
            },
            wait=wait,
            timeout=timeout,
        )

    # ------------------------------------------------------------------
    # Block volumes (EBS-like API)
    # ------------------------------------------------------------------

    def create_volume(
        self,
        volume_name: str,
        size_gb: float,
        storage_host: str | None = None,
        wait: bool = True,
        timeout: float | None = 30.0,
    ):
        """Allocate and export a block volume, placing it automatically."""
        if storage_host is None:
            storage_host = self.placement.pick_storage_host(
                self._placement_model(), float(size_gb), template=None
            )
        return self.platform.submit(
            "createVolume",
            {"storage_host": storage_host, "volume_name": volume_name, "size_gb": float(size_gb)},
            wait=wait,
            timeout=timeout,
        )

    def delete_volume(self, volume_name: str, wait: bool = True, timeout: float | None = 30.0):
        volume = self._locate_volume(volume_name)
        return self.platform.submit(
            "deleteVolume",
            {"storage_host": volume.storage_host, "volume_name": volume_name},
            wait=wait,
            timeout=timeout,
        )

    def attach_volume(
        self, volume_name: str, vm_name: str, wait: bool = True, timeout: float | None = 30.0
    ):
        volume = self._locate_volume(volume_name)
        vm = self._locate(vm_name)
        return self.platform.submit(
            "attachVolume",
            {
                "storage_host": volume.storage_host,
                "volume_name": volume_name,
                "vm_host": vm.host,
                "vm_name": vm_name,
            },
            wait=wait,
            timeout=timeout,
        )

    def detach_volume(
        self, volume_name: str, vm_name: str, wait: bool = True, timeout: float | None = 30.0
    ):
        volume = self._locate_volume(volume_name)
        vm = self._locate(vm_name)
        return self.platform.submit(
            "detachVolume",
            {
                "storage_host": volume.storage_host,
                "volume_name": volume_name,
                "vm_host": vm.host,
                "vm_name": vm_name,
            },
            wait=wait,
            timeout=timeout,
        )

    def list_volumes(self) -> list[VolumeRecord]:
        model = self.platform.model_view()
        records = []
        for path in model.find(entity_type="volume"):
            node = model.get(path)
            records.append(
                VolumeRecord(
                    name=node.name,
                    storage_host=str(path.parent),
                    size_gb=node.get("size_gb", 0.0),
                    exported=node.get("exported", False),
                    attached_to=node.get("attached_to"),
                )
            )
        return sorted(records, key=lambda r: r.name)

    def find_volume(self, volume_name: str) -> VolumeRecord | None:
        for record in self.list_volumes():
            if record.name == volume_name:
                return record
        return None

    # ------------------------------------------------------------------
    # Network (VLANs and firewall rules)
    # ------------------------------------------------------------------

    def create_vlan(self, vlan_id: int, router: str | None = None, wait: bool = True):
        router = router or self.inventory.routers[0]
        return self.platform.submit(
            "createVLAN", {"router": router, "vlan_id": vlan_id}, wait=wait
        )

    def add_firewall_rule(
        self,
        rule_id: int,
        src: str = "any",
        dst: str = "any",
        policy: str = "deny",
        router: str | None = None,
        wait: bool = True,
    ):
        router = router or self.inventory.routers[0]
        return self.platform.submit(
            "addFirewallRule",
            {"router": router, "rule_id": int(rule_id), "src": src, "dst": dst, "policy": policy},
            wait=wait,
        )

    def remove_firewall_rule(self, rule_id: int, router: str | None = None, wait: bool = True):
        router = router or self.inventory.routers[0]
        return self.platform.submit(
            "removeFirewallRule", {"router": router, "rule_id": int(rule_id)}, wait=wait
        )

    def list_firewall_rules(self, router: str | None = None) -> list[int]:
        router = router or self.inventory.routers[0]
        model = self.platform.model_view()
        node = model.get(router)
        return sorted(
            child.get("rule_id")
            for child in node.children.values()
            if child.entity_type == "fwRule"
        )

    # ------------------------------------------------------------------
    # Composite (single-transaction) orchestrations
    # ------------------------------------------------------------------

    def provision_tenant(
        self,
        tenant: str,
        num_vms: int,
        mem_mb: int = 1024,
        image_template: str = "template-small",
        vlan_id: int | None = None,
        firewall_rules: list[dict[str, Any]] | None = None,
        wait: bool = True,
        timeout: float | None = 60.0,
    ) -> Transaction | TransactionHandle:
        """Provision a whole tenant environment as one atomic transaction.

        VMs are named ``{tenant}-vm{N}`` and placed round-robin across the
        compute fleet with their images on the paired storage hosts.  With a
        ``vlan_id`` the VMs are attached to a tenant VLAN on the first
        router, and ``firewall_rules`` are installed on the same router.
        """
        if num_vms < 1:
            raise ProcedureError("a tenant environment needs at least one VM")
        vms = []
        for index in range(num_vms):
            host_index = index % len(self.inventory.vm_hosts)
            vms.append(
                {
                    "vm_name": f"{tenant}-vm{index}",
                    "vm_host": self.inventory.vm_hosts[host_index],
                    "storage_host": self.inventory.storage_host_for(host_index),
                    "image_template": image_template,
                    "mem_mb": mem_mb,
                }
            )
        router = self.inventory.routers[0] if self.inventory.routers else None
        return self.platform.submit(
            "provisionTenant",
            {
                "tenant": tenant,
                "vms": vms,
                "router": router if vlan_id is not None or firewall_rules else None,
                "vlan_id": vlan_id,
                "firewall_rules": firewall_rules or [],
            },
            wait=wait,
            timeout=timeout,
        )

    def teardown_tenant(
        self,
        tenant: str,
        vlan_id: int | None = None,
        firewall_rule_ids: list[int] | None = None,
        wait: bool = True,
        timeout: float | None = 60.0,
    ) -> Transaction | TransactionHandle:
        """Destroy every VM named ``{tenant}-vm*`` and the tenant VLAN."""
        vms = []
        for record in self.list_vms():
            if not record.name.startswith(f"{tenant}-vm"):
                continue
            vms.append(
                {
                    "vm_name": record.name,
                    "vm_host": record.host,
                    "storage_host": self._storage_host_of(record),
                }
            )
        if not vms:
            raise ProcedureError(f"tenant {tenant!r} has no VMs to tear down")
        router = self.inventory.routers[0] if self.inventory.routers else None
        return self.platform.submit(
            "teardownTenant",
            {
                "tenant": tenant,
                "vms": vms,
                "router": router if vlan_id is not None or firewall_rule_ids else None,
                "vlan_id": vlan_id,
                "firewall_rule_ids": firewall_rule_ids or [],
            },
            wait=wait,
            timeout=timeout,
        )

    def evacuate_host_atomic(
        self,
        vm_host: str,
        dst_hosts: list[str] | None = None,
        wait: bool = True,
        timeout: float | None = 60.0,
    ) -> Transaction | TransactionHandle:
        """Evacuate a compute host in a single all-or-nothing transaction.

        Unlike :meth:`evacuate_host`, which issues one migration transaction
        per VM, this submits the composite ``evacuateHost`` procedure: if any
        VM cannot be moved, none are, so the host is never left half-empty.
        """
        if dst_hosts is None:
            dst_hosts = [host for host in self.inventory.vm_hosts if host != vm_host]
        return self.platform.submit(
            "evacuateHost",
            {"src_host": vm_host, "dst_hosts": dst_hosts},
            wait=wait,
            timeout=timeout,
        )

    def clone_vm(
        self,
        vm_name: str,
        new_vm_name: str,
        dst_host: str | None = None,
        wait: bool = True,
        timeout: float | None = 60.0,
    ) -> Transaction | TransactionHandle:
        """Clone an existing VM (crash-consistent copy of its disk image)."""
        record = self._locate(vm_name)
        storage_host = self._storage_host_of(record)
        if storage_host is None:
            raise ProcedureError(f"cannot locate the disk image of VM {vm_name}")
        return self.platform.submit(
            "cloneVM",
            {
                "vm_name": vm_name,
                "new_vm_name": new_vm_name,
                "vm_host": record.host,
                "storage_host": storage_host,
                "dst_host": dst_host,
            },
            wait=wait,
            timeout=timeout,
        )

    def rebalance_hosts(
        self,
        src_host: str,
        dst_host: str,
        target_free_mb: int,
        wait: bool = True,
        timeout: float | None = 60.0,
    ) -> Transaction | TransactionHandle:
        """Free at least ``target_free_mb`` on ``src_host`` by migrating VMs."""
        return self.platform.submit(
            "rebalanceHosts",
            {
                "src_host": src_host,
                "dst_host": dst_host,
                "target_free_mb": int(target_free_mb),
            },
            wait=wait,
            timeout=timeout,
        )

    # ------------------------------------------------------------------
    # Operator workflows
    # ------------------------------------------------------------------

    def evacuate_host(
        self, vm_host: str, wait: bool = True, timeout: float | None = 60.0
    ) -> list[Transaction | TransactionHandle]:
        """Migrate every VM off ``vm_host`` (one transaction per VM).

        Used for planned maintenance: each migration is an independent
        transaction, so a single failure aborts only that VM's move.
        """
        model = self.platform.model_view()
        host = model.get(vm_host)
        vm_names = sorted(
            name for name, child in host.children.items() if child.entity_type == "vm"
        )
        results: list[Transaction | TransactionHandle] = []
        for vm_name in vm_names:
            results.append(self.migrate_vm(vm_name, wait=wait, timeout=timeout))
        return results

    def commission_vm_host(self, device, path: str | None = None):
        """Bring a new compute host under management (reload, §4).

        The device is registered with the physical layer and its state is
        pulled into the logical layer with a ``reload`` of its path.
        """
        if self.inventory.registry is None:
            raise ProcedureError("commissioning requires a device registry (not logical-only)")
        path = path or f"/vmRoot/{device.name}"
        self.inventory.registry.register(path, device)
        report = self.platform.reload(path)
        if report.applied and path not in self.inventory.vm_hosts:
            self.inventory.vm_hosts.append(path)
        return report

    def decommission_vm_host(self, path: str):
        """Remove an (empty) compute host from management via reload."""
        if self.inventory.registry is None:
            raise ProcedureError("decommissioning requires a device registry (not logical-only)")
        model = self.platform.model_view()
        if model.exists(path):
            host = model.get(path)
            vms = [name for name, child in host.children.items() if child.entity_type == "vm"]
            if vms:
                raise ProcedureError(
                    f"host {path} still has VMs {vms}; evacuate it before decommissioning"
                )
        self.inventory.registry.unregister(path)
        report = self.platform.reload(path)
        if report.applied and path in self.inventory.vm_hosts:
            self.inventory.vm_hosts.remove(path)
        return report

    # ------------------------------------------------------------------
    # Read-only inspection
    # ------------------------------------------------------------------

    def list_vms(self) -> list[VMRecord]:
        model = self.platform.model_view()
        records = []
        for path in model.find(entity_type="vm"):
            node = model.get(path)
            records.append(
                VMRecord(
                    name=node.name,
                    host=str(path.parent),
                    state=node.get("state", "unknown"),
                    mem_mb=node.get("mem_mb", 0),
                    image=node.get("image", ""),
                )
            )
        return sorted(records, key=lambda r: r.name)

    def find_vm(self, vm_name: str) -> VMRecord | None:
        for record in self.list_vms():
            if record.name == vm_name:
                return record
        return None

    def vm_count(self) -> int:
        return len(self.list_vms())

    def host_utilisation(self) -> dict[str, dict[str, Any]]:
        """Per compute host: memory capacity, committed memory, VM count."""
        model = self.platform.model_view()
        result: dict[str, dict[str, Any]] = {}
        for path in model.find(entity_type="vmHost"):
            host = model.get(path)
            vms = [vm for vm in host.children.values() if vm.entity_type == "vm"]
            running = [vm for vm in vms if vm.get("state") == "running"]
            result[str(path)] = {
                "mem_mb": host.get("mem_mb", 0),
                "mem_used_mb": sum(vm.get("mem_mb", 0) for vm in running),
                "vms": len(vms),
                "running": len(running),
            }
        return result

    # ------------------------------------------------------------------

    def _placement_model(self):
        """Model used for placement decisions.

        Normally the leader's logical model; during a failover window (no
        recovered leader yet) fall back to the static inventory so clients
        can keep submitting — correctness is still guaranteed by the
        constraint checks performed at logical execution time.
        """
        leader_model = self.platform.model_view()
        if leader_model.count() > 1:
            return leader_model
        return self.inventory.model

    def _locate(self, vm_name: str) -> VMRecord:
        record = self.find_vm(vm_name)
        if record is None:
            raise ProcedureError(f"VM {vm_name} not found")
        return record

    def _locate_volume(self, volume_name: str) -> VolumeRecord:
        record = self.find_volume(volume_name)
        if record is None:
            raise ProcedureError(f"volume {volume_name} not found")
        return record

    def _storage_host_of(self, record: VMRecord) -> str | None:
        """Find the storage host holding the VM's disk image."""
        model = self.platform.model_view()
        image = record.image or disk_image_name(record.name)
        for path in model.find(entity_type="storageHost"):
            if model.get(path).child(image) is not None:
                return str(path)
        return None


def tcloud_shard_assignments(inventory: TCloudInventory, num_shards: int) -> dict[str, int]:
    """Subtree-to-shard assignments co-locating each storage host with the
    compute hosts whose disk images it serves.

    ``TCloudInventory.storage_host_for`` pairs each compute host with one
    storage host (4 compute : 1 storage blocks), so grouping by storage
    host keeps every ``spawnVM``/``destroyVM``/``snapshotVM`` single-shard.
    Routers (and any future top subtrees) fall back to the stable hash.
    """
    by_storage: dict[str, list[str]] = {s: [s] for s in inventory.storage_hosts}
    for index, vm_host in enumerate(inventory.vm_hosts):
        by_storage[inventory.storage_host_for(index)].append(vm_host)
    return colocated_assignments(by_storage.values(), num_shards)


def build_tcloud(
    num_vm_hosts: int = 4,
    num_storage_hosts: int = 2,
    num_routers: int = 1,
    host_mem_mb: int = 8192,
    hypervisors: list[str] | None = None,
    config: TropicConfig | None = None,
    threaded: bool = False,
    logical_only: bool = False,
    clock: Clock | None = None,
    ensemble: CoordinationEnsemble | None = None,
    placement_strategy: str = "least_loaded",
    device_call_latency: float = 0.0,
    local_shards: list[int] | None = None,
) -> TCloud:
    """Assemble a complete TCloud deployment (schema, procedures, fleet,
    platform).  The returned service is not started; use it as a context
    manager or call ``cloud.platform.start()``.

    With ``config.num_shards > 1`` the controller is sharded by subtree;
    storage hosts are co-located with the compute hosts they serve (see
    :func:`tcloud_shard_assignments`), and ``local_shards`` restricts which
    shards this process hosts (scale-out: one shard per process)."""
    config = config or TropicConfig()
    if logical_only:
        config = config.with_overrides(logical_only=True)
    inventory = build_inventory(
        num_vm_hosts=num_vm_hosts,
        num_storage_hosts=num_storage_hosts,
        num_routers=num_routers,
        host_mem_mb=host_mem_mb,
        hypervisors=hypervisors,
        with_devices=not logical_only,
        device_call_latency=device_call_latency,
    )
    assignments = (
        tcloud_shard_assignments(inventory, config.num_shards)
        if config.num_shards > 1
        else None
    )
    platform = TropicPlatform(
        schema=build_schema(),
        procedures=build_procedures(),
        config=config,
        registry=inventory.registry,
        initial_model=inventory.model,
        clock=clock,
        ensemble=ensemble,
        threaded=threaded,
        shard_assignments=assignments,
        local_shards=local_shards,
    )
    return TCloud(platform, inventory, PlacementEngine(placement_strategy))
