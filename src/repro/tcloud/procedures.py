"""TCloud stored procedures (orchestration logic, §2.2 / §5).

Procedures compose queries and actions into complete orchestrations.  The
``spawnVM`` procedure produces exactly the execution log of Table 1 of the
paper (clone and export the disk image on a storage host, then import it,
create the VM configuration and start the VM on a compute host), optionally
followed by attaching the VM to a VLAN.
"""

from __future__ import annotations

from repro.core.context import OrchestrationContext
from repro.core.procedures import ProcedureRegistry


def disk_image_name(vm_name: str) -> str:
    """Name of the per-VM disk image cloned from the template."""
    return f"{vm_name}-disk"


# ----------------------------------------------------------------------
# VM life cycle
# ----------------------------------------------------------------------

def spawn_vm(
    ctx: OrchestrationContext,
    vm_name: str,
    image_template: str,
    storage_host: str,
    vm_host: str,
    mem_mb: int = 1024,
    router: str | None = None,
    vlan_id: int | None = None,
) -> dict:
    """Spawn a new VM from a disk image template (Table 1).

    Steps: clone and export the image on the storage server; import the
    image, create the VM configuration and start the VM on the compute
    server; optionally attach the VM to a VLAN on the switch layer.
    """
    vm_image = disk_image_name(vm_name)
    ctx.require(ctx.exists(storage_host), f"storage host {storage_host} does not exist")
    ctx.require(ctx.exists(vm_host), f"compute host {vm_host} does not exist")
    ctx.require(
        ctx.query(storage_host, "hasImage", image_template),
        f"image template {image_template} not present on {storage_host}",
    )

    ctx.do(storage_host, "cloneImage", image_template, vm_image)
    ctx.do(storage_host, "exportImage", vm_image)
    ctx.do(vm_host, "importImage", vm_image)
    ctx.do(vm_host, "createVM", vm_name, vm_image, mem_mb)
    ctx.do(vm_host, "startVM", vm_name)
    if router is not None and vlan_id is not None:
        ctx.do(router, "attachPort", vlan_id, vm_name)
    return {"vm": f"{vm_host}/{vm_name}", "image": f"{storage_host}/{vm_image}"}


def start_vm(ctx: OrchestrationContext, vm_host: str, vm_name: str) -> dict:
    """Start a stopped VM."""
    state = ctx.query(vm_host, "vmState", vm_name)
    ctx.require(state is not None, f"VM {vm_name} does not exist on {vm_host}")
    if state != "running":
        ctx.do(vm_host, "startVM", vm_name)
    return {"vm": f"{vm_host}/{vm_name}", "state": "running"}


def stop_vm(ctx: OrchestrationContext, vm_host: str, vm_name: str) -> dict:
    """Stop a running VM."""
    state = ctx.query(vm_host, "vmState", vm_name)
    ctx.require(state is not None, f"VM {vm_name} does not exist on {vm_host}")
    if state != "stopped":
        ctx.do(vm_host, "stopVM", vm_name)
    return {"vm": f"{vm_host}/{vm_name}", "state": "stopped"}


def destroy_vm(
    ctx: OrchestrationContext,
    vm_host: str,
    vm_name: str,
    storage_host: str | None = None,
) -> dict:
    """Decommission a VM and clean up its disk image."""
    state = ctx.query(vm_host, "vmState", vm_name)
    ctx.require(state is not None, f"VM {vm_name} does not exist on {vm_host}")
    vm_image = ctx.node(f"{vm_host}/{vm_name}").get("image")
    if state == "running":
        ctx.do(vm_host, "stopVM", vm_name)
    ctx.do(vm_host, "removeVM", vm_name)
    ctx.do(vm_host, "unimportImage", vm_image)
    if storage_host is not None and ctx.query(storage_host, "hasImage", vm_image):
        ctx.do(storage_host, "unexportImage", vm_image)
        ctx.do(storage_host, "removeImage", vm_image)
    return {"vm": f"{vm_host}/{vm_name}", "state": "destroyed"}


def migrate_vm(
    ctx: OrchestrationContext,
    vm_name: str,
    src_host: str,
    dst_host: str,
) -> dict:
    """Migrate a VM between compute hosts.

    The hypervisor-compatibility and memory constraints on the destination
    host are enforced automatically when the VM is created there; an
    incompatible or overloaded destination aborts the transaction before
    any physical action runs (§6.2).
    """
    state = ctx.query(src_host, "vmState", vm_name)
    ctx.require(state is not None, f"VM {vm_name} does not exist on {src_host}")
    ctx.require(ctx.exists(dst_host), f"destination host {dst_host} does not exist")
    ctx.require(src_host != dst_host, "source and destination hosts are identical")
    vm = ctx.read(f"{src_host}/{vm_name}")
    vm_image = vm.get("image")
    mem_mb = vm.get("mem_mb", 1024)

    if state == "running":
        ctx.do(src_host, "stopVM", vm_name)
    ctx.do(dst_host, "importImage", vm_image)
    # Carry the VM's original hypervisor type so the destination host's
    # VM-type constraint can reject an incompatible migration (§6.2).
    ctx.do(dst_host, "createVM", vm_name, vm_image, mem_mb, vm.get("hypervisor"))
    if state == "running":
        ctx.do(dst_host, "startVM", vm_name)
    ctx.do(src_host, "removeVM", vm_name)
    ctx.do(src_host, "unimportImage", vm_image)
    return {"vm": f"{dst_host}/{vm_name}", "from": src_host, "to": dst_host}


# ----------------------------------------------------------------------
# Block volumes (EBS-like virtual block devices)
# ----------------------------------------------------------------------

def create_volume(
    ctx: OrchestrationContext, storage_host: str, volume_name: str, size_gb: float
) -> dict:
    """Allocate a block volume and export it as a network block device."""
    ctx.require(ctx.exists(storage_host), f"storage host {storage_host} does not exist")
    ctx.require(
        not ctx.query(storage_host, "hasVolume", volume_name),
        f"volume {volume_name} already exists on {storage_host}",
    )
    free = ctx.query(storage_host, "freeCapacity")
    ctx.require(
        free >= float(size_gb),
        f"storage host {storage_host} has only {free:.1f} GB free",
    )
    ctx.do(storage_host, "createVolume", volume_name, float(size_gb))
    ctx.do(storage_host, "exportVolume", volume_name)
    return {"volume": f"{storage_host}/{volume_name}", "size_gb": float(size_gb)}


def delete_volume(ctx: OrchestrationContext, storage_host: str, volume_name: str) -> dict:
    """Unexport and delete a block volume (it must be detached)."""
    ctx.require(
        ctx.query(storage_host, "hasVolume", volume_name),
        f"volume {volume_name} does not exist on {storage_host}",
    )
    ctx.require(
        ctx.query(storage_host, "volumeAttachment", volume_name) is None,
        f"volume {volume_name} is still attached",
    )
    ctx.do(storage_host, "unexportVolume", volume_name)
    ctx.do(storage_host, "deleteVolume", volume_name)
    return {"volume": f"{storage_host}/{volume_name}", "state": "deleted"}


def attach_volume(
    ctx: OrchestrationContext,
    storage_host: str,
    volume_name: str,
    vm_host: str,
    vm_name: str,
) -> dict:
    """Attach an exported volume to a VM.

    The VM is read (and therefore R-locked) so a concurrent destroy or
    migrate of the same VM cannot interleave with the attachment.
    """
    ctx.require(
        ctx.query(vm_host, "vmState", vm_name) is not None,
        f"VM {vm_name} does not exist on {vm_host}",
    )
    ctx.require(
        ctx.query(storage_host, "hasVolume", volume_name),
        f"volume {volume_name} does not exist on {storage_host}",
    )
    vm_ref = f"{vm_host}/{vm_name}"
    ctx.do(storage_host, "connectVolume", volume_name, vm_ref)
    return {"volume": f"{storage_host}/{volume_name}", "attached_to": vm_ref}


def detach_volume(
    ctx: OrchestrationContext,
    storage_host: str,
    volume_name: str,
    vm_host: str,
    vm_name: str,
) -> dict:
    """Detach a volume from the VM it is attached to."""
    vm_ref = f"{vm_host}/{vm_name}"
    ctx.require(
        ctx.query(storage_host, "volumeAttachment", volume_name) == vm_ref,
        f"volume {volume_name} is not attached to {vm_ref}",
    )
    ctx.do(storage_host, "disconnectVolume", volume_name, vm_ref)
    return {"volume": f"{storage_host}/{volume_name}", "attached_to": None}


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------

def snapshot_vm(
    ctx: OrchestrationContext,
    vm_host: str,
    vm_name: str,
    storage_host: str,
    snapshot_name: str,
) -> dict:
    """Take a crash-consistent snapshot of a VM's disk image.

    The VM is stopped for the duration of the image clone and restarted
    afterwards; if any step fails, the undo log restores the original
    running state.
    """
    state = ctx.query(vm_host, "vmState", vm_name)
    ctx.require(state is not None, f"VM {vm_name} does not exist on {vm_host}")
    vm_image = ctx.node(f"{vm_host}/{vm_name}").get("image")
    ctx.require(
        ctx.query(storage_host, "hasImage", vm_image),
        f"disk image {vm_image} not found on {storage_host}",
    )
    ctx.require(
        not ctx.query(storage_host, "hasImage", snapshot_name),
        f"snapshot {snapshot_name} already exists on {storage_host}",
    )
    if state == "running":
        ctx.do(vm_host, "stopVM", vm_name)
    ctx.do(storage_host, "cloneImage", vm_image, snapshot_name)
    if state == "running":
        ctx.do(vm_host, "startVM", vm_name)
    return {"snapshot": f"{storage_host}/{snapshot_name}", "vm": f"{vm_host}/{vm_name}"}


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------

def create_vlan(ctx: OrchestrationContext, router: str, vlan_id: int, name: str = "") -> dict:
    """Create a VLAN on the switch layer."""
    ctx.require(ctx.exists(router), f"router {router} does not exist")
    ctx.do(router, "createVlan", vlan_id, name)
    return {"router": router, "vlan_id": vlan_id}


def delete_vlan(ctx: OrchestrationContext, router: str, vlan_id: int) -> dict:
    """Remove a VLAN from the switch layer."""
    ctx.do(router, "deleteVlan", vlan_id)
    return {"router": router, "vlan_id": vlan_id}


def attach_vm_to_vlan(
    ctx: OrchestrationContext, router: str, vlan_id: int, vm_host: str, vm_name: str
) -> dict:
    """Attach a VM's virtual interface to a VLAN."""
    ctx.require(
        ctx.query(vm_host, "vmState", vm_name) is not None,
        f"VM {vm_name} does not exist on {vm_host}",
    )
    ctx.do(router, "attachPort", vlan_id, vm_name)
    return {"router": router, "vlan_id": vlan_id, "vm": vm_name}


def add_firewall_rule(
    ctx: OrchestrationContext,
    router: str,
    rule_id: int,
    src: str = "any",
    dst: str = "any",
    policy: str = "deny",
) -> dict:
    """Install a firewall rule on the switch layer."""
    ctx.require(ctx.exists(router), f"router {router} does not exist")
    ctx.require(
        int(rule_id) not in ctx.query(router, "listFirewallRules"),
        f"firewall rule {rule_id} already exists on {router}",
    )
    ctx.do(router, "addFirewallRule", int(rule_id), src, dst, policy)
    return {"router": router, "rule_id": int(rule_id), "policy": policy}


def remove_firewall_rule(ctx: OrchestrationContext, router: str, rule_id: int) -> dict:
    """Remove a firewall rule from the switch layer."""
    ctx.require(
        int(rule_id) in ctx.query(router, "listFirewallRules"),
        f"firewall rule {rule_id} does not exist on {router}",
    )
    ctx.do(router, "removeFirewallRule", int(rule_id))
    return {"router": router, "rule_id": int(rule_id)}


# ----------------------------------------------------------------------
# Registry assembly
# ----------------------------------------------------------------------

def build_procedures() -> ProcedureRegistry:
    """Stored-procedure registry for the TCloud service.

    Includes both the primitive orchestrations defined in this module and
    the composite (multi-VM / maintenance) orchestrations of
    :mod:`repro.tcloud.composite`, which are built by calling the primitive
    ones inside the same transaction.
    """
    # Imported here to avoid a circular import: composite procedures call
    # the primitives defined above by name.
    from repro.tcloud.composite import register_composite_procedures

    registry = ProcedureRegistry()
    registry.register("spawnVM", spawn_vm)
    registry.register("startVM", start_vm)
    registry.register("stopVM", stop_vm)
    registry.register("destroyVM", destroy_vm)
    registry.register("migrateVM", migrate_vm)
    registry.register("snapshotVM", snapshot_vm)
    registry.register("createVolume", create_volume)
    registry.register("deleteVolume", delete_volume)
    registry.register("attachVolume", attach_volume)
    registry.register("detachVolume", detach_volume)
    registry.register("createVLAN", create_vlan)
    registry.register("deleteVLAN", delete_vlan)
    registry.register("attachVMToVLAN", attach_vm_to_vlan)
    registry.register("addFirewallRule", add_firewall_rule)
    registry.register("removeFirewallRule", remove_firewall_rule)
    register_composite_procedures(registry)
    return registry
