"""TCloud: an EC2-like IaaS service built on TROPIC (§5).

TCloud lets end users spawn VMs from disk images and start, stop, destroy
and migrate them.  The data centre model consists of storage servers that
export block devices over the network, compute servers that host VMs, and a
programmable switch layer with VLANs — mirroring the GNBD/DRBD + Xen +
Juniper deployment of the prototype, here backed by the mock drivers of
:mod:`repro.drivers`.

The public entry point is :func:`build_tcloud`, which assembles the schema,
stored procedures, initial data model, device fleet and a
:class:`~repro.core.platform.TropicPlatform` into a ready-to-use
:class:`TCloud` service object.
"""

from repro.tcloud.entities import build_schema
from repro.tcloud.procedures import build_procedures
from repro.tcloud.inventory import TCloudInventory, build_inventory
from repro.tcloud.placement import PlacementEngine
from repro.tcloud.service import TCloud, build_tcloud

__all__ = [
    "build_schema",
    "build_procedures",
    "build_inventory",
    "TCloudInventory",
    "PlacementEngine",
    "TCloud",
    "build_tcloud",
]
