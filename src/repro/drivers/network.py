"""Mock programmable switch/router layer with VLAN support."""

from __future__ import annotations

from typing import Any

from repro.common.errors import DeviceError
from repro.datamodel.node import Node
from repro.drivers.base import Device


class RouterDevice(Device):
    """A router/switch providing VLANs for inter-VM communication.

    Spawning a VM sets up VLANs, software bridges and firewalls (§2.1); the
    reproduction models the VLAN piece, which is what the TCloud service
    orchestrates.
    """

    entity_type = "router"

    def __init__(self, name: str, max_vlans: int = 4096, max_fw_rules: int = 1024, **kwargs: Any):
        super().__init__(name, **kwargs)
        self.max_vlans = max_vlans
        self.max_fw_rules = max_fw_rules
        #: vlan id (int) -> {"name": str, "ports": list[str]}
        self.vlans: dict[int, dict[str, Any]] = {}
        #: rule id (int) -> {"src": str, "dst": str, "policy": str}
        self.firewall_rules: dict[int, dict[str, Any]] = {}

    # -- device API ---------------------------------------------------------

    def create_vlan(self, vlan_id: int, vlan_name: str = "") -> None:
        vlan_id = int(vlan_id)
        if vlan_id in self.vlans:
            raise DeviceError(
                f"VLAN {vlan_id} already exists on {self.name}",
                device=self.name,
                action="createVlan",
            )
        if not 1 <= vlan_id <= self.max_vlans:
            raise DeviceError(
                f"VLAN id {vlan_id} out of range", device=self.name, action="createVlan"
            )
        self.vlans[vlan_id] = {"name": vlan_name or f"vlan{vlan_id}", "ports": []}

    def delete_vlan(self, vlan_id: int) -> None:
        vlan = self._vlan(vlan_id, "deleteVlan")
        if vlan["ports"]:
            raise DeviceError(
                f"VLAN {vlan_id} still has attached ports", device=self.name, action="deleteVlan"
            )
        del self.vlans[int(vlan_id)]

    def attach_port(self, vlan_id: int, port: str) -> None:
        vlan = self._vlan(vlan_id, "attachPort")
        if port not in vlan["ports"]:
            vlan["ports"].append(port)

    def detach_port(self, vlan_id: int, port: str) -> None:
        vlan = self._vlan(vlan_id, "detachPort")
        if port in vlan["ports"]:
            vlan["ports"].remove(port)

    def add_firewall_rule(
        self, rule_id: int, src: str = "any", dst: str = "any", policy: str = "deny"
    ) -> None:
        rule_id = int(rule_id)
        if rule_id in self.firewall_rules:
            raise DeviceError(
                f"firewall rule {rule_id} already exists on {self.name}",
                device=self.name,
                action="addFirewallRule",
            )
        if len(self.firewall_rules) >= self.max_fw_rules:
            raise DeviceError(
                f"router {self.name} firewall table is full",
                device=self.name,
                action="addFirewallRule",
            )
        self.firewall_rules[rule_id] = {"src": src, "dst": dst, "policy": policy}

    def remove_firewall_rule(self, rule_id: int) -> None:
        if int(rule_id) not in self.firewall_rules:
            raise DeviceError(
                f"no firewall rule {rule_id} on {self.name}",
                device=self.name,
                action="removeFirewallRule",
            )
        del self.firewall_rules[int(rule_id)]

    # -- introspection --------------------------------------------------------

    def _vlan(self, vlan_id: int, action: str) -> dict[str, Any]:
        vlan = self.vlans.get(int(vlan_id))
        if vlan is None:
            raise DeviceError(
                f"no VLAN {vlan_id} on {self.name}", device=self.name, action=action
            )
        return vlan

    def has_vlan(self, vlan_id: int) -> bool:
        return int(vlan_id) in self.vlans

    def has_firewall_rule(self, rule_id: int) -> bool:
        return int(rule_id) in self.firewall_rules

    # -- reconciliation ----------------------------------------------------------

    def describe(self) -> Node:
        node = Node(self.name, self.entity_type, {"max_vlans": self.max_vlans})
        for vlan_id in sorted(self.vlans):
            vlan = self.vlans[vlan_id]
            node.add_child(
                Node(
                    f"vlan{vlan_id}",
                    "vlan",
                    {"vlan_id": vlan_id, "name": vlan["name"], "ports": sorted(vlan["ports"])},
                )
            )
        for rule_id in sorted(self.firewall_rules):
            rule = self.firewall_rules[rule_id]
            node.add_child(
                Node(
                    f"fw{rule_id}",
                    "fwRule",
                    {
                        "rule_id": rule_id,
                        "src": rule["src"],
                        "dst": rule["dst"],
                        "policy": rule["policy"],
                    },
                )
            )
        return node
