"""Device registry: maps data-model paths to physical devices.

The worker replays execution-log records of the form
``(path, action, args)``; the registry resolves ``path`` (or its nearest
registered ancestor) to the device whose API implements ``action``.  The
registry also assembles the *physical data model* by asking every device to
describe itself, which feeds the reload/repair reconciliation of §4.
"""

from __future__ import annotations

from repro.common.errors import DeviceError
from repro.datamodel.node import Node
from repro.datamodel.path import ResourcePath
from repro.datamodel.tree import DataModel
from repro.drivers.base import Device


class DeviceRegistry:
    """Path-addressable collection of mock devices."""

    def __init__(self) -> None:
        self._devices: dict[ResourcePath, Device] = {}
        self._containers: dict[ResourcePath, str] = {}

    # -- registration -----------------------------------------------------

    def register(self, path: str | ResourcePath, device: Device) -> Device:
        rpath = ResourcePath.parse(path)
        if rpath in self._devices:
            raise DeviceError(f"a device is already registered at {rpath}")
        self._devices[rpath] = device
        return device

    def register_container(self, path: str | ResourcePath, entity_type: str) -> None:
        """Declare a pure-container path (e.g. ``/vmRoot``) and its entity type
        so the physical model can be assembled with correct typing."""
        self._containers[ResourcePath.parse(path)] = entity_type

    def unregister(self, path: str | ResourcePath) -> Device | None:
        return self._devices.pop(ResourcePath.parse(path), None)

    # -- lookup --------------------------------------------------------------

    def lookup(self, path: str | ResourcePath) -> tuple[ResourcePath, Device]:
        """Resolve ``path`` to the device registered at it or at its nearest
        ancestor.  Raises :class:`DeviceError` if none is found."""
        rpath = ResourcePath.parse(path)
        candidates = list(rpath.ancestors(include_self=True))
        for candidate in reversed(candidates):
            device = self._devices.get(candidate)
            if device is not None:
                return candidate, device
        raise DeviceError(f"no device registered for path {rpath}")

    def device_at(self, path: str | ResourcePath) -> Device | None:
        return self._devices.get(ResourcePath.parse(path))

    def devices(self) -> list[tuple[ResourcePath, Device]]:
        return sorted(self._devices.items(), key=lambda item: item[0])

    def device_paths(self) -> list[ResourcePath]:
        return sorted(self._devices)

    def __len__(self) -> int:
        return len(self._devices)

    # -- physical data model ----------------------------------------------------

    def build_physical_model(self) -> DataModel:
        """Assemble the physical data model from device descriptions."""
        model = DataModel()
        for path, entity_type in sorted(self._containers.items()):
            self._ensure_containers(model, path, entity_type)
        for path, device in self.devices():
            if not device.online:
                continue
            parent = path.parent
            self._ensure_containers(model, parent, self._containers.get(parent, "container"))
            subtree = device.describe()
            subtree.name = path.name
            model.get(parent).add_child(subtree)
        return model

    def describe_path(self, path: str | ResourcePath) -> Node:
        """Physical description of the device registered exactly at ``path``."""
        rpath = ResourcePath.parse(path)
        device = self._devices.get(rpath)
        if device is None:
            raise DeviceError(f"no device registered at {rpath}")
        subtree = device.describe()
        subtree.name = rpath.name
        return subtree

    @staticmethod
    def _ensure_containers(model: DataModel, path: ResourcePath, entity_type: str) -> None:
        current = ResourcePath()
        for part in path.parts:
            current = current.child(part)
            if not model.exists(current):
                etype = entity_type if current == path else "container"
                model.create(current, etype)
