"""Mock storage host (LVM + GNBD/DRBD-like block-device server)."""

from __future__ import annotations

from typing import Any

from repro.common.errors import DeviceError
from repro.datamodel.node import Node
from repro.drivers.base import Device


class StorageHostDevice(Device):
    """A storage server holding VM disk images and exporting them over the
    network (cloneImage / exportImage in Table 1)."""

    entity_type = "storageHost"

    def __init__(self, name: str, capacity_gb: float = 4096.0, **kwargs: Any):
        super().__init__(name, **kwargs)
        self.capacity_gb = float(capacity_gb)
        #: image name -> {"size_gb": float, "exported": bool, "template": bool}
        self.images: dict[str, dict[str, Any]] = {}
        #: volume name -> {"size_gb": float, "exported": bool, "attached_to": str|None}
        self.volumes: dict[str, dict[str, Any]] = {}

    # -- setup helpers (not orchestration actions) ---------------------------

    def add_template(self, name: str, size_gb: float = 8.0) -> None:
        """Install a base image template on the storage host."""
        self.images[name] = {"size_gb": float(size_gb), "exported": False, "template": True}

    # -- device API ------------------------------------------------------------

    def clone_image(self, image_template: str, vm_image: str) -> None:
        """Clone a template into a new per-VM logical volume."""
        template = self.images.get(image_template)
        if template is None:
            raise DeviceError(
                f"template {image_template} not found on {self.name}",
                device=self.name,
                action="cloneImage",
            )
        if vm_image in self.images:
            raise DeviceError(
                f"image {vm_image} already exists on {self.name}",
                device=self.name,
                action="cloneImage",
            )
        if self.used_gb() + template["size_gb"] > self.capacity_gb:
            raise DeviceError(
                f"storage host {self.name} out of capacity cloning {vm_image}",
                device=self.name,
                action="cloneImage",
            )
        self.images[vm_image] = {
            "size_gb": template["size_gb"],
            "exported": False,
            "template": False,
        }

    def remove_image(self, vm_image: str) -> None:
        image = self._image(vm_image, "removeImage")
        if image["exported"]:
            raise DeviceError(
                f"image {vm_image} is still exported", device=self.name, action="removeImage"
            )
        del self.images[vm_image]

    def export_image(self, vm_image: str) -> None:
        """Export the image as a network block device."""
        self._image(vm_image, "exportImage")["exported"] = True

    def unexport_image(self, vm_image: str) -> None:
        self._image(vm_image, "unexportImage")["exported"] = False

    # -- block volumes (EBS-like logical volumes) --------------------------------

    def create_volume(self, volume_name: str, size_gb: float) -> None:
        """Allocate a new logical volume."""
        if volume_name in self.volumes or volume_name in self.images:
            raise DeviceError(
                f"volume {volume_name} already exists on {self.name}",
                device=self.name,
                action="createVolume",
            )
        if self.used_gb() + float(size_gb) > self.capacity_gb:
            raise DeviceError(
                f"storage host {self.name} out of capacity creating {volume_name}",
                device=self.name,
                action="createVolume",
            )
        self.volumes[volume_name] = {
            "size_gb": float(size_gb),
            "exported": False,
            "attached_to": None,
        }

    def delete_volume(self, volume_name: str) -> None:
        volume = self._volume(volume_name, "deleteVolume")
        if volume["attached_to"]:
            raise DeviceError(
                f"volume {volume_name} is attached to {volume['attached_to']}",
                device=self.name,
                action="deleteVolume",
            )
        if volume["exported"]:
            raise DeviceError(
                f"volume {volume_name} is still exported",
                device=self.name,
                action="deleteVolume",
            )
        del self.volumes[volume_name]

    def export_volume(self, volume_name: str) -> None:
        self._volume(volume_name, "exportVolume")["exported"] = True

    def unexport_volume(self, volume_name: str) -> None:
        volume = self._volume(volume_name, "unexportVolume")
        if volume["attached_to"]:
            raise DeviceError(
                f"volume {volume_name} is attached to {volume['attached_to']}; detach first",
                device=self.name,
                action="unexportVolume",
            )
        volume["exported"] = False

    def connect_volume(self, volume_name: str, vm_ref: str) -> None:
        volume = self._volume(volume_name, "connectVolume")
        if volume["attached_to"]:
            raise DeviceError(
                f"volume {volume_name} is already attached to {volume['attached_to']}",
                device=self.name,
                action="connectVolume",
            )
        volume["attached_to"] = vm_ref

    def disconnect_volume(self, volume_name: str, vm_ref: str) -> None:
        volume = self._volume(volume_name, "disconnectVolume")
        if volume["attached_to"] != vm_ref:
            raise DeviceError(
                f"volume {volume_name} is not attached to {vm_ref}",
                device=self.name,
                action="disconnectVolume",
            )
        volume["attached_to"] = None

    # -- introspection ----------------------------------------------------------

    def _image(self, name: str, action: str) -> dict[str, Any]:
        image = self.images.get(name)
        if image is None:
            raise DeviceError(
                f"no image {name} on storage host {self.name}", device=self.name, action=action
            )
        return image

    def _volume(self, name: str, action: str) -> dict[str, Any]:
        volume = self.volumes.get(name)
        if volume is None:
            raise DeviceError(
                f"no volume {name} on storage host {self.name}", device=self.name, action=action
            )
        return volume

    def used_gb(self) -> float:
        return sum(image["size_gb"] for image in self.images.values()) + sum(
            volume["size_gb"] for volume in self.volumes.values()
        )

    def has_image(self, name: str) -> bool:
        return name in self.images

    def has_volume(self, name: str) -> bool:
        return name in self.volumes

    # -- out-of-band volatility hooks -----------------------------------------

    def oob_remove_image(self, name: str) -> None:
        self.images.pop(name, None)

    def oob_remove_volume(self, name: str) -> None:
        self.volumes.pop(name, None)

    # -- reconciliation ---------------------------------------------------------

    def describe(self) -> Node:
        node = Node(
            self.name,
            self.entity_type,
            {"capacity_gb": self.capacity_gb},
        )
        for image_name in sorted(self.images):
            image = self.images[image_name]
            node.add_child(
                Node(
                    image_name,
                    "image",
                    {
                        "size_gb": image["size_gb"],
                        "exported": image["exported"],
                        "template": image["template"],
                    },
                )
            )
        for volume_name in sorted(self.volumes):
            volume = self.volumes[volume_name]
            node.add_child(
                Node(
                    volume_name,
                    "volume",
                    {
                        "size_gb": volume["size_gb"],
                        "exported": volume["exported"],
                        "attached_to": volume["attached_to"],
                    },
                )
            )
        return node
