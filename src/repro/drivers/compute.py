"""Mock compute host (Xen-like hypervisor)."""

from __future__ import annotations

from typing import Any

from repro.common.errors import DeviceError
from repro.datamodel.node import Node
from repro.drivers.base import Device


class ComputeHostDevice(Device):
    """A compute server running a hypervisor and hosting VMs.

    The device exposes the actions used by the spawn execution log of
    Table 1 (``importImage``, ``createVM``, ``startVM``) plus their undo
    counterparts and the stop/remove actions used by the hosting workload
    (start/stop/destroy/migrate).
    """

    entity_type = "vmHost"

    def __init__(
        self,
        name: str,
        hypervisor: str = "xen-4.1",
        mem_mb: int = 32768,
        cpu_cores: int = 8,
        **kwargs: Any,
    ):
        super().__init__(name, **kwargs)
        self.hypervisor = hypervisor
        self.mem_mb = mem_mb
        self.cpu_cores = cpu_cores
        #: vm name -> {"state": "stopped"|"running", "mem_mb": int, "image": str}
        self.vms: dict[str, dict[str, Any]] = {}
        #: image names imported (made locally accessible) on this host
        self.imported_images: set[str] = set()

    # -- device API (invoked via action names) -----------------------------

    def import_image(self, vm_image: str) -> None:
        """Make a network-exported image accessible on this host."""
        self.imported_images.add(vm_image)

    def unimport_image(self, vm_image: str) -> None:
        self.imported_images.discard(vm_image)

    def create_vm(
        self,
        vm_name: str,
        vm_image: str,
        mem_mb: int = 1024,
        hypervisor: str | None = None,
    ) -> None:
        """Create the VM configuration on the hypervisor (the VM stays stopped)."""
        if vm_name in self.vms:
            raise DeviceError(
                f"VM {vm_name} already exists on {self.name}", device=self.name, action="createVM"
            )
        if vm_image not in self.imported_images:
            raise DeviceError(
                f"image {vm_image} is not imported on {self.name}",
                device=self.name,
                action="createVM",
            )
        self.vms[vm_name] = {
            "state": "stopped",
            "mem_mb": int(mem_mb),
            "image": vm_image,
            "hypervisor": hypervisor or self.hypervisor,
        }

    def remove_vm(self, vm_name: str) -> None:
        vm = self._vm(vm_name, "removeVM")
        if vm["state"] == "running":
            raise DeviceError(
                f"VM {vm_name} is running; stop it before removal",
                device=self.name,
                action="removeVM",
            )
        del self.vms[vm_name]

    def start_vm(self, vm_name: str) -> None:
        vm = self._vm(vm_name, "startVM")
        used = sum(v["mem_mb"] for n, v in self.vms.items() if v["state"] == "running" and n != vm_name)
        if used + vm["mem_mb"] > self.mem_mb:
            raise DeviceError(
                f"host {self.name} out of memory starting {vm_name}",
                device=self.name,
                action="startVM",
            )
        vm["state"] = "running"

    def stop_vm(self, vm_name: str) -> None:
        vm = self._vm(vm_name, "stopVM")
        vm["state"] = "stopped"

    # -- introspection helpers --------------------------------------------

    def _vm(self, vm_name: str, action: str) -> dict[str, Any]:
        vm = self.vms.get(vm_name)
        if vm is None:
            raise DeviceError(
                f"no VM {vm_name} on host {self.name}", device=self.name, action=action
            )
        return vm

    def vm_state(self, vm_name: str) -> str | None:
        vm = self.vms.get(vm_name)
        return None if vm is None else vm["state"]

    def memory_used(self) -> int:
        """Memory committed to running VMs, in MB."""
        return sum(vm["mem_mb"] for vm in self.vms.values() if vm["state"] == "running")

    # -- out-of-band volatility hooks (§4) -----------------------------------

    def power_cycle(self) -> None:
        """Simulate an unexpected host reboot: all VMs end up powered off."""
        for vm in self.vms.values():
            vm["state"] = "stopped"

    def oob_destroy_vm(self, vm_name: str) -> None:
        """Simulate an operator deleting a VM behind TROPIC's back."""
        self.vms.pop(vm_name, None)

    def oob_set_state(self, vm_name: str, state: str) -> None:
        self._vm(vm_name, "oobSetState")["state"] = state

    # -- reconciliation -------------------------------------------------------

    def describe(self) -> Node:
        node = Node(
            self.name,
            self.entity_type,
            {
                "hypervisor": self.hypervisor,
                "mem_mb": self.mem_mb,
                "cpu_cores": self.cpu_cores,
                "imported_images": sorted(self.imported_images),
            },
        )
        for vm_name in sorted(self.vms):
            vm = self.vms[vm_name]
            node.add_child(
                Node(
                    vm_name,
                    "vm",
                    {
                        "state": vm["state"],
                        "mem_mb": vm["mem_mb"],
                        "image": vm["image"],
                        "hypervisor": vm.get("hypervisor", self.hypervisor),
                    },
                )
            )
        return node
