"""Mock physical devices and their drivers.

The TROPIC prototype drives Xen hypervisors, GNBD/DRBD storage servers and
Juniper routers (§5).  This package substitutes deterministic in-process
device models exposing the same orchestration-relevant behaviour:

* device API calls that succeed, fail, or time out (configurable fault
  injection, per §4's volatility scenarios),
* per-call latency models,
* externally visible device state that can drift out of band (operator CLI
  changes, crashes) and be described back for *reload*/*repair*,
* an inventory/registry mapping data-model paths to devices so the physical
  workers can route execution-log actions to the right device.
"""

from repro.drivers.base import Device, action_to_method
from repro.drivers.faults import FaultInjector, FaultRule
from repro.drivers.compute import ComputeHostDevice
from repro.drivers.storage import StorageHostDevice
from repro.drivers.network import RouterDevice
from repro.drivers.registry import DeviceRegistry

__all__ = [
    "Device",
    "action_to_method",
    "FaultInjector",
    "FaultRule",
    "ComputeHostDevice",
    "StorageHostDevice",
    "RouterDevice",
    "DeviceRegistry",
]
