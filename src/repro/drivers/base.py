"""Base class for mock devices."""

from __future__ import annotations

import re
import threading
from typing import Any

from repro.common.clock import Clock, RealClock
from repro.common.errors import DeviceError
from repro.datamodel.node import Node
from repro.drivers.faults import FaultInjector

_CAMEL_STEP1 = re.compile(r"(.)([A-Z][a-z]+)")
_CAMEL_STEP2 = re.compile(r"([a-z0-9])([A-Z])")


def action_to_method(action: str) -> str:
    """Map an execution-log action name (``cloneImage``, ``startVM``) to the
    Python method name implementing it (``clone_image``, ``start_vm``)."""
    partial = _CAMEL_STEP1.sub(r"\1_\2", action)
    return _CAMEL_STEP2.sub(r"\1_\2", partial).lower()


class Device:
    """A mock physical device.

    Subclasses implement device API calls as snake_case methods; the worker
    invokes them by the camelCase action names recorded in the execution log
    (Table 1) through :meth:`invoke`, which also applies fault injection and
    the per-call latency model.
    """

    entity_type = "device"

    def __init__(
        self,
        name: str,
        clock: Clock | None = None,
        call_latency: float = 0.0,
        faults: FaultInjector | None = None,
    ):
        self.name = name
        self.clock = clock or RealClock()
        self.call_latency = call_latency
        self.faults = faults or FaultInjector()
        self.call_log: list[tuple[str, tuple[Any, ...]]] = []
        self.online = True
        self._hang_event = threading.Event()
        self._hang_event.set()
        self._hang_permits = 0
        self._lock = threading.RLock()

    # -- invocation --------------------------------------------------------

    def invoke(
        self, action: str, args: list[Any] | tuple[Any, ...], phase: str = "forward"
    ) -> Any:
        """Invoke a device API call by its action name.

        ``phase`` tells fault injection whether this call replays a forward
        action (``"forward"``), an undo action during rollback (``"undo"``)
        or a reconciliation repair action (``"repair"``).
        """
        with self._lock:
            if not self.online:
                raise DeviceError(f"device {self.name} is offline", device=self.name, action=action)
            method_name = action_to_method(action)
            method = getattr(self, method_name, None)
            if method is None or not callable(method):
                raise DeviceError(
                    f"device {self.name} does not implement action {action!r}",
                    device=self.name,
                    action=action,
                )
            outcome = self.faults.check(self.name, action, phase)
        if outcome == "hang":
            # Simulate a stalled device call, cleared by release_hang().
            # A release issued before the hang fires counts as a permit so
            # the call does not block at all; each hang consumes at most
            # one permit.
            with self._lock:
                consumed = self._hang_permits > 0
                if consumed:
                    self._hang_permits -= 1
                else:
                    self._hang_event.clear()
            if not consumed:
                # Only an unpermitted hang blocks; a banked permit lets the
                # call pass straight through even if another caller has the
                # event cleared right now.
                self._hang_event.wait()
                with self._lock:
                    if self._hang_permits > 0:
                        self._hang_permits -= 1  # the release that woke us
        else:
            self._hang_event.wait()
        if self.call_latency > 0:
            self.clock.sleep(self.call_latency)
        with self._lock:
            self.call_log.append((action, tuple(args)))
            return method(*args)

    def supports(self, action: str) -> bool:
        return callable(getattr(self, action_to_method(action), None))

    # -- volatility hooks ------------------------------------------------------

    def go_offline(self) -> None:
        """Simulate an unreachable device."""
        self.online = False

    def go_online(self) -> None:
        self.online = True

    def release_hang(self) -> None:
        """Unblock a call stalled by a hang fault (or pre-authorise the
        next hang to pass straight through)."""
        with self._lock:
            self._hang_permits += 1
            self._hang_event.set()

    # -- reconciliation support -------------------------------------------------

    def describe(self) -> Node:
        """Return a data-model subtree describing current physical state.

        Used to build the physical data model for *reload* and *repair* (§4).
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} online={self.online}>"
