"""Fault injection for mock devices.

The robustness experiments (§6.3) inject errors into the last step of VM
spawn and migrate; the volatility scenarios of §4 include failures during
undo, out-of-band changes and crashes.  :class:`FaultInjector` lets tests
and benchmarks express all of these declaratively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.errors import DeviceError, DeviceTimeout


@dataclass
class FaultRule:
    """A single fault-injection rule.

    Attributes
    ----------
    action:
        Action name the rule applies to (e.g. ``"startVM"``), or ``"*"``
        for any action.
    probability:
        Probability of triggering on a matching call (``1.0`` = always).
    remaining:
        Number of times the rule may still fire; ``None`` means unlimited.
    kind:
        ``"error"`` raises :class:`DeviceError`, ``"timeout"`` raises
        :class:`DeviceTimeout`, ``"hang"`` is reported to the caller via the
        injector so it can simulate a stalled transaction (§4's TERM/KILL).
    message:
        Error message attached to the raised exception.
    phase:
        Which execution phase the rule applies to: ``"any"`` (default),
        ``"forward"`` (only actions replayed from the execution log, the
        §6.3 error-injection setup) or ``"undo"`` (only rollback actions,
        the §4 undo-failure volatility scenario).
    """

    action: str = "*"
    probability: float = 1.0
    remaining: int | None = 1
    kind: str = "error"
    message: str = "injected fault"
    phase: str = "any"

    def matches(self, action: str, phase: str = "forward") -> bool:
        if self.remaining is not None and self.remaining <= 0:
            return False
        if self.phase not in ("any", phase):
            return False
        return self.action in ("*", action)


@dataclass
class FaultInjector:
    """Holds fault rules for one device and decides per call whether to fire."""

    rules: list[FaultRule] = field(default_factory=list)
    seed: int | None = None
    calls: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # -- configuration ----------------------------------------------------

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def fail_next(
        self, action: str = "*", message: str = "injected fault", phase: str = "any"
    ) -> FaultRule:
        """Fail the next matching call exactly once."""
        return self.add_rule(FaultRule(action=action, remaining=1, message=message, phase=phase))

    def fail_always(
        self, action: str = "*", message: str = "injected fault", phase: str = "any"
    ) -> FaultRule:
        return self.add_rule(
            FaultRule(action=action, remaining=None, message=message, phase=phase)
        )

    def fail_with_probability(
        self,
        probability: float,
        action: str = "*",
        message: str = "injected fault",
        phase: str = "any",
    ) -> FaultRule:
        return self.add_rule(
            FaultRule(
                action=action,
                probability=probability,
                remaining=None,
                message=message,
                phase=phase,
            )
        )

    def timeout_next(self, action: str = "*") -> FaultRule:
        return self.add_rule(FaultRule(action=action, remaining=1, kind="timeout"))

    def hang_next(self, action: str = "*") -> FaultRule:
        return self.add_rule(FaultRule(action=action, remaining=1, kind="hang"))

    def clear(self) -> None:
        self.rules.clear()

    # -- evaluation ---------------------------------------------------------

    def check(self, device_name: str, action: str, phase: str = "forward") -> str | None:
        """Raise the configured fault for ``action`` if a rule fires.

        ``phase`` identifies whether the call replays a forward action of
        the execution log or an undo action during rollback, so rules can
        target one phase only.  Returns ``"hang"`` when a hang rule fires so
        the device can block, otherwise returns ``None``.
        """
        self.calls += 1
        for rule in self.rules:
            if not rule.matches(action, phase):
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            if rule.remaining is not None:
                rule.remaining -= 1
            self.fired += 1
            if rule.kind == "timeout":
                raise DeviceTimeout(
                    f"{device_name}.{action}: {rule.message}", device=device_name, action=action
                )
            if rule.kind == "hang":
                return "hang"
            raise DeviceError(
                f"{device_name}.{action}: {rule.message}", device=device_name, action=action
            )
        return None
