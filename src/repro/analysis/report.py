"""Finding/report formatting for the analyzer CLI and CI logs."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.baseline import BaselineDiff
from repro.analysis.core import Finding
from repro.analysis.lockgraph import LockGraph


def _relpath(module: str) -> str:
    return "src/" + module.replace(".", "/") + ".py"


def format_findings(
    findings: list[Finding], show_waived: bool = False
) -> str:
    lines: list[str] = []
    active = [f for f in findings if not f.waived]
    waived = [f for f in findings if f.waived]
    for finding in active:
        lines.append(
            f"{_relpath(finding.module)}:{finding.lineno}: "
            f"[{finding.rule}] {finding.qualname}: {finding.message}"
        )
    if show_waived:
        for finding in waived:
            why = finding.waiver.justification if finding.waiver else ""
            lines.append(
                f"{_relpath(finding.module)}:{finding.lineno}: "
                f"[waived:{finding.rule}] {finding.qualname}: {why or finding.message}"
            )
    lines.append(
        f"analysis: {len(active)} finding(s), {len(waived)} waived"
    )
    return "\n".join(lines)


def format_json(findings: list[Finding]) -> str:
    return json.dumps(
        [
            {
                "rule": f.rule,
                "file": _relpath(f.module),
                "line": f.lineno,
                "qualname": f.qualname,
                "message": f.message,
                "key": f.key,
                "waived": f.waived,
                "justification": (
                    f.waiver.justification if f.waiver is not None else None
                ),
            }
            for f in findings
        ],
        indent=2,
    ) + "\n"


def format_diff(diff: BaselineDiff) -> str:
    lines: list[str] = []
    for finding in diff.new:
        lines.append(
            f"NEW      {_relpath(finding.module)}:{finding.lineno}: "
            f"[{finding.rule}] {finding.message}"
        )
    for key in diff.stale:
        lines.append(f"STALE    baseline entry no longer produced: {key}")
    for key in diff.missing_justification:
        lines.append(f"NOJUST   baseline entry has no justification: {key}")
    return "\n".join(lines)


def format_lock_graph(graph: LockGraph) -> str:
    lines = [f"{len(graph.nodes)} locks, {len(graph.edges)} ordered pairs"]
    for name in sorted(graph.nodes):
        lines.append(f"  lock {name} ({graph.nodes[name]})")
    for (src, dst), edges in sorted(graph.edges.items()):
        example = edges[0]
        via = f" via {example.via}" if example.via else ""
        lines.append(
            f"  {src} -> {dst}  "
            f"[{example.function.full_qualname}:{example.lineno}{via}]"
        )
    cycles = graph.cycles()
    if cycles:
        lines.append(f"  {len(cycles)} cycle(s):")
        for cycle in cycles:
            lines.append("    " + " -> ".join(cycle + (cycle[0],)))
    else:
        lines.append("  no cycles")
    return "\n".join(lines)


def write_trace_report(path: Path, missing: list[tuple[str, str]]) -> str:
    if not missing:
        return f"trace {path}: every recorded edge is in the static graph"
    lines = [f"trace {path}: {len(missing)} edge(s) missing from the static graph:"]
    for src, dst in missing:
        lines.append(f"  runtime observed {src} -> {dst}")
    return "\n".join(lines)
