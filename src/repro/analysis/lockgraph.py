"""Static lock-order graph: acquisition extraction, propagation, cycles.

In-process locks are identified at construction (``self._lock =
threading.RLock()`` — also seen through the runtime recorder's
``traced(...)`` wrapper) and named ``ClassName.attr``, matching the
names the runtime lock-order recorder emits, so the trace recorded from
a real run (``REPRO_LOCK_ORDER=record``) can be checked as a subgraph
of this static graph.

Edges mean *may hold A while acquiring B*:

* lexically — a ``with self._b:`` nested inside ``with self._a:``, and
* interprocedurally — a call made while ``A`` is held reaches (through
  the resolved call graph, to a bounded depth) a function that acquires
  ``B``.

A cycle in the graph is a potential deadlock (rule
``lock-order-cycle``); a nested acquisition of the *same*
non-reentrant ``threading.Lock`` is certain self-deadlock (rule
``lock-self-deadlock``).  See
``docs/development.md#the-invariant-catalog``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import (
    AnalysisIndex,
    CallSite,
    Finding,
    FunctionInfo,
    _attr_chain,
)

RULE_CYCLE = "lock-order-cycle"
RULE_SELF_DEADLOCK = "lock-self-deadlock"
RULE_NAME_MISMATCH = "lock-name-mismatch"


@dataclass
class Acquisition:
    """One ``with <lock>:`` site inside a function."""

    lock: str  # "ClassName.attr"
    kind: str  # "Lock" | "RLock" | ...
    function: FunctionInfo
    lineno: int
    #: locks already held lexically at this site (innermost last)
    held: tuple[str, ...]
    #: the with-body statements guarded by this acquisition
    body: list[ast.stmt] = field(default_factory=list)


@dataclass
class LockEdge:
    """Evidence that ``src`` may be held while acquiring ``dst``."""

    src: str
    dst: str
    function: FunctionInfo
    lineno: int
    via: str  # "" for lexical nesting, else the call path, e.g. "a -> b"


class LockGraph:
    """The static lock-order graph over ``ClassName.attr`` lock names."""

    def __init__(self) -> None:
        self.nodes: dict[str, str] = {}  # lock name -> kind
        self.edges: dict[tuple[str, str], list[LockEdge]] = {}
        self.acquisitions: list[Acquisition] = []

    def add_edge(self, edge: LockEdge) -> None:
        self.edges.setdefault((edge.src, edge.dst), []).append(edge)

    def successors(self, lock: str) -> set[str]:
        return {dst for (src, dst) in self.edges if src == lock}

    def edge_pairs(self) -> set[tuple[str, str]]:
        return set(self.edges)

    def cycles(self) -> list[tuple[str, ...]]:
        """Elementary cycles (as canonically rotated node tuples), found
        per strongly connected component; self-loops are reported as
        1-tuples.  The graph is small (tens of locks), so a simple
        DFS-based enumeration is plenty."""
        adjacency: dict[str, set[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, set()).add(dst)
        cycles: set[tuple[str, ...]] = set()
        for start in sorted(adjacency):
            stack = [(start, (start,))]
            while stack:
                node, path = stack.pop()
                for succ in sorted(adjacency.get(node, ())):
                    if succ == start:
                        cycles.add(_canonical(path))
                    elif succ not in path and len(path) < 8:
                        stack.append((succ, path + (succ,)))
        return sorted(cycles)


def _canonical(path: tuple[str, ...]) -> tuple[str, ...]:
    pivot = path.index(min(path))
    return path[pivot:] + path[:pivot]


def _with_lock_names(
    stmt: ast.With, function: FunctionInfo, index: AnalysisIndex
) -> list[tuple[str, str]]:
    """``(lock_name, kind)`` for each ``with`` item that is a known
    in-process lock of the enclosing class (``self.attr`` or
    ``self.attr.attr2`` through attribute-type facts)."""
    owner = index.class_of(function)
    results: list[tuple[str, str]] = []
    for item in stmt.items:
        expr = item.context_expr
        if not isinstance(expr, ast.Attribute):
            continue
        chain: list[str] = []
        node: ast.expr = expr
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name) or node.id != "self":
            continue
        chain.reverse()  # attrs from self outward
        holder = owner
        for attr in chain[:-1]:
            if holder is None:
                break
            type_name = holder.attr_types.get(attr)
            holder = index.classes.get(type_name) if type_name else None
        if holder is None:
            continue
        kind = holder.lock_attrs.get(chain[-1])
        if kind is None:
            continue
        results.append((f"{holder.name}.{chain[-1]}", kind))
    return results


def _collect_acquisitions(
    function: FunctionInfo, index: AnalysisIndex
) -> list[Acquisition]:
    acquisitions: list[Acquisition] = []

    def walk(stmts: list[ast.stmt], held: tuple[str, ...]) -> None:
        for stmt in stmts:
            inner_held = held
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for lock, kind in _with_lock_names(stmt, function, index):
                    acquisitions.append(
                        Acquisition(
                            lock=lock,
                            kind=kind,
                            function=function,
                            lineno=stmt.lineno,
                            held=inner_held,
                            body=stmt.body,
                        )
                    )
                    inner_held = inner_held + (lock,)
            for child_body in _child_bodies(stmt):
                walk(child_body, inner_held)

    walk(list(function.node.body), ())
    return acquisitions


def _child_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    """Statement bodies nested directly inside ``stmt`` (skipping nested
    function definitions, which execute later under their own context)."""
    bodies: list[list[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            bodies.append(value)
    if isinstance(stmt, ast.Try):
        for handler in stmt.handlers:
            bodies.append(handler.body)
    return bodies


def _calls_in(stmts: list[ast.stmt]) -> list[CallSite]:
    """Call chains appearing in ``stmts`` (lexically, skipping nested defs)."""
    sites: list[CallSite] = []
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain:
                    sites.append(CallSite(chain=chain, lineno=node.lineno, node=node))
    return sites


#: Interprocedural propagation depth bound: deep enough to cross the
#: facade layers in this codebase (platform -> controller -> store ->
#: kvstore -> client), shallow enough to stay fast and reviewable.
MAX_CALL_DEPTH = 6


class LockAnalysis:
    """Lock acquisitions, the derived order graph and its findings."""

    def __init__(self, index: AnalysisIndex):
        self.index = index
        self.graph = LockGraph()
        self._direct: dict[int, list[Acquisition]] = {}
        self._closure: dict[int, dict[str, tuple[str, ...]]] = {}
        self._build()

    # -- construction ---------------------------------------------------

    def _build(self) -> None:
        for cls in self.index.classes.values():
            for attr, kind in cls.lock_attrs.items():
                self.graph.nodes[f"{cls.name}.{attr}"] = kind
        for function in self.index.iter_functions():
            acquisitions = _collect_acquisitions(function, self.index)
            self._direct[id(function)] = acquisitions
            self.graph.acquisitions.extend(acquisitions)
        self._compute_closure()
        self._add_edges()

    def _locks_acquired_by(self, function: FunctionInfo) -> dict[str, tuple[str, ...]]:
        """Locks ``function`` may (transitively) acquire, mapped to an
        example call path (function qualnames) reaching the acquisition."""
        cached = self._closure.get(id(function))
        if cached is not None:
            return cached
        self._closure[id(function)] = {}  # cycle guard: in-progress
        result: dict[str, tuple[str, ...]] = {}
        for acq in self._direct.get(id(function), ()):
            result.setdefault(acq.lock, (function.qualname,))
        for call in function.calls:
            for callee in self.index.resolve_call(function, call):
                for lock, path in self._locks_acquired_by(callee).items():
                    if len(path) >= MAX_CALL_DEPTH:
                        continue
                    result.setdefault(lock, (function.qualname,) + path)
        self._closure[id(function)] = result
        return result

    def _compute_closure(self) -> None:
        # Fixpoint: recompute until stable (recursion through cycles may
        # under-fill on the first pass because of the in-progress guard).
        for _ in range(3):
            before = {
                fid: dict(locks) for fid, locks in self._closure.items()
            }
            self._closure.clear()
            for function in self.index.iter_functions():
                self._locks_acquired_by(function)
            if self._closure.keys() == before.keys() and all(
                self._closure[fid].keys() == before[fid].keys()
                for fid in self._closure
            ):
                break

    def _add_edges(self) -> None:
        for acq in self.graph.acquisitions:
            # Lexical nesting edges.
            for held in acq.held:
                if held != acq.lock:
                    self.graph.add_edge(
                        LockEdge(
                            src=held,
                            dst=acq.lock,
                            function=acq.function,
                            lineno=acq.lineno,
                            via="",
                        )
                    )
            # Interprocedural edges: calls made while acq.lock is held.
            for call in _calls_in(acq.body):
                for callee in self.index.resolve_call(acq.function, call):
                    for lock, path in self._locks_acquired_by(callee).items():
                        if lock == acq.lock:
                            continue
                        self.graph.add_edge(
                            LockEdge(
                                src=acq.lock,
                                dst=lock,
                                function=acq.function,
                                lineno=call.lineno,
                                via=" -> ".join(path),
                            )
                        )

    # -- findings -------------------------------------------------------

    def findings(self) -> list[Finding]:
        findings: list[Finding] = []
        for cycle in self.graph.cycles():
            edges = self._cycle_evidence(cycle)
            where = edges[0] if edges else None
            findings.append(
                Finding(
                    rule=RULE_CYCLE,
                    module=where.function.module.name if where else "repro",
                    qualname=where.function.qualname if where else "<graph>",
                    lineno=where.lineno if where else 0,
                    message=(
                        "potential deadlock: lock-order cycle "
                        + " -> ".join(cycle + (cycle[0],))
                        + "; evidence: "
                        + "; ".join(
                            f"{e.src}->{e.dst} at {e.function.full_qualname}:{e.lineno}"
                            + (f" via {e.via}" if e.via else "")
                            for e in edges[:4]
                        )
                    ),
                    detail="->".join(cycle),
                )
            )
        for acq in self.graph.acquisitions:
            if acq.lock in acq.held and self.graph.nodes.get(acq.lock) == "Lock":
                findings.append(
                    Finding(
                        rule=RULE_SELF_DEADLOCK,
                        module=acq.function.module.name,
                        qualname=acq.function.qualname,
                        lineno=acq.lineno,
                        message=(
                            f"non-reentrant threading.Lock {acq.lock} acquired "
                            f"while already held in the same function"
                        ),
                        detail=acq.lock,
                    )
                )
        findings.extend(self._traced_name_findings())
        return findings

    def _traced_name_findings(self) -> list[Finding]:
        """Every ``traced(<lock>, name)`` literal must equal the
        ``ClassName.attr`` id the static graph derives, or the runtime
        trace could never be compared with the static graph."""
        findings: list[Finding] = []
        for cls in self.index.classes.values():
            for attr, literal in cls.traced_names.items():
                expected = f"{cls.name}.{attr}"
                if literal != expected:
                    init = cls.methods.get("__init__")
                    findings.append(
                        Finding(
                            rule=RULE_NAME_MISMATCH,
                            module=cls.module.name,
                            qualname=f"{cls.name}.__init__",
                            lineno=init.node.lineno if init else cls.node.lineno,
                            message=(
                                f"traced() name {literal!r} does not match the "
                                f"static lock id {expected!r}"
                            ),
                            detail=expected,
                        )
                    )
        return findings

    def _cycle_evidence(self, cycle: tuple[str, ...]) -> list[LockEdge]:
        evidence: list[LockEdge] = []
        for i, src in enumerate(cycle):
            dst = cycle[(i + 1) % len(cycle)]
            edges = self.graph.edges.get((src, dst))
            if edges:
                evidence.append(edges[0])
        return evidence


def build_lock_graph(index: AnalysisIndex) -> LockGraph:
    return LockAnalysis(index).graph
