"""Static concurrency & protocol invariant analyzer (`make analyze`).

The platform encodes several hard-won invariants that runtime testing
alone catches late (hours into a seeded soak) or not at all: lock
acquisition order, no coordination RPCs while holding a hot in-process
lock, all `DataModel` mutation through the copy-on-write ownership
funnel, all `KVStore` writes through the persistence/group-commit
funnel, the documented transaction state machine, and the PR 6 error
taxonomy inside retry loops.  This package proves those rules on every
commit with a repo-specific AST analyzer: an interprocedural call/lock
reachability core (`repro.analysis.core`), a static lock-order graph
with cycle detection validated by a runtime recorder
(`repro.analysis.lockgraph`, `repro.analysis.recorder`), and pluggable
checkers (`repro.analysis.checkers`).  Findings are keyed, diffable
against a checked-in baseline (`analysis/baseline.json`) and waivable
inline with ``# repro: allow(<rule>) -- <justification>``.

Run it with ``python -m repro.analysis`` or ``make analyze``; the rule
catalog — each invariant, the past bug that motivated it, and how to
waive — lives in ``docs/development.md#the-invariant-catalog``.
"""

from repro.analysis.baseline import Baseline, diff_against_baseline
from repro.analysis.checkers import run_checkers
from repro.analysis.core import AnalysisIndex, Finding, load_index
from repro.analysis.lockgraph import LockGraph, build_lock_graph
from repro.analysis.recorder import lock_order_recorder, traced

__all__ = [
    "AnalysisIndex",
    "Baseline",
    "Finding",
    "LockGraph",
    "build_lock_graph",
    "diff_against_baseline",
    "load_index",
    "lock_order_recorder",
    "run_checkers",
    "traced",
]
