"""Runtime lock-order recorder (`REPRO_LOCK_ORDER=record`).

The static lock-order graph is an approximation; this recorder is its
ground truth.  Runtime modules construct their in-process locks through
:func:`traced`, which is an exact no-op (the lock is returned untouched)
unless recording is enabled — via the ``REPRO_LOCK_ORDER=record``
environment variable or programmatically with
``lock_order_recorder.enable()`` *before* the locks are constructed.

When enabled, each traced lock is wrapped in a proxy that maintains a
per-thread stack of held lock names and records an ordered edge
``(held, acquired)`` for every acquisition made while another traced
lock is held.  The trace is dumped to ``REPRO_LOCK_ORDER_FILE``
(default ``lock_order_trace.json``) at interpreter exit, and the CI
``static-analysis`` job replays the fault-matrix smoke under the
recorder and asserts the trace is a **subgraph** of the static graph
(``python -m repro.analysis --check-trace``): an edge observed at
runtime but absent statically means the analyzer's call-graph
approximation has a hole worth closing.  See
``docs/development.md#the-runtime-lock-order-recorder``.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from pathlib import Path
from typing import Any

ENV_VAR = "REPRO_LOCK_ORDER"
ENV_FILE = "REPRO_LOCK_ORDER_FILE"
DEFAULT_TRACE_FILE = "lock_order_trace.json"


class LockOrderRecorder:
    """Collects ordered (held, acquired) edges across all traced locks."""

    def __init__(self) -> None:
        self._enabled = os.environ.get(ENV_VAR, "") == "record"
        # The recorder's own mutex is intentionally a plain lock created
        # directly (never traced): it must not appear in its own trace.
        self._mutex = threading.Lock()
        self._held = threading.local()
        self._edges: dict[tuple[str, str], int] = {}
        self._acquired: dict[str, int] = {}
        self._dump_registered = False

    # -- lifecycle ------------------------------------------------------

    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Turn recording on for locks constructed *after* this call."""
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._acquired.clear()

    # -- recording ------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def record_acquired(self, name: str) -> None:
        stack = self._stack()
        with self._mutex:
            self._acquired[name] = self._acquired.get(name, 0) + 1
            for held in stack:
                if held != name:
                    edge = (held, name)
                    self._edges[edge] = self._edges.get(edge, 0) + 1
        stack.append(name)

    def record_released(self, name: str) -> None:
        stack = self._stack()
        # Remove the most recent occurrence; out-of-order releases (rare,
        # explicit acquire/release pairs) must not corrupt the stack.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                break

    # -- results --------------------------------------------------------

    def edges(self) -> dict[tuple[str, str], int]:
        with self._mutex:
            return dict(self._edges)

    def acquired(self) -> dict[str, int]:
        with self._mutex:
            return dict(self._acquired)

    def dump(self, path: Path | str | None = None) -> Path:
        """Write (merging with any existing trace at the target) the
        recorded edges as JSON; returns the path written."""
        target = Path(path or os.environ.get(ENV_FILE, DEFAULT_TRACE_FILE))
        edges = {f"{src} -> {dst}": count for (src, dst), count in self.edges().items()}
        acquired = self.acquired()
        if target.exists():
            try:
                previous = json.loads(target.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                previous = {}
            for key, count in previous.get("edges", {}).items():
                edges[key] = edges.get(key, 0) + int(count)
            for key, count in previous.get("acquired", {}).items():
                acquired[key] = acquired.get(key, 0) + int(count)
        target.write_text(
            json.dumps(
                {"edges": dict(sorted(edges.items())),
                 "acquired": dict(sorted(acquired.items()))},
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        return target

    def _register_dump(self) -> None:
        if not self._dump_registered:
            self._dump_registered = True
            atexit.register(self.dump)


#: Process-wide singleton used by every traced lock.
lock_order_recorder = LockOrderRecorder()


def load_trace_edges(path: Path | str) -> list[tuple[str, str]]:
    """Parse a dumped trace file back into (src, dst) edge pairs."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    edges: list[tuple[str, str]] = []
    for key in data.get("edges", {}):
        src, _, dst = key.partition(" -> ")
        edges.append((src.strip(), dst.strip()))
    return edges


class _TracedLock:
    """Context-manager proxy recording acquisition order for one lock."""

    __slots__ = ("_lock", "_name")

    def __init__(self, lock: Any, name: str):
        self._lock = lock
        self._name = name

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            lock_order_recorder.record_acquired(self._name)
        return acquired

    def release(self) -> None:
        self._lock.release()
        lock_order_recorder.record_released(self._name)

    def __enter__(self) -> "_TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __getattr__(self, item: str) -> Any:
        return getattr(self._lock, item)

    def __repr__(self) -> str:
        return f"<traced {self._name} {self._lock!r}>"


def traced(lock: Any, name: str) -> Any:
    """Wrap ``lock`` for order recording when the recorder is enabled;
    otherwise return ``lock`` unchanged (zero overhead on the hot path).

    ``name`` must be the ``ClassName.attr`` id the static analyzer
    derives for the construction site — the analyzer's
    ``lock-name-mismatch`` rule enforces it.
    """
    if not lock_order_recorder.enabled():
        return lock
    # Only env-driven recording dumps at exit; programmatic enable()
    # (test fixtures) reads edges in-process and must not leave files.
    if os.environ.get(ENV_VAR, "") == "record":
        lock_order_recorder._register_dump()
    return _TracedLock(lock, name)
