"""CLI driver: ``python -m repro.analysis`` (also ``make analyze``).

Exit status: 0 when the tree is clean against the baseline (and, with
``--check-trace``, the runtime trace is a subgraph of the static lock
graph); 1 on any unbaselined finding, baseline drift, unjustified
waiver, unwaived lock-order cycle or trace/static mismatch.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, diff_against_baseline
from repro.analysis.checkers import CHECKERS, run_checkers
from repro.analysis.core import load_index
from repro.analysis.lockgraph import build_lock_graph
from repro.analysis.recorder import load_trace_edges
from repro.analysis.report import (
    format_diff,
    format_findings,
    format_json,
    format_lock_graph,
    write_trace_report,
)

_REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_SRC = _REPO_ROOT / "src" / "repro"
DEFAULT_BASELINE = _REPO_ROOT / "analysis" / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static concurrency & protocol invariant analyzer.",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=str(DEFAULT_SRC),
        help="source tree to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline JSON path (default: analysis/baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report raw findings without baseline diffing",
    )
    parser.add_argument(
        "--rules",
        default="",
        help=f"comma-separated checker subset ({', '.join(CHECKERS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--show-waived", action="store_true", help="also list waived findings"
    )
    parser.add_argument(
        "--lock-graph",
        action="store_true",
        help="print the static lock-order graph and exit",
    )
    parser.add_argument(
        "--check-trace",
        metavar="TRACE",
        help="assert a recorded runtime lock-order trace (REPRO_LOCK_ORDER="
        "record) is a subgraph of the static graph",
    )
    args = parser.parse_args(argv)

    index = load_index(args.root)

    if args.lock_graph:
        print(format_lock_graph(build_lock_graph(index)))
        return 0

    if args.check_trace:
        graph = build_lock_graph(index)
        static_edges = graph.edge_pairs()
        known = set(graph.nodes)
        missing = [
            (src, dst)
            for src, dst in load_trace_edges(args.check_trace)
            if (src, dst) not in static_edges and src in known and dst in known
        ]
        print(write_trace_report(Path(args.check_trace), missing))
        return 1 if missing else 0

    only = [name.strip() for name in args.rules.split(",") if name.strip()] or None
    findings = run_checkers(index, only=only)

    if args.write_baseline:
        baseline = Baseline.from_findings(findings)
        baseline.save(args.baseline)
        print(
            f"wrote {args.baseline}: {len(baseline.entries)} entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'}"
        )
        return 0

    if args.fmt == "json":
        sys.stdout.write(format_json(findings))
        active = [f for f in findings if not f.waived]
        if args.no_baseline:
            return 1 if active else 0
        diff = diff_against_baseline(findings, Baseline.load(args.baseline))
        return 0 if diff.clean else 1

    if args.no_baseline:
        print(format_findings(findings, show_waived=args.show_waived))
        return 1 if [f for f in findings if not f.waived] else 0

    diff = diff_against_baseline(findings, Baseline.load(args.baseline))
    if args.show_waived or not diff.clean:
        print(format_findings(findings, show_waived=args.show_waived))
    if diff.clean:
        waived = sum(1 for f in findings if f.waived)
        print(
            f"analysis: clean against baseline "
            f"({len(findings) - waived} baselined, {waived} waived)"
        )
        return 0
    print(format_diff(diff))
    return 1


if __name__ == "__main__":
    sys.exit(main())
