"""Analyzer core: module loading, call indexing and waiver scanning.

This is the reachability substrate the checkers share (following the
reachability framing of PAPERS.md: *Program Analysis via Multiple
Context Free Language Reachability*): every module under ``src/repro``
is parsed once into an :class:`AnalysisIndex` holding

* every function/method with its outgoing :class:`CallSite` list,
* per-class attribute type facts (``self.store = TropicStore(...)`` in
  any method, dataclass/annotation fields) used to resolve
  ``self.attr.method(...)`` chains, and
* the in-process lock attributes each class constructs.

Call resolution is deliberately *conservative in both directions*:
chains it can type-resolve bind to the real callee; an unresolved name
binds to the unique indexed definition of that name when one exists
(never for ubiquitous collection-method names), and otherwise resolves
to nothing — checkers then fall back to pattern matching on the
terminal attribute name.  The runtime lock-order recorder
(`repro.analysis.recorder`) exists precisely to validate what this
approximation claims about lock order.  See
``docs/development.md#how-the-analyzer-works``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

#: Method names too generic to resolve by uniqueness: they collide with
#: dict/set/list/str methods, so a call only binds to them through an
#: explicitly typed chain (``self.model.get`` with ``model: DataModel``).
AMBIGUOUS_METHOD_NAMES = frozenset(
    {
        "get",
        "set",
        "add",
        "pop",
        "popitem",
        "append",
        "appendleft",
        "extend",
        "clear",
        "update",
        "remove",
        "discard",
        "insert",
        "keys",
        "values",
        "items",
        "copy",
        "sort",
        "sorted",
        "reverse",
        "index",
        "count",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "encode",
        "decode",
        "read",
        "write",
        "close",
        "open",
        "send",
        "next",
        "name",
        "exists",
        "parse",
        "match",
        "findall",
        "setdefault",
        "put",
        "delete",
        "create",
        "start",
        "stop",
        "run",
        "wait",
        "notify",
        "acquire",
        "release",
        "to_dict",
        "from_dict",
    }
)

_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([\w\-, ]+?)\s*\)(?:\s*--\s*(?P<why>.+?)\s*)?$"
)

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


@dataclass
class Waiver:
    """An inline ``# repro: allow(rule, ...) -- justification`` comment."""

    rules: tuple[str, ...]
    justification: str
    lineno: int
    used: bool = False


@dataclass
class Finding:
    """One rule violation at one site, keyed stably for baselining.

    ``detail`` is the rule-specific discriminator (e.g. the lock pair of
    a cycle, the lock name of a blocking-hold); keys intentionally omit
    line numbers so unrelated edits do not churn the baseline.
    """

    rule: str
    module: str
    qualname: str
    lineno: int
    message: str
    detail: str = ""
    waiver: "Waiver | None" = None

    @property
    def key(self) -> str:
        return "::".join((self.rule, self.module, self.qualname, self.detail))

    @property
    def waived(self) -> bool:
        return self.waiver is not None

    def location(self) -> str:
        return f"{self.module}:{self.lineno}"


@dataclass
class CallSite:
    """One ``ast.Call`` with its attribute chain, e.g. ``self.store.kv.put``
    becomes ``("self", "store", "kv", "put")``."""

    chain: tuple[str, ...]
    lineno: int
    node: ast.Call

    @property
    def terminal(self) -> str:
        return self.chain[-1]


class FunctionInfo:
    """A function or method plus its outgoing call sites."""

    def __init__(
        self,
        module: "SourceModule",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ):
        self.module = module
        self.node = node
        self.class_name = class_name
        self.name = node.name
        self.qualname = f"{class_name}.{node.name}" if class_name else node.name
        self.calls: list[CallSite] = [
            CallSite(chain=chain, lineno=call.lineno, node=call)
            for call, chain in _iter_calls(node)
        ]

    @property
    def full_qualname(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    def __repr__(self) -> str:
        return f"<FunctionInfo {self.full_qualname}>"


class ClassInfo:
    """Type facts about one class: methods, attribute types, lock attrs."""

    def __init__(self, module: "SourceModule", node: ast.ClassDef):
        self.module = module
        self.node = node
        self.name = node.name
        self.bases = tuple(
            base.id for base in node.bases if isinstance(base, ast.Name)
        )
        self.methods: dict[str, FunctionInfo] = {}
        #: attribute name -> class name it is constructed/annotated with.
        self.attr_types: dict[str, str] = {}
        #: attribute name -> the __init__ parameter it aliases
        #: (``self.on_complete = on_complete``), used to bind callbacks
        #: passed at construction sites.
        self.param_attr_aliases: dict[str, str] = {}
        #: attribute name -> bound methods any caller passes for it
        #: (``Controller(..., on_complete=self._on_complete)``).
        self.callback_targets: dict[str, list[FunctionInfo]] = {}
        #: attribute name -> threading factory name ("Lock", "RLock", ...)
        self.lock_attrs: dict[str, str] = {}
        #: attribute name -> string literal passed to traced(<lock>, name)
        self.traced_names: dict[str, str] = {}


class SourceModule:
    """One parsed source file."""

    def __init__(self, name: str, path: Path, source: str):
        self.name = name
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self.waivers: dict[int, Waiver] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _WAIVER_RE.search(line)
            if match:
                rules = tuple(
                    rule.strip() for rule in match.group(1).split(",") if rule.strip()
                )
                self.waivers[lineno] = Waiver(
                    rules=rules,
                    justification=(match.group("why") or "").strip(),
                    lineno=lineno,
                )

    def waiver_for(self, rule: str, lineno: int) -> Waiver | None:
        """A waiver covers a finding on its own line or the line below it
        (standalone comment directly above the flagged statement)."""
        for candidate_line in (lineno, lineno - 1):
            waiver = self.waivers.get(candidate_line)
            if waiver is not None and rule in waiver.rules:
                waiver.used = True
                return waiver
        return None


def _attr_chain(expr: ast.expr) -> tuple[str, ...] | None:
    """``self.store.kv.put`` -> ("self", "store", "kv", "put"); a chain
    rooted in a call/subscript keeps a ``"<expr>"`` placeholder root."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("<expr>")
    return tuple(reversed(parts))


def _iter_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.Call, tuple[str, ...]]]:
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            continue  # nested defs are indexed separately
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain:
                yield node, chain


def _constructed_class(value: ast.expr) -> str | None:
    """The class name constructed by ``value`` if it is (or wraps) a
    ``ClassName(...)`` call — sees through ``traced(ClassName(), ...)``."""
    if not isinstance(value, ast.Call):
        return None
    chain = _attr_chain(value.func)
    if chain is None:
        return None
    name = chain[-1]
    if name[:1].isupper():
        return name
    for arg in value.args:
        inner = _constructed_class(arg)
        if inner is not None:
            return inner
    return None


def _lock_factory(value: ast.expr) -> str | None:
    """``threading.RLock()`` (possibly wrapped in ``traced(...)``) -> "RLock"."""
    if not isinstance(value, ast.Call):
        return None
    chain = _attr_chain(value.func)
    if chain and chain[-1] in _LOCK_FACTORIES:
        return chain[-1]
    for arg in value.args:
        inner = _lock_factory(arg)
        if inner is not None:
            return inner
    return None


def _traced_name(value: ast.expr) -> str | None:
    """The name literal of a ``traced(<lock>, "Class.attr")`` wrapper."""
    if not isinstance(value, ast.Call):
        return None
    chain = _attr_chain(value.func)
    if chain and chain[-1] == "traced" and len(value.args) >= 2:
        name = value.args[1]
        if isinstance(name, ast.Constant) and isinstance(name.value, str):
            return name.value
    return None


class AnalysisIndex:
    """All modules, classes and functions of the analyzed tree."""

    def __init__(self, modules: list[SourceModule]):
        self.modules: dict[str, SourceModule] = {m.name: m for m in modules}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: list[FunctionInfo] = []
        self._module_functions: dict[tuple[str, str], FunctionInfo] = {}
        self._functions_by_name: dict[str, list[FunctionInfo]] = {}
        for module in modules:
            self._index_module(module)
        self._infer_attr_types()
        self._bind_callbacks()

    # -- construction ---------------------------------------------------

    def _index_module(self, module: SourceModule) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(module, node, None)
                self._register(info)
                self._module_functions[(module.name, node.name)] = info
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(module, node)
                # Last definition wins on (unlikely) cross-module name
                # collisions; fine for heuristics.
                self.classes[cls.name] = cls
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(module, item, cls.name)
                        cls.methods[item.name] = info
                        self._register(info)
                    elif isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        annotated = _annotation_class(item.annotation)
                        if annotated:
                            cls.attr_types[item.target.id] = annotated

    def _register(self, info: FunctionInfo) -> None:
        self.functions.append(info)
        self._functions_by_name.setdefault(info.name, []).append(info)

    def _infer_attr_types(self) -> None:
        """Scan every method for ``self.attr = <ClassName>(...)`` /
        lock-factory assignments and annotated ``self.attr: T`` targets."""
        for cls in self.classes.values():
            for method in cls.methods.values():
                param_types: dict[str, str] = {}
                param_names: set[str] = set()
                for arg in (
                    method.node.args.posonlyargs
                    + method.node.args.args
                    + method.node.args.kwonlyargs
                ):
                    param_names.add(arg.arg)
                    annotated = _annotation_class(arg.annotation)
                    if annotated:
                        param_types[arg.arg] = annotated
                for node in ast.walk(method.node):
                    targets: list[ast.expr] = []
                    value: ast.expr | None = None
                    if isinstance(node, ast.Assign):
                        targets, value = node.targets, node.value
                    elif isinstance(node, ast.AnnAssign) and node.target is not None:
                        targets = [node.target]
                        annotated = _annotation_class(node.annotation)
                        if (
                            annotated
                            and isinstance(node.target, ast.Attribute)
                            and isinstance(node.target.value, ast.Name)
                            and node.target.value.id == "self"
                        ):
                            cls.attr_types.setdefault(node.target.attr, annotated)
                        value = node.value
                    if value is None:
                        continue
                    for target in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        factory = _lock_factory(value)
                        if factory is not None:
                            cls.lock_attrs.setdefault(target.attr, factory)
                            traced_name = _traced_name(value)
                            if traced_name is not None:
                                cls.traced_names[target.attr] = traced_name
                            continue
                        constructed = _constructed_class(value)
                        if constructed is not None and constructed in self.classes:
                            cls.attr_types.setdefault(target.attr, constructed)
                            continue
                        # ``self.store = store`` where the parameter carries
                        # a class annotation.
                        if isinstance(value, ast.Name) and value.id in param_types:
                            cls.attr_types.setdefault(
                                target.attr, param_types[value.id]
                            )
                        if (
                            method.name == "__init__"
                            and isinstance(value, ast.Name)
                            and value.id in param_names
                        ):
                            cls.param_attr_aliases.setdefault(
                                target.attr, value.id
                            )

    def _bind_callbacks(self) -> None:
        """Bind ``kw=self._method`` arguments at constructor call sites to
        the attribute the constructed class aliases that parameter into,
        so ``self.on_complete(...)`` resolves to the injected methods.
        (This edge class is exactly what the runtime lock-order recorder
        first caught missing from the static graph.)"""
        for function in self.functions:
            caller_cls = self.class_of(function)
            for call in function.calls:
                name = call.chain[-1]
                if not (name[:1].isupper() and name in self.classes):
                    continue
                target_cls = self.classes[name]
                param_to_attr = {
                    param: attr
                    for attr, param in target_cls.param_attr_aliases.items()
                }
                for kw in call.node.keywords:
                    if kw.arg is None or kw.arg not in param_to_attr:
                        continue
                    bound: FunctionInfo | None = None
                    if isinstance(kw.value, ast.Attribute):
                        chain = _attr_chain(kw.value)
                        if (
                            chain
                            and len(chain) == 2
                            and chain[0] == "self"
                            and caller_cls is not None
                        ):
                            bound = self.method_of(caller_cls.name, chain[1])
                    elif isinstance(kw.value, ast.Name):
                        candidates = self._unique_by_name(
                            kw.value.id, methods=False
                        )
                        bound = candidates[0] if candidates else None
                    if bound is not None:
                        target_cls.callback_targets.setdefault(
                            param_to_attr[kw.arg], []
                        ).append(bound)

    # -- resolution -----------------------------------------------------

    def class_of(self, info: FunctionInfo) -> ClassInfo | None:
        if info.class_name is None:
            return None
        return self.classes.get(info.class_name)

    def method_of(self, class_name: str, method: str) -> FunctionInfo | None:
        """Look up a method on a class or (transitively) its named bases."""
        seen: set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            stack.extend(cls.bases)
        return None

    def resolve_chain_type(self, owner: ClassInfo | None, chain: tuple[str, ...]) -> str | None:
        """Walk ``("self", "store", "kv")`` through attribute-type facts,
        returning the class name the chain denotes (or None)."""
        if not chain or chain[0] != "self" or owner is None:
            return None
        current = owner
        for attr in chain[1:]:
            type_name = current.attr_types.get(attr)
            if type_name is None:
                return None
            next_cls = self.classes.get(type_name)
            if next_cls is None:
                return type_name if attr == chain[-1] else None
            current = next_cls
        return current.name

    def resolve_call(
        self, caller: FunctionInfo, call: CallSite
    ) -> tuple[FunctionInfo, ...]:
        """Resolve a call site to callee definitions (possibly empty)."""
        chain = call.chain
        terminal = call.terminal
        # ClassName(...) as constructor (checked first: a bare class name
        # is also a "plain name" but must bind to __init__).
        if terminal[:1].isupper() and terminal in self.classes:
            ctor = self.method_of(terminal, "__init__")
            return (ctor,) if ctor is not None else ()
        # Plain name: local module function, else unique global function.
        if len(chain) == 1:
            local = self._module_functions.get((caller.module.name, terminal))
            if local is not None:
                return (local,)
            return self._unique_by_name(terminal, methods=False)
        # self.method()
        if chain[0] == "self" and len(chain) == 2 and caller.class_name:
            resolved = self.method_of(caller.class_name, terminal)
            if resolved is not None:
                return (resolved,)
            # A callback attribute: every method callers inject for it.
            owner = self.classes.get(caller.class_name)
            if owner is not None and terminal in owner.callback_targets:
                return tuple(owner.callback_targets[terminal])
        # Typed chain: self.attr[.attr...].method()
        if chain[0] == "self" and len(chain) >= 3:
            type_name = self.resolve_chain_type(self.class_of(caller), chain[:-1])
            if type_name is not None:
                resolved = self.method_of(type_name, terminal)
                if resolved is not None:
                    return (resolved,)
                return ()  # typed, but the type has no such method: builtin
        # ClassName.method()
        if len(chain) == 2 and chain[0] in self.classes:
            resolved = self.method_of(chain[0], terminal)
            if resolved is not None:
                return (resolved,)
        # Unique-name fallback (never for ambiguous collection-ish names).
        return self._unique_by_name(terminal, methods=True)

    def _unique_by_name(self, name: str, methods: bool) -> tuple[FunctionInfo, ...]:
        if name in AMBIGUOUS_METHOD_NAMES or name.startswith("__"):
            return ()
        candidates = self._functions_by_name.get(name, [])
        if not methods:
            candidates = [c for c in candidates if c.class_name is None]
        if len(candidates) == 1:
            return (candidates[0],)
        return ()

    # -- traversal helpers ----------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions)


def _annotation_class(annotation: ast.expr | None) -> str | None:
    """The class name an annotation denotes, unwrapping Optional-ish
    string annotations like ``"TropicStore | None"``."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name) and annotation.id[:1].isupper():
        return annotation.id
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.split("|")[0].strip().strip('"')
        text = text.split(".")[-1]
        if text[:1].isupper() and text.isidentifier():
            return text
    if isinstance(annotation, ast.BinOp):  # X | None
        return _annotation_class(annotation.left)
    return None


def load_modules(root: Path, package: str = "repro") -> list[SourceModule]:
    """Parse every ``*.py`` under ``root`` into :class:`SourceModule`."""
    modules: list[SourceModule] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        parts = [package] + list(relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        modules.append(SourceModule(name, path, path.read_text(encoding="utf-8")))
    return modules


def load_index(root: Path | str, package: str = "repro") -> AnalysisIndex:
    """Build the :class:`AnalysisIndex` for a source tree."""
    return AnalysisIndex(load_modules(Path(root), package))


def index_from_sources(sources: dict[str, str]) -> AnalysisIndex:
    """Build an index from in-memory module sources (fixture helper used
    by the checker tests: ``{"repro.fix.mod": "class A: ..."}``)."""
    return AnalysisIndex(
        [
            SourceModule(name, Path(f"/fixture/{name.replace('.', '/')}.py"), text)
            for name, text in sources.items()
        ]
    )
