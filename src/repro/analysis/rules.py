"""Rule configuration: what counts as blocking, funnels, the txn machine.

This module is deliberately plain data so the invariant catalog in
``docs/development.md#the-invariant-catalog`` and the checker
implementations cannot drift silently: tests assert every rule id here
is documented there.
"""

from __future__ import annotations

#: Every rule id the analyzer can emit (checkers + lock graph).
ALL_RULES = (
    "lock-order-cycle",
    "lock-self-deadlock",
    "lock-name-mismatch",
    "blocking-under-lock",
    "cow-funnel",
    "kv-write-outside-funnel",
    "txn-state-direct-assign",
    "txn-state-invalid-transition",
    "transient-swallowed",
    "wound-without-decision",
    "ack-before-flush",
    "waiver-missing-justification",
)

# ---------------------------------------------------------------------------
# blocking-under-lock
# ---------------------------------------------------------------------------

#: Classes whose (public) methods charge coordination round-trips — the
#: primitive "this call can block on the network/quorum" set.  Anything
#: that transitively reaches one through the resolved call graph is
#: itself considered blocking.
COORDINATION_CLASSES = frozenset(
    {"CoordinationClient", "CoordinationEnsemble"}
)

#: Pattern fallback for chains the resolver cannot type: a terminal RPC
#: name called on a base strongly associated with the coordination layer
#: (``self.client.get_data(...)``, ``kv.put(...)``).
RPC_TERMINALS = frozenset(
    {
        "get",
        "get_data",
        "set",
        "put",
        "put_serialized",
        "put_many",
        "delete",
        "delete_if_exists",
        "create",
        "exists",
        "get_children",
        "multi",
        "upsert",
        "ensure_path",
        "heartbeat",
        "reconnect",
        "watch",
        "watch_children",
        "unwatch",
        "remove_data_watch",
        "keys",
        "items",
        "take",
        "take_many",
        "ack",
        "ack_many",
        "poll",
        "poll_many",
        "flush",
        "load_checkpoint",
        "applied_entries",
        "applied_records",
        "applied_seq",
        "save_transaction",
        "load_transaction",
        "save_checkpoint_incremental",
        "truncate_applied",
        "signalled",
    }
)

#: Chain segments that mark the receiver as a coordination-layer object.
RPC_BASES = frozenset(
    {
        "client",
        "kv",
        "ensemble",
        "store",
        "input_queue",
        "phy_queue",
        "queue",
        "signals",
        "election",
        "election_client",
        "twopc",
    }
)

#: Terminal names that block the calling thread irrespective of receiver
#: (scheduler waits, thread joins, time/clock sleeps, txn waits).
BLOCKING_TERMINALS = frozenset({"sleep", "wait", "wait_for", "join"})

#: Modules exempt from blocking-under-lock: the testing/chaos harnesses
#: exercise faults from a single driver thread, and the analyzer itself.
BLOCKING_EXEMPT_MODULE_PREFIXES = ("repro.testing", "repro.analysis")

# ---------------------------------------------------------------------------
# cow-funnel
# ---------------------------------------------------------------------------

#: Node-mutating attribute accesses that are only safe on a subtree
#: claimed through ``get_for_write``/``promote_subtree``.
NODE_MUTATORS = frozenset(
    {"add_child", "remove_child", "promote_subtree", "set"}
)

#: Read-funnel calls that yield a *shared* (possibly snapshot-visible)
#: node: mutating their result bypasses copy-on-write ownership.
MODEL_READ_CALLS = frozenset({"get", "node", "ensure"})

#: Mutating methods on a shared node's ``attrs``/``children`` dicts;
#: plain reads (``values()``, ``items()``, ``get()``) are snapshot-safe.
MUTATING_CONTAINER_METHODS = frozenset(
    {"update", "pop", "popitem", "clear", "setdefault", "__setitem__", "__delitem__"}
)

#: Modules allowed to touch nodes directly: the data model implements
#: the funnel, and the checkpoint reader materialises fresh trees that
#: no snapshot can share yet.
COW_EXEMPT_MODULE_PREFIXES = (
    "repro.datamodel",
    "repro.analysis",
)

# ---------------------------------------------------------------------------
# kv-write-outside-funnel
# ---------------------------------------------------------------------------

#: KVStore write methods (group-commit participants).
KV_WRITE_TERMINALS = frozenset({"put", "put_serialized", "delete"})

#: Modules that *are* the persistence funnel: TropicStore and the 2PC
#: decision log own their documents; the coordination package is the
#: store implementation itself.
KV_FUNNEL_MODULE_PREFIXES = (
    "repro.core.persistence",
    "repro.core.twopc",
    "repro.coordination",
    "repro.analysis",
)

# ---------------------------------------------------------------------------
# txn-state machine (docs/development.md#the-invariant-catalog)
# ---------------------------------------------------------------------------

#: The documented transaction state machine: STARTED -> PREPARING ->
#: PREPARED -> terminal, with acceptance/deferral in front.  A guarded
#: ``mark(TransactionState.B)`` under an ``if txn.state is
#: TransactionState.A`` test must be one of these edges.
TXN_TRANSITIONS = frozenset(
    {
        ("INITIALIZED", "ACCEPTED"),
        ("INITIALIZED", "ABORTED"),
        ("INITIALIZED", "FAILED"),
        ("ACCEPTED", "DEFERRED"),
        ("ACCEPTED", "STARTED"),
        ("ACCEPTED", "PREPARING"),
        ("ACCEPTED", "PREPARED"),
        ("ACCEPTED", "ABORTED"),
        ("ACCEPTED", "FAILED"),
        ("DEFERRED", "ACCEPTED"),
        ("DEFERRED", "STARTED"),
        ("DEFERRED", "PREPARING"),
        ("DEFERRED", "ABORTED"),
        ("PREPARING", "PREPARED"),
        ("PREPARING", "STARTED"),
        ("PREPARING", "ABORTED"),
        ("PREPARED", "STARTED"),
        ("PREPARED", "COMMITTED"),
        ("PREPARED", "ABORTED"),
        ("STARTED", "COMMITTED"),
        ("STARTED", "ABORTED"),
        ("STARTED", "FAILED"),
    }
)

#: Functions allowed to assign ``.state`` directly (the machine's own
#: primitives and deserialisation).
TXN_STATE_ASSIGN_ALLOWED = frozenset(
    {"Transaction.mark", "Transaction.from_dict"}
)

# ---------------------------------------------------------------------------
# wound-without-decision
# ---------------------------------------------------------------------------

#: Function-name marker selecting wound-wait handlers (anything whose
#: name mentions wounding participates in the abort-a-prepare protocol).
WOUND_FUNCTION_MARKER = "wound"

#: Lock-release terminals that complete a wound: once these run, the
#: victim's prepare-phase locks are gone.
WOUND_RELEASE_TERMINALS = frozenset({"release_all"})

#: The durable-decision call that must precede any release in a wound
#: handler — terminal name plus the chain segment marking the receiver
#: as the 2PC decision log.
WOUND_DECISION_TERMINAL = "decide"
WOUND_DECISION_BASES = frozenset({"twopc"})

#: Modules exempt from wound-without-decision: test harnesses wound
#: through spies, and the analyzer itself.
WOUND_EXEMPT_MODULE_PREFIXES = ("repro.testing", "repro.analysis")

# ---------------------------------------------------------------------------
# ack-before-flush
# ---------------------------------------------------------------------------

#: Post-durability effect calls of the pipelined write path: inputQ
#: acknowledgements, phyQ dispatches and 2PC fan-out.  Each presupposes
#: that the state it reveals (terminal documents, STARTED records,
#: decision records) is already durable, so within a function the effect
#: must be *dominated* by a covering flush — or carry a waiver naming
#: the out-of-function flush that covers it.
ACK_EFFECT_TERMINALS = frozenset({"ack", "ack_many"})
ACK_EFFECT_BASES = frozenset({"input_queue"})

DISPATCH_EFFECT_TERMINALS = frozenset({"put", "put_many"})
DISPATCH_EFFECT_BASES = frozenset({"phy_queue"})

FANOUT_EFFECT_TERMINALS = frozenset({"_send_peer", "_send_outbound"})

#: Calls that make the pending window/batch durable before the effect:
#: a store/kv ``flush``, the pipeline's merged-window commit, or the
#: controller's explicit window drain.
DURABLE_FLUSH_TERMINALS = frozenset({"flush", "commit_batches"})
DURABLE_FLUSH_BASES = frozenset({"store", "kv", "_pipeline"})
DURABLE_DRAIN_TERMINALS = frozenset({"_drain_pipeline"})

#: Modules exempt from ack-before-flush: the coordination layer
#: implements the queue primitives themselves, harnesses drive faults
#: single-threaded, and the analyzer is not a protocol participant.
ACK_EXEMPT_MODULE_PREFIXES = (
    "repro.coordination",
    "repro.testing",
    "repro.analysis",
)

# ---------------------------------------------------------------------------
# transient-swallowed
# ---------------------------------------------------------------------------

#: The PR 6 TRANSIENT taxonomy plus the catch-alls that hide it.
SWALLOWABLE_EXCEPTION_NAMES = frozenset(
    {
        "Exception",
        "BaseException",
        "SessionExpiredError",
        "QuorumLostError",
        "NotLeaderError",
        "ConnectionError",
    }
)

#: Calls in a handler that mean the error is being *classified* (or
#: handled by the documented TRANSIENT response — healing/re-entering
#: the coordination session) rather than swallowed.
CLASSIFIER_CALLS = frozenset(
    {"classify", "is_retryable", "record_failure", "_recover_session", "_heal_sessions"}
)
