"""Pluggable invariant checkers over the analysis index.

Each checker is a function ``(index) -> list[Finding]``; ``run_checkers``
runs the requested subset, attaches inline waivers
(``# repro: allow(<rule>) -- <justification>``) and flags waivers with
no written justification.  Rule semantics, motivations and waiver
guidance live in ``docs/development.md#the-invariant-catalog``.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

from repro.analysis import rules
from repro.analysis.core import (
    AnalysisIndex,
    Finding,
    _attr_chain,
)
from repro.analysis.lockgraph import LockAnalysis, _calls_in

RULE_BLOCKING = "blocking-under-lock"
RULE_COW = "cow-funnel"
RULE_KV = "kv-write-outside-funnel"
RULE_STATE_ASSIGN = "txn-state-direct-assign"
RULE_STATE_EDGE = "txn-state-invalid-transition"
RULE_SWALLOW = "transient-swallowed"
RULE_WOUND = "wound-without-decision"
RULE_ACK = "ack-before-flush"
RULE_WAIVER = "waiver-missing-justification"


# ---------------------------------------------------------------------------
# blocking-under-lock
# ---------------------------------------------------------------------------


def _is_rpc_pattern(chain: tuple[str, ...]) -> bool:
    return chain[-1] in rules.RPC_TERMINALS and any(
        segment in rules.RPC_BASES for segment in chain[:-1]
    )


def _blocking_closure(index: AnalysisIndex) -> dict[int, str]:
    """id(function) -> short reason, for every function that may issue a
    coordination RPC or block, directly or transitively."""
    reasons: dict[int, str] = {}
    for function in index.iter_functions():
        if function.class_name in rules.COORDINATION_CLASSES:
            if not function.name.startswith("_"):
                reasons[id(function)] = f"coordination op {function.qualname}"

    changed = True
    while changed:
        changed = False
        for function in index.iter_functions():
            if id(function) in reasons:
                continue
            for call in function.calls:
                reason = None
                if _is_rpc_pattern(call.chain):
                    reason = f"coordination op {'.'.join(call.chain)}"
                else:
                    for callee in index.resolve_call(function, call):
                        if id(callee) in reasons:
                            reason = f"{callee.qualname} ({reasons[id(callee)]})"
                            break
                if reason is not None:
                    reasons[id(function)] = reason
                    changed = True
                    break
    return reasons


def check_blocking_under_lock(index: AnalysisIndex) -> list[Finding]:
    """Coordination RPCs, queue waits and sleeps must not run while an
    in-process lock is held (rule ``blocking-under-lock``)."""
    lock_analysis = LockAnalysis(index)
    blocking = _blocking_closure(index)
    findings: list[Finding] = []
    for acq in lock_analysis.graph.acquisitions:
        module = acq.function.module
        if module.name.startswith(rules.BLOCKING_EXEMPT_MODULE_PREFIXES):
            continue
        owner_class, _, lock_attr = acq.lock.partition(".")
        if owner_class in rules.COORDINATION_CLASSES:
            # The ensemble IS the simulated coordination service; its lock
            # serializing its own ops is the design, not a hold-across-RPC.
            continue
        reasons: list[str] = []
        for call in _calls_in(acq.body):
            if call.terminal in rules.BLOCKING_TERMINALS:
                if len(call.chain) >= 2 and call.chain[-2] == lock_attr:
                    # cond.wait()/wait_for() on the held Condition releases
                    # the lock while blocked — the canonical pattern.
                    continue
                reasons.append(f"{'.'.join(call.chain)} (blocking wait)")
                continue
            if _is_rpc_pattern(call.chain):
                reasons.append(f"{'.'.join(call.chain)} (coordination op)")
                continue
            for callee in index.resolve_call(acq.function, call):
                if id(callee) in blocking:
                    reasons.append(f"{callee.qualname} -> {blocking[id(callee)]}")
                    break
        if not reasons:
            continue
        unique = sorted(set(reasons))
        findings.append(
            Finding(
                rule=RULE_BLOCKING,
                module=module.name,
                qualname=acq.function.qualname,
                lineno=acq.lineno,
                message=(
                    f"holds {acq.lock} across blocking calls: "
                    + "; ".join(unique[:5])
                    + (f" (+{len(unique) - 5} more)" if len(unique) > 5 else "")
                ),
                detail=acq.lock,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# cow-funnel
# ---------------------------------------------------------------------------


def _is_model_chain(chain: tuple[str, ...]) -> bool:
    """Does the receiver chain look like a DataModel (``model``,
    ``self.model``, ``view`` from a clone, ...)?"""
    return any(seg in ("model", "view", "candidate") for seg in chain[:-1])


def check_cow_funnel(index: AnalysisIndex) -> list[Finding]:
    """Nodes read from a ``DataModel`` (``model.get(...)``/``ctx.node``)
    may be shared with O(1) snapshots; mutating them outside the
    ``get_for_write``/``promote_subtree`` funnel is the PR 5 ownership
    hole (rule ``cow-funnel``)."""
    findings: list[Finding] = []
    for function in index.iter_functions():
        module = function.module
        if module.name.startswith(rules.COW_EXEMPT_MODULE_PREFIXES):
            continue
        shared_vars: set[str] = set()
        owned_vars: set[str] = set()
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                chain = _attr_chain(node.value.func)
                if chain is None:
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if chain[-1] in ("get_for_write",):
                        owned_vars.add(target.id)
                        shared_vars.discard(target.id)
                    elif chain[-1] in rules.MODEL_READ_CALLS and _is_model_chain(chain):
                        if target.id not in owned_vars:
                            shared_vars.add(target.id)
        if not shared_vars:
            continue
        for node in ast.walk(function.node):
            flagged: tuple[str, str] | None = None
            # node.attrs[...] = / node.attrs.update(...) / node.children[...] =
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    chain
                    and len(chain) >= 2
                    and chain[0] in shared_vars
                    and (
                        chain[-1] in rules.NODE_MUTATORS
                        or (
                            len(chain) >= 3
                            and chain[1] in ("attrs", "children")
                            and chain[-1] in rules.MUTATING_CONTAINER_METHODS
                        )
                    )
                ):
                    flagged = (chain[0], ".".join(chain))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    chain = _attr_chain(target) if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) else None
                    if (
                        isinstance(base, ast.Name)
                        and base.id in shared_vars
                        and isinstance(target, (ast.Attribute, ast.Subscript))
                    ):
                        flagged = (base.id, ast.unparse(target))
                        break
            if flagged is not None:
                var, what = flagged
                findings.append(
                    Finding(
                        rule=RULE_COW,
                        module=module.name,
                        qualname=function.qualname,
                        lineno=node.lineno,
                        message=(
                            f"mutates {what} on node {var!r} obtained from a "
                            f"shared model read; claim the subtree with "
                            f"get_for_write first"
                        ),
                        detail=f"{function.qualname}.{var}",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# kv-write-outside-funnel
# ---------------------------------------------------------------------------


def check_kv_writes(index: AnalysisIndex) -> list[Finding]:
    """``KVStore`` writes outside the persistence/group-commit funnel
    (rule ``kv-write-outside-funnel``): new document namespaces must be
    owned by a store-layer module or carry a waiver."""
    findings: list[Finding] = []
    for function in index.iter_functions():
        module = function.module
        if module.name.startswith(rules.KV_FUNNEL_MODULE_PREFIXES):
            continue
        for call in function.calls:
            chain = call.chain
            if chain[-1] not in rules.KV_WRITE_TERMINALS:
                continue
            is_kv = "kv" in chain[:-1]
            if not is_kv:
                resolved = index.resolve_call(function, call)
                is_kv = any(r.class_name == "KVStore" for r in resolved)
            if not is_kv:
                continue
            findings.append(
                Finding(
                    rule=RULE_KV,
                    module=module.name,
                    qualname=function.qualname,
                    lineno=call.lineno,
                    message=(
                        f"raw KVStore write {'.'.join(chain)} outside the "
                        f"persistence funnel (TropicStore / TwoPCLog)"
                    ),
                    detail=f"{function.qualname}.{'.'.join(chain)}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# txn-state discipline
# ---------------------------------------------------------------------------


def _state_name(expr: ast.expr) -> str | None:
    """``TransactionState.PREPARED`` -> "PREPARED"."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "TransactionState"
    ):
        return expr.attr
    return None


def _guard_states(test: ast.expr) -> set[str]:
    """States asserted by an ``if`` test: ``x.state is TransactionState.A``
    or ``x.state in (A, B)`` (positive comparisons only)."""
    states: set[str] = set()
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        left = node.left
        op = node.ops[0]
        if not (isinstance(left, ast.Attribute) and left.attr == "state"):
            continue
        comparator = node.comparators[0]
        if isinstance(op, (ast.Is, ast.Eq)):
            name = _state_name(comparator)
            if name:
                states.add(name)
        elif isinstance(op, ast.In) and isinstance(comparator, (ast.Tuple, ast.List)):
            for element in comparator.elts:
                name = _state_name(element)
                if name:
                    states.add(name)
    return states


def check_txn_state(index: AnalysisIndex) -> list[Finding]:
    """Transaction state discipline: all transitions through ``mark()``
    (rule ``txn-state-direct-assign``), and state-guarded transitions
    must follow the documented machine (rule
    ``txn-state-invalid-transition``)."""
    findings: list[Finding] = []
    for function in index.iter_functions():
        if function.qualname in rules.TXN_STATE_ASSIGN_ALLOWED:
            continue
        if function.module.name.startswith("repro.analysis"):
            continue
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "state"
                        and _state_name(node.value) is not None
                    ):
                        findings.append(
                            Finding(
                                rule=RULE_STATE_ASSIGN,
                                module=function.module.name,
                                qualname=function.qualname,
                                lineno=node.lineno,
                                message=(
                                    f"direct assignment {ast.unparse(target)} = "
                                    f"TransactionState.{_state_name(node.value)}; "
                                    f"transitions must go through Transaction.mark()"
                                ),
                                detail=f"{ast.unparse(target)}",
                            )
                        )

        def walk(stmts: Iterable[ast.stmt], guards: frozenset[str]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.If):
                    asserted = _guard_states(stmt.test)
                    body_guards = frozenset(asserted) if asserted else guards
                    walk(stmt.body, body_guards)
                    walk(stmt.orelse, guards)
                    continue
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "mark"
                        and node.args
                    ):
                        to_state = _state_name(node.args[0])
                        if to_state is None:
                            continue
                        for from_state in guards:
                            if (from_state, to_state) not in rules.TXN_TRANSITIONS:
                                findings.append(
                                    Finding(
                                        rule=RULE_STATE_EDGE,
                                        module=function.module.name,
                                        qualname=function.qualname,
                                        lineno=node.lineno,
                                        message=(
                                            f"transition {from_state} -> {to_state} "
                                            f"is not in the documented state machine"
                                        ),
                                        detail=f"{from_state}->{to_state}",
                                    )
                                )
                for body in _stmt_bodies(stmt):
                    walk(body, guards)

        walk(function.node.body, frozenset())
    return findings


def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.If)):
        return bodies
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list):
            bodies.append(value)
    if isinstance(stmt, ast.Try):
        for handler in stmt.handlers:
            bodies.append(handler.body)
    return bodies


# ---------------------------------------------------------------------------
# transient-swallowed
# ---------------------------------------------------------------------------


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return {"Exception"}  # bare except
    names: set[str] = set()
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def check_transient_swallowed(index: AnalysisIndex) -> list[Finding]:
    """Inside a retry loop (``while``), catching the TRANSIENT taxonomy
    (or ``Exception``) and continuing without re-raising or classifying
    silently converts "provably retryable" into "silently dropped"
    (rule ``transient-swallowed``)."""
    findings: list[Finding] = []
    for function in index.iter_functions():
        if function.module.name.startswith(("repro.analysis", "repro.testing")):
            continue

        def visit(stmts: Iterable[ast.stmt], in_while: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Try) and in_while:
                    for handler in stmt.handlers:
                        caught = _handler_names(handler)
                        if not (caught & rules.SWALLOWABLE_EXCEPTION_NAMES):
                            continue
                        body_calls = {
                            site.terminal for site in _calls_in(handler.body)
                        }
                        has_raise = any(
                            isinstance(node, ast.Raise)
                            for node in ast.walk(handler)
                        )
                        if has_raise or (body_calls & rules.CLASSIFIER_CALLS):
                            continue
                        findings.append(
                            Finding(
                                rule=RULE_SWALLOW,
                                module=function.module.name,
                                qualname=function.qualname,
                                lineno=handler.lineno,
                                message=(
                                    f"except {'/'.join(sorted(caught))} inside a "
                                    f"retry loop swallows the TRANSIENT taxonomy "
                                    f"without re-raising or classifying"
                                ),
                                detail=f"{function.qualname}:{'/'.join(sorted(caught))}",
                            )
                        )
                nested_in_while = in_while or isinstance(stmt, ast.While)
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for field_name in ("body", "orelse", "finalbody"):
                    value = getattr(stmt, field_name, None)
                    if isinstance(value, list):
                        visit(value, nested_in_while)
                if isinstance(stmt, ast.Try):
                    for handler in stmt.handlers:
                        visit(handler.body, in_while)

        visit(function.node.body, False)
    return findings


# ---------------------------------------------------------------------------
# wound-without-decision
# ---------------------------------------------------------------------------


def check_wound_decision_order(index: AnalysisIndex) -> list[Finding]:
    """A wound handler aborts a prepare-phase lock holder; the
    presumed-abort contract requires the durable abort decision
    (``twopc.decide``) *before* any lock release.  Releasing first opens
    a crash window where the victim's locks are gone but its prepared
    slices have no decision to resolve against — a successor could
    re-admit conflicting work against an undecided transaction (rule
    ``wound-without-decision``; statement order within the handler)."""
    findings: list[Finding] = []
    for function in index.iter_functions():
        if function.module.name.startswith(rules.WOUND_EXEMPT_MODULE_PREFIXES):
            continue
        if rules.WOUND_FUNCTION_MARKER not in function.name.lower():
            continue
        releases = [
            call
            for call in function.calls
            if call.terminal in rules.WOUND_RELEASE_TERMINALS
        ]
        if not releases:
            continue
        decide_lines = [
            call.lineno
            for call in function.calls
            if call.terminal == rules.WOUND_DECISION_TERMINAL
            and any(seg in rules.WOUND_DECISION_BASES for seg in call.chain[:-1])
        ]
        for release in releases:
            if any(line < release.lineno for line in decide_lines):
                continue
            findings.append(
                Finding(
                    rule=RULE_WOUND,
                    module=function.module.name,
                    qualname=function.qualname,
                    lineno=release.lineno,
                    message=(
                        f"{'.'.join(release.chain)} in wound handler "
                        f"{function.qualname} has no preceding twopc.decide: "
                        f"the abort decision must be durable before the "
                        f"victim's locks are released"
                    ),
                    detail=f"{function.qualname}:{'.'.join(release.chain)}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# ack-before-flush
# ---------------------------------------------------------------------------


def _effect_kind(call) -> str | None:
    """Classify a call as a post-durability effect of the write path."""
    if (
        call.terminal in rules.ACK_EFFECT_TERMINALS
        and any(seg in rules.ACK_EFFECT_BASES for seg in call.chain[:-1])
    ):
        return "inputQ ack"
    if (
        call.terminal in rules.DISPATCH_EFFECT_TERMINALS
        and any(seg in rules.DISPATCH_EFFECT_BASES for seg in call.chain[:-1])
    ):
        return "phyQ dispatch"
    if call.terminal in rules.FANOUT_EFFECT_TERMINALS:
        return "2PC fan-out"
    return None


def check_ack_before_flush(index: AnalysisIndex) -> list[Finding]:
    """Post-durability effects — inputQ acks, phyQ dispatches, 2PC
    fan-out — reveal state to other components (clients, workers, peer
    shards) and must therefore be *dominated by a covering flush*: every
    effect call in a function must be preceded, in statement order, by a
    store/kv ``flush``, the pipeline's merged-window ``commit_batches``,
    or an explicit ``_drain_pipeline`` (rule ``ack-before-flush``).
    Functions that run as post-flush callbacks (the pipeline's effect
    stage) or on recovery paths where the presupposed state is already
    durable carry inline waivers saying which flush covers them."""
    findings: list[Finding] = []
    for function in index.iter_functions():
        module = function.module
        if module.name.startswith(rules.ACK_EXEMPT_MODULE_PREFIXES):
            continue
        durable_lines = [
            call.lineno
            for call in function.calls
            if (
                call.terminal in rules.DURABLE_FLUSH_TERMINALS
                and any(seg in rules.DURABLE_FLUSH_BASES for seg in call.chain[:-1])
            )
            or call.terminal in rules.DURABLE_DRAIN_TERMINALS
        ]
        for call in function.calls:
            kind = _effect_kind(call)
            if kind is None:
                continue
            if any(line < call.lineno for line in durable_lines):
                continue
            findings.append(
                Finding(
                    rule=RULE_ACK,
                    module=module.name,
                    qualname=function.qualname,
                    lineno=call.lineno,
                    message=(
                        f"{kind} {'.'.join(call.chain)} in {function.qualname} "
                        f"has no preceding covering flush: the state it "
                        f"reveals may not be durable yet"
                    ),
                    detail=f"{function.qualname}:{'.'.join(call.chain)}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

CHECKERS: dict[str, Callable[[AnalysisIndex], list[Finding]]] = {
    "locks": lambda index: LockAnalysis(index).findings(),
    "blocking": check_blocking_under_lock,
    "cow": check_cow_funnel,
    "kv": check_kv_writes,
    "txn-state": check_txn_state,
    "swallow": check_transient_swallowed,
    "wound": check_wound_decision_order,
    "ack": check_ack_before_flush,
}


def run_checkers(
    index: AnalysisIndex, only: Iterable[str] | None = None
) -> list[Finding]:
    """Run the selected checkers, attach waivers, enforce justifications."""
    names = list(only) if only else list(CHECKERS)
    findings: list[Finding] = []
    for name in names:
        findings.extend(CHECKERS[name](index))
    for finding in findings:
        module = index.modules.get(finding.module)
        if module is not None:
            finding.waiver = module.waiver_for(finding.rule, finding.lineno)
    for finding in list(findings):
        if finding.waiver is not None and not finding.waiver.justification:
            findings.append(
                Finding(
                    rule=RULE_WAIVER,
                    module=finding.module,
                    qualname=finding.qualname,
                    lineno=finding.waiver.lineno,
                    message=(
                        f"waiver for {finding.rule} has no justification; write "
                        f"`# repro: allow({finding.rule}) -- <why it is safe>`"
                    ),
                    detail=finding.key,
                )
            )
    findings.sort(key=lambda f: (f.rule, f.module, f.lineno, f.detail))
    return findings
