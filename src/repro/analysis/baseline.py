"""Finding baseline: keyed acceptance list diffed on every run.

The baseline (``analysis/baseline.json``) holds the findings the repo
has explicitly accepted, each with a written justification.  The
analyzer exits non-zero on *drift in either direction*: a finding not
in the baseline (new violation) or a baseline entry no longer produced
(stale entry — the code was fixed, so the entry must be deleted).  The
file is serialised deterministically so the self-check test can assert
byte-for-byte reproducibility.  Preferred steady state: an **empty**
baseline, with the rare by-design finding waived inline next to the
code it describes (``# repro: allow(<rule>) -- <why>``); see
``docs/development.md#baselines-and-waivers``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The checked-in set of accepted findings, keyed by finding key."""

    entries: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(entries=dict(data.get("findings", {})))

    def serialize(self) -> str:
        payload = {
            "version": BASELINE_VERSION,
            "findings": {key: self.entries[key] for key in sorted(self.entries)},
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: Path | str) -> None:
        Path(path).write_text(self.serialize(), encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries: dict[str, dict[str, str]] = {}
        for finding in findings:
            if finding.waived:
                continue  # waived inline; the baseline only holds the rest
            entries[finding.key] = {
                "message": finding.message,
                "justification": "",
            }
        return cls(entries=entries)


@dataclass
class BaselineDiff:
    """Findings not in the baseline, and baseline entries not reproduced."""

    new: list[Finding]
    stale: list[str]
    missing_justification: list[str]

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale and not self.missing_justification


def diff_against_baseline(
    findings: list[Finding], baseline: Baseline
) -> BaselineDiff:
    produced = {f.key for f in findings if not f.waived}
    new = [f for f in findings if not f.waived and f.key not in baseline.entries]
    stale = sorted(key for key in baseline.entries if key not in produced)
    missing = sorted(
        key
        for key, entry in baseline.entries.items()
        if key in produced and not entry.get("justification", "").strip()
    )
    return BaselineDiff(new=new, stale=stale, missing_justification=missing)
