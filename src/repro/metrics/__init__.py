"""Statistics, collectors and report rendering for the evaluation harness."""

from repro.metrics.stats import cdf_points, percentile, summary
from repro.metrics.collectors import MemoryEstimator, ThroughputMeter, UtilizationSampler
from repro.metrics.report import ascii_table, format_cdf, format_series

__all__ = [
    "percentile",
    "cdf_points",
    "summary",
    "UtilizationSampler",
    "ThroughputMeter",
    "MemoryEstimator",
    "ascii_table",
    "format_series",
    "format_cdf",
]
