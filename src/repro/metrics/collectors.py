"""Runtime measurement collectors used by the benchmark harness."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any

from repro.common import retry
from repro.common.clock import Clock, RealClock
from repro.datamodel.tree import DataModel


@dataclass
class UtilizationSampler:
    """Samples a busy-seconds counter into per-interval busy fractions.

    This is the CPU-utilisation proxy behind Figure 4: the controller
    accumulates busy time while scheduling, simulating, checking
    constraints and cleaning up; the sampler turns that counter into a
    utilisation series over wall-clock intervals.
    """

    clock: Clock = field(default_factory=RealClock)
    samples: list[tuple[float, float]] = field(default_factory=list)
    _last_busy: float = 0.0
    _last_time: float | None = None

    def start(self, busy_seconds: float) -> None:
        self._last_busy = busy_seconds
        self._last_time = self.clock.now()
        self.samples = []

    def sample(self, busy_seconds: float, label: float | None = None) -> float:
        """Record one interval; returns the busy fraction for that interval."""
        now = self.clock.now()
        if self._last_time is None:
            self.start(busy_seconds)
            return 0.0
        elapsed = max(now - self._last_time, 1e-9)
        fraction = min(1.0, max(0.0, (busy_seconds - self._last_busy) / elapsed))
        self.samples.append((label if label is not None else now, fraction))
        self._last_busy = busy_seconds
        self._last_time = now
        return fraction

    def peak(self) -> float:
        return max((fraction for _, fraction in self.samples), default=0.0)

    def average(self) -> float:
        if not self.samples:
            return 0.0
        return sum(fraction for _, fraction in self.samples) / len(self.samples)


@dataclass
class ThroughputMeter:
    """Counts completed operations per second of wall time."""

    clock: Clock = field(default_factory=RealClock)
    started_at: float | None = None
    completed: int = 0

    def start(self) -> None:
        self.started_at = self.clock.now()
        self.completed = 0

    def record(self, count: int = 1) -> None:
        self.completed += count

    def throughput(self) -> float:
        if self.started_at is None:
            return 0.0
        elapsed = max(self.clock.now() - self.started_at, 1e-9)
        return self.completed / elapsed


@dataclass
class StoreIOSnapshot:
    """Point-in-time coordination-store I/O counters.

    Captures the write-path instrumentation added for the group-commit
    subsystem: total operations, read/write round-trips (a ``multi`` group
    commit counts as one write round-trip), multi-op batching volume, and
    bytes accepted by the store.  Use :meth:`delta` to measure a workload
    interval and :meth:`per_commit` to normalise by committed transactions.
    """

    ops: int = 0
    reads: int = 0
    writes: int = 0
    multi_commits: int = 0
    multi_sub_ops: int = 0
    bytes_written: int = 0
    #: Commit-pipeline counters (populated when a controller's pipeline
    #: stats are passed to :meth:`capture`): group-commit flushes, total
    #: and last/p99 per-flush latency, the in-flight window's high-water
    #: depth and the times the CPU stage stalled on a full window.
    flushes: int = 0
    flush_seconds: float = 0.0
    last_flush_seconds: float = 0.0
    p99_flush_seconds: float = 0.0
    window_high_water: int = 0
    window_stalls: int = 0

    @classmethod
    def capture(cls, ensemble: Any, pipeline: dict[str, Any] | None = None) -> "StoreIOSnapshot":
        """Snapshot the counters of a coordination ensemble, optionally
        folding in a controller's pipeline stats (``io_stats()["pipeline"]``)."""
        stats = ensemble.io_stats()
        pipe = pipeline or {}
        return cls(
            ops=stats["ops"],
            reads=stats["reads"],
            writes=stats["writes"],
            multi_commits=stats["multi_commits"],
            multi_sub_ops=stats["multi_sub_ops"],
            bytes_written=stats["bytes_written"],
            flushes=pipe.get("flushes", 0),
            flush_seconds=pipe.get("flush_seconds", 0.0),
            last_flush_seconds=pipe.get("last_flush_seconds", 0.0),
            p99_flush_seconds=pipe.get("p99_flush_seconds", 0.0),
            window_high_water=pipe.get("window_high_water", 0),
            window_stalls=pipe.get("stalls", 0),
        )

    def delta(self, since: "StoreIOSnapshot") -> "StoreIOSnapshot":
        return StoreIOSnapshot(
            ops=self.ops - since.ops,
            reads=self.reads - since.reads,
            writes=self.writes - since.writes,
            multi_commits=self.multi_commits - since.multi_commits,
            multi_sub_ops=self.multi_sub_ops - since.multi_sub_ops,
            bytes_written=self.bytes_written - since.bytes_written,
            flushes=self.flushes - since.flushes,
            flush_seconds=self.flush_seconds - since.flush_seconds,
            # Gauges, not counters: the interval inherits the endpoint's
            # latest observation.
            last_flush_seconds=self.last_flush_seconds,
            p99_flush_seconds=self.p99_flush_seconds,
            window_high_water=self.window_high_water,
            window_stalls=self.window_stalls - since.window_stalls,
        )

    def mean_flush_seconds(self) -> float:
        return self.flush_seconds / self.flushes if self.flushes else 0.0

    def per_commit(self, committed: int) -> dict[str, float]:
        denom = max(committed, 1)
        return {
            "ops_per_commit": self.ops / denom,
            "writes_per_commit": self.writes / denom,
            "bytes_per_commit": self.bytes_written / denom,
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "ops": self.ops,
            "reads": self.reads,
            "writes": self.writes,
            "multi_commits": self.multi_commits,
            "multi_sub_ops": self.multi_sub_ops,
            "bytes_written": self.bytes_written,
            "flushes": self.flushes,
            "flush_seconds": self.flush_seconds,
            "last_flush_seconds": self.last_flush_seconds,
            "mean_flush_seconds": self.mean_flush_seconds(),
            "p99_flush_seconds": self.p99_flush_seconds,
            "window_high_water": self.window_high_water,
            "window_stalls": self.window_stalls,
        }


@dataclass
class ResilienceCounters:
    """Fault-tolerance event counters (PR 6).

    One shared instance is threaded through the platform, queues, read
    replicas and the chaos harness; components bump plain attributes
    (single ``+=`` per event, GIL-atomic enough for counters) so the hot
    path never pays for locking.  Surfaced by ``metrics.report`` and the
    CLI ``stats`` command next to the controller counters.
    """

    #: Client-side resubmissions driven by a :class:`~repro.common.retry.
    #: RetryPolicy` (transient errors, or ambiguous ones under a token).
    retries: int = 0
    #: Tokened submissions answered from the token→txid ack index instead
    #: of creating a new transaction (the exactly-once dedup path).
    token_dedup_hits: int = 0
    #: Coordination sessions found expired and re-established.
    session_expiries: int = 0
    #: One-shot watches re-registered after a session loss (queue
    #: consumers and read replicas re-arming themselves).
    watch_rearms: int = 0
    #: Fleet views served from a replica (or partial) fallback because a
    #: shard leader was unreachable.
    degraded_reads: int = 0
    #: Errors absorbed by supervisor loops (service threads that must
    #: stay alive), bucketed by the retry taxonomy: the loop survives the
    #: error, but the taxonomy is *recorded*, never silently dropped.
    transient_absorbed: int = 0
    ambiguous_absorbed: int = 0
    permanent_absorbed: int = 0

    def record_failure(self, error: BaseException) -> str:
        """Classify and count an error absorbed by a keep-alive loop;
        returns the taxonomy class (``transient``/``ambiguous``/
        ``permanent``)."""
        kind = retry.classify(error)
        if kind == retry.TRANSIENT:
            self.transient_absorbed += 1
        elif kind == retry.AMBIGUOUS:
            self.ambiguous_absorbed += 1
        else:
            self.permanent_absorbed += 1
        return kind

    def as_dict(self) -> dict[str, int]:
        return {
            "retries": self.retries,
            "token_dedup_hits": self.token_dedup_hits,
            "session_expiries": self.session_expiries,
            "watch_rearms": self.watch_rearms,
            "degraded_reads": self.degraded_reads,
            "transient_absorbed": self.transient_absorbed,
            "ambiguous_absorbed": self.ambiguous_absorbed,
            "permanent_absorbed": self.permanent_absorbed,
        }

    def merge(self, other: "ResilienceCounters") -> "ResilienceCounters":
        return ResilienceCounters(
            retries=self.retries + other.retries,
            token_dedup_hits=self.token_dedup_hits + other.token_dedup_hits,
            session_expiries=self.session_expiries + other.session_expiries,
            watch_rearms=self.watch_rearms + other.watch_rearms,
            degraded_reads=self.degraded_reads + other.degraded_reads,
            transient_absorbed=self.transient_absorbed + other.transient_absorbed,
            ambiguous_absorbed=self.ambiguous_absorbed + other.ambiguous_absorbed,
            permanent_absorbed=self.permanent_absorbed + other.permanent_absorbed,
        )


class MemoryEstimator:
    """Estimates the memory footprint of a logical data model.

    The paper observes that the controller's memory footprint is dominated
    by the quantity of managed cloud resources rather than by the active
    workload, and that memory is the scalability bottleneck (§6.1).  The
    estimator walks the model and sums ``sys.getsizeof`` over nodes and
    their attribute structures, which captures exactly that growth.
    """

    @staticmethod
    def node_count(model: DataModel) -> int:
        return model.count()

    @staticmethod
    def estimate_bytes(model: DataModel) -> int:
        total = 0
        for _, node in model.walk():
            total += sys.getsizeof(node)
            total += sys.getsizeof(node.attrs)
            total += sys.getsizeof(node.children)
            for key, value in node.attrs.items():
                total += sys.getsizeof(key)
                total += sys.getsizeof(value)
        return total

    @classmethod
    def bytes_per_resource(cls, model: DataModel) -> float:
        count = cls.node_count(model)
        if count == 0:
            return 0.0
        return cls.estimate_bytes(model) / count
