"""Small statistics helpers (percentiles, CDFs, summaries).

Implemented without numpy so that the core library remains dependency-free;
the benchmark harness may still use numpy for plotting-oriented work.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[int(rank)])
    fraction = rank - low
    interpolated = ordered[low] * (1 - fraction) + ordered[high] * fraction
    # Float rounding can push the interpolation outside its bracketing
    # order statistics (e.g. subnormal inputs, where x*(1-f) + x*f can
    # round below x); clamp to keep the percentile bounded by them.
    return float(min(max(interpolated, ordered[low]), ordered[high]))


def cdf_points(values: Iterable[float]) -> list[tuple[float, float]]:
    """Empirical CDF as ``(value, cumulative_fraction)`` pairs (Figure 5)."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def summary(values: Sequence[float]) -> dict[str, float]:
    """Mean / median / tail summary of a sample."""
    if not values:
        return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "p99": 0.0,
                "min": 0.0, "max": 0.0}
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values),
        "median": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "min": float(min(values)),
        "max": float(max(values)),
    }


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def linear_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation; used to check that CPU load scales with workload."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two sequences of equal length >= 2")
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    vy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy)
