"""ASCII rendering of tables and figure-style series.

The benchmark harness prints, for every table and figure of the paper, the
same rows/series the paper reports.  These helpers keep that output uniform
and readable in terminal logs (``bench_output.txt``).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(
    series: Sequence[tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    width: int = 50,
) -> str:
    """Render an (x, y) series with a proportional bar per row."""
    if not series:
        return f"{title}\n(empty series)"
    max_y = max(y for _, y in series) or 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>12}  {y_label:>10}")
    for x, y in series:
        bar = "#" * int(round(width * y / max_y))
        lines.append(f"{x:>12.2f}  {y:>10.4f}  {bar}")
    return "\n".join(lines)


def format_cdf(
    points: Sequence[tuple[float, float]],
    fractions: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00),
    value_label: str = "latency (s)",
    title: str = "",
) -> str:
    """Summarise a CDF at the requested cumulative fractions (Figure 5 style)."""
    if not points:
        return f"{title}\n(empty CDF)"
    rows = []
    for target in fractions:
        value = next((v for v, fraction in points if fraction >= target), points[-1][0])
        rows.append((f"{target * 100:.0f}%", f"{value:.4f}"))
    return ascii_table(("CDF", value_label), rows, title=title)


def format_percent(value: float) -> str:
    return f"{value * 100:.1f}%"


#: Human-readable labels for the ResilienceCounters fields, in display
#: order (see repro.metrics.collectors.ResilienceCounters.as_dict).
_RESILIENCE_LABELS = (
    ("retries", "client retries"),
    ("token_dedup_hits", "token dedup hits (exactly-once re-drives)"),
    ("session_expiries", "coordination sessions re-established"),
    ("watch_rearms", "watches re-armed after session loss"),
    ("degraded_reads", "reads served degraded (replica/partial)"),
)


def format_resilience(counters: dict[str, int], title: str = "resilience") -> str:
    """Render the fault-tolerance counters (``Platform.resilience_stats``)
    as a table, using stable labels so operators can grep run logs."""
    rows = [(label, counters.get(key, 0)) for key, label in _RESILIENCE_LABELS]
    for key in sorted(counters):
        if key not in {k for k, _ in _RESILIENCE_LABELS}:
            rows.append((key, counters[key]))
    return ascii_table(("event", "count"), rows, title=title)


#: Display order and labels for the commit-pipeline counters (see
#: repro.core.pipeline.PipelineStats.as_dict).
_PIPELINE_LABELS = (
    ("steps_sealed", "steps sealed"),
    ("flushes", "group-commit flushes"),
    ("batches_flushed", "sealed batches flushed"),
    ("window_high_water", "in-flight window high water"),
    ("stalls", "stalls on full window"),
)

_PIPELINE_LATENCIES = (
    ("last_flush_seconds", "last flush latency (s)"),
    ("mean_flush_seconds", "mean flush latency (s)"),
    ("p99_flush_seconds", "p99 flush latency (s)"),
)


def format_pipeline(stats: dict[str, float], title: str = "commit pipeline") -> str:
    """Render a controller's commit-pipeline counters
    (``Controller.io_stats()["pipeline"]``) with stable labels; latency
    gauges print with microsecond precision."""
    rows: list[tuple[str, object]] = [
        (label, stats.get(key, 0)) for key, label in _PIPELINE_LABELS
    ]
    rows.extend(
        (label, f"{stats.get(key, 0.0):.6f}") for key, label in _PIPELINE_LATENCIES
    )
    return ascii_table(("metric", "value"), rows, title=title)
