"""Physical workers (§3.2).

Workers sit between the controllers and the physical devices.  Each worker
dequeues runnable transactions from phyQ, replays their execution logs via
:class:`~repro.core.physical.PhysicalExecutor`, and reports the outcome
(committed / aborted / failed) back to the controller through inputQ.

Consumption is *claim-based*: before executing an item the worker persists
a claim record and deletes the phyQ item in one atomic ``multi`` (the claim
is a create-if-absent, so exactly one worker wins even under duplicate
dispatches or races).  The claim record is what lets a recovering leader
close the dispatch-loss window safely — a STARTED transaction with neither
a phyQ item nor a claim record provably lost its execute message and can
be re-dispatched without risking double execution.
"""

from __future__ import annotations

from repro.common.clock import Clock, RealClock
from repro.common.config import TropicConfig
from repro.common.errors import NodeExistsError, NoNodeError
from repro.common.idgen import random_id
from repro.common.jsonutil import dumps
from repro.coordination.queue import DistributedQueue
from repro.core.events import KIND_EXECUTE, result_message
from repro.core.persistence import TropicStore
from repro.core.physical import PhysicalExecutor
from repro.core.signals import KILL, SignalBoard
from repro.core.txn import Transaction
from repro.drivers.registry import DeviceRegistry


class Worker:
    """One physical worker."""

    def __init__(
        self,
        name: str,
        store: TropicStore,
        phy_queue: DistributedQueue,
        input_queue: DistributedQueue,
        registry: DeviceRegistry | None = None,
        config: TropicConfig | None = None,
        clock: Clock | None = None,
    ):
        self.name = name
        self.store = store
        self.phy_queue = phy_queue
        self.input_queue = input_queue
        self.config = config or TropicConfig()
        self.clock = clock or RealClock()
        self.signals = SignalBoard(store)
        self.executor = PhysicalExecutor(registry, self.config, self.clock, self.signals)
        self.transactions_processed = 0
        self.duplicate_dispatches_skipped = 0
        #: Distinguishes this worker incarnation's claims from those of a
        #: crashed predecessor with the same name (see _claim_fallback).
        self._nonce = random_id("wk")
        #: Claimed transactions not yet executed-and-resulted.  A claim is
        #: durable and its phyQ item is gone, so if a transient fault
        #: (session expiry, connection loss) interrupts the step after the
        #: claim multi, this worker is the *only* component that can still
        #: finish the transaction — the redispatch path deliberately skips
        #: claimed txids.  Retained across steps and retried.
        self._claimed: dict[str, Transaction] = {}
        #: Result messages not yet delivered to inputQ.  ``put_many`` is a
        #: single atomic multi: if it raises, nothing was enqueued and the
        #: whole batch is retried on the next step.
        self._outbox: list[dict] = []
        self.store.ensure_claim_root()

    # ------------------------------------------------------------------

    def _claim_ops(self, name: str, txid: str, epoch: int) -> list[tuple]:
        """The ordered op pair claiming one item: claim durable *before*
        the phyQ item disappears, so no crash point leaves a consumed item
        without a claim record."""
        claim = dumps({"worker": self.name, "epoch": epoch, "nonce": self._nonce})
        return [
            ("create", self.store.claim_key(txid), claim),
            ("delete", f"{self.phy_queue.path}/{name}", None),
        ]

    def _claim_and_ack_many(self, items: list[tuple[str, str, int]]) -> list[str]:
        """Atomically claim a batch of transactions, removing their phyQ
        items; returns the txids this worker won.

        Fast path: one ``multi`` of ``[create claim, delete item]`` pairs
        for the whole batch — one coordination round-trip (the common case:
        no duplicate dispatches, no racing peer).  A claim create fails if
        the transaction is already claimed; the multi applies in order and
        stops at the failure, so the slow path re-checks every item
        individually, using the incarnation nonce to recognise claims this
        very multi already applied.
        """
        if not items:
            return []
        client = self.store.kv.client
        ops = []
        for entry in items:
            ops.extend(self._claim_ops(*entry))
        try:
            client.multi(ops)
            return [txid for _, txid, _ in items]
        except (NodeExistsError, NoNodeError):
            return self._claim_fallback(items)

    def _claim_fallback(self, items: list[tuple[str, str, int]]) -> list[str]:
        """Per-item claims after a failed batched multi (which applied an
        unknown prefix of its ops)."""
        client = self.store.kv.client
        won: list[str] = []
        for name, txid, epoch in items:
            claim = self.store.load_claim(txid)
            if claim is not None:
                if claim.get("nonce") == self._nonce and claim.get("epoch") == epoch:
                    # Our own claim from the partial multi; its item delete
                    # may not have applied — ack is idempotent.
                    self.phy_queue.ack(name)
                    won.append(txid)
                else:
                    # Duplicate dispatch: someone else owns the claim.
                    self.phy_queue.ack(name)
                    self.duplicate_dispatches_skipped += 1
                continue
            try:
                client.multi(self._claim_ops(name, txid, epoch))
                won.append(txid)
            except NodeExistsError:
                self.phy_queue.ack(name)
                self.duplicate_dispatches_skipped += 1
            except NoNodeError:
                # The claims root is missing (fresh namespace): restore it
                # and leave the item for the next step's retry.
                self.store.ensure_claim_root()
        return won

    def step(self) -> bool:
        """Drain a batch of phyQ items; returns True if work was done.

        The whole batch is claimed-and-acked in one coordination round-trip
        and the result messages ride back to the controller in a single
        inputQ group write.

        Crash-consistent against transient coordination faults: work the
        step was interrupted in (claimed-but-unexecuted transactions,
        undelivered results) is retained on the instance and finished
        first on the next step.  An exception from this method therefore
        never strands a claimed transaction — the service loop heals the
        session and re-steps.
        """
        recovered = self._finish_interrupted()
        taken = self.phy_queue.take_many(self.config.worker_batch_size)
        if not taken:
            return recovered
        to_claim: list[tuple[str, str, int]] = []
        transactions = {}
        for name, item in taken:
            if item.get("kind") != KIND_EXECUTE:
                self.phy_queue.ack(name)
                continue  # unknown message kinds are dropped
            txid = item["txid"]
            txn = self.store.load_transaction(txid)
            if txn is None:
                self.phy_queue.ack(name)
                continue
            transactions[txid] = txn
            to_claim.append((name, txid, int(item.get("epoch", 0))))
        won = self._claim_and_ack_many(to_claim)
        # The claims are durable and the phyQ items are gone: from here on
        # only this worker can finish these transactions, so track them
        # until their results are safely in inputQ.
        for txid in won:
            self._claimed[txid] = transactions[txid]
        self._execute_claimed()
        self._flush_outbox()
        return True

    def _finish_interrupted(self) -> bool:
        """Finish work a previous (faulted) step left behind: deliver
        undelivered results, then execute claimed-but-unexecuted
        transactions."""
        flushed = self._flush_outbox()
        executed = self._execute_claimed()
        if executed:
            self._flush_outbox()
        return flushed or executed

    def _execute_claimed(self) -> bool:
        did_work = False
        for txid in list(self._claimed):
            # Checked fresh per item (not snapshotted per batch): a KILL
            # posted while earlier batch items executed must still stop
            # this one before it touches the devices.  The claim stays (the
            # controller aborts KILLed transactions in the logical layer
            # only and clears the claim with the document, §4).
            if self.signals.get(txid) == KILL:
                del self._claimed[txid]
                continue
            outcome = self.executor.execute(self._claimed[txid])
            self.transactions_processed += 1
            self._outbox.append(
                result_message(
                    txid,
                    outcome.outcome,
                    error=outcome.error,
                    failed_path=outcome.failed_path,
                    worker=self.name,
                )
            )
            del self._claimed[txid]
            did_work = True
        return did_work

    def _flush_outbox(self) -> bool:
        if not self._outbox:
            return False
        self.input_queue.put_many(self._outbox)
        self._outbox = []
        return True

    def run_pending(self, max_items: int | None = None) -> int:
        """Drain phyQ (bounded by ``max_items``); returns items processed."""
        processed = 0
        while max_items is None or processed < max_items:
            before = self.transactions_processed
            if not self.step():
                break
            processed += max(self.transactions_processed - before, 1)
        return processed
