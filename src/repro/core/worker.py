"""Physical workers (§3.2).

Workers sit between the controllers and the physical devices.  Each worker
dequeues runnable transactions from phyQ, replays their execution logs via
:class:`~repro.core.physical.PhysicalExecutor`, and reports the outcome
(committed / aborted / failed) back to the controller through inputQ.
"""

from __future__ import annotations

from repro.common.clock import Clock, RealClock
from repro.common.config import TropicConfig
from repro.coordination.queue import DistributedQueue
from repro.core.events import KIND_EXECUTE, result_message
from repro.core.persistence import TropicStore
from repro.core.physical import PhysicalExecutor
from repro.core.signals import KILL, SignalBoard
from repro.drivers.registry import DeviceRegistry


class Worker:
    """One physical worker."""

    def __init__(
        self,
        name: str,
        store: TropicStore,
        phy_queue: DistributedQueue,
        input_queue: DistributedQueue,
        registry: DeviceRegistry | None = None,
        config: TropicConfig | None = None,
        clock: Clock | None = None,
    ):
        self.name = name
        self.store = store
        self.phy_queue = phy_queue
        self.input_queue = input_queue
        self.config = config or TropicConfig()
        self.clock = clock or RealClock()
        self.signals = SignalBoard(store)
        self.executor = PhysicalExecutor(registry, self.config, self.clock, self.signals)
        self.transactions_processed = 0

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Drain a batch of phyQ items; returns True if work was done.

        The result messages of the whole batch ride back to the controller
        in a single inputQ group write.
        """
        items = self.phy_queue.poll_many(self.config.worker_batch_size)
        if not items:
            return False
        results = []
        for item in items:
            if item.get("kind") != KIND_EXECUTE:
                continue  # unknown message kinds are dropped
            txid = item["txid"]
            txn = self.store.load_transaction(txid)
            if txn is None:
                continue
            # Checked fresh per item (not snapshotted per batch): a KILL
            # posted while earlier batch items executed must still stop
            # this one before it touches the devices.
            if self.signals.get(txid) == KILL:
                # The controller aborts KILLed transactions in the logical
                # layer only; the physical layer does not touch the
                # devices (§4).
                continue
            outcome = self.executor.execute(txn)
            self.transactions_processed += 1
            results.append(
                result_message(
                    txid,
                    outcome.outcome,
                    error=outcome.error,
                    failed_path=outcome.failed_path,
                    worker=self.name,
                )
            )
        self.input_queue.put_many(results)
        return True

    def run_pending(self, max_items: int | None = None) -> int:
        """Drain phyQ (bounded by ``max_items``); returns items processed."""
        processed = 0
        while max_items is None or processed < max_items:
            before = self.transactions_processed
            if not self.step():
                break
            processed += max(self.transactions_processed - before, 1)
        return processed
