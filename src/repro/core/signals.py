"""TERM / KILL signals for stalled transactions (§4).

Resource volatility can stall a transaction indefinitely (e.g. an
unresponsive device).  TROPIC offers two remedies, analogous to SIGTERM and
SIGKILL:

* **TERM** — the physical worker notices the signal between actions,
  stops, and rolls back gracefully with undo actions in both layers, so
  cross-layer consistency is maintained.
* **KILL** — the controller aborts the transaction immediately, but only in
  the logical layer; any resulting cross-layer inconsistency is later
  reconciled with *repair*.

Signals are posted on a shared board in the coordination store so that both
the (possibly failed-over) controller and the workers observe them.
"""

from __future__ import annotations

from repro.core.persistence import TropicStore

TERM = "TERM"
KILL = "KILL"


class SignalBoard:
    """Reads and writes per-transaction signals in the persistent store."""

    def __init__(self, store: TropicStore):
        self.store = store

    def send(self, txid: str, signal: str) -> None:
        if signal not in (TERM, KILL):
            raise ValueError(f"unknown signal {signal!r}")
        self.store.set_signal(txid, signal)

    def term(self, txid: str) -> None:
        self.send(txid, TERM)

    def kill(self, txid: str) -> None:
        self.send(txid, KILL)

    def get(self, txid: str) -> str | None:
        return self.store.get_signal(txid)

    def clear(self, txid: str) -> None:
        self.store.clear_signal(txid)

    def should_stop(self, txid: str) -> bool:
        """True if the worker should stop replaying actions for ``txid``."""
        return self.get(txid) in (TERM, KILL)
