"""TERM / KILL signals for stalled transactions (§4).

Resource volatility can stall a transaction indefinitely (e.g. an
unresponsive device).  TROPIC offers two remedies, analogous to SIGTERM and
SIGKILL:

* **TERM** — the physical worker notices the signal between actions,
  stops, and rolls back gracefully with undo actions in both layers, so
  cross-layer consistency is maintained.
* **KILL** — the controller aborts the transaction immediately, but only in
  the logical layer; any resulting cross-layer inconsistency is later
  reconciled with *repair*.

Signals are posted on a shared board in the coordination store so that both
the (possibly failed-over) controller and the workers observe them.
"""

from __future__ import annotations

from repro.core.persistence import TropicStore

TERM = "TERM"
KILL = "KILL"


class SignalBoard:
    """Reads and writes per-transaction signals in the persistent store."""

    def __init__(self, store: TropicStore):
        self.store = store

    def send(self, txid: str, signal: str) -> None:
        if signal not in (TERM, KILL):
            raise ValueError(f"unknown signal {signal!r}")
        self.store.set_signal(txid, signal)

    def term(self, txid: str) -> None:
        self.send(txid, TERM)

    def kill(self, txid: str) -> None:
        self.send(txid, KILL)

    def get(self, txid: str) -> str | None:
        return self.store.get_signal(txid)

    def clear(self, txid: str) -> None:
        self.store.clear_signal(txid)

    def should_stop(self, txid: str) -> bool:
        """True if the worker should stop replaying actions for ``txid``."""
        return self.get(txid) in (TERM, KILL)

    def signalled(self) -> set[str]:
        """Transaction ids with a pending signal (one listing round-trip;
        used to snapshot the board once per batch instead of reading it
        once per transaction)."""
        return set(self.store.signalled_txids())

    def subscribe(self, txid: str) -> "SignalSubscription":
        return SignalSubscription(self, txid)


class SignalSubscription:
    """Watch-based signal observation for one transaction.

    Instead of polling the store between every physical action, the
    executor registers a one-shot coordination watch; :meth:`active` is a
    pure in-memory check until a signal is actually posted.
    """

    __slots__ = ("board", "txid", "_fired", "_present")

    def __init__(self, board: SignalBoard, txid: str):
        self.board = board
        self.txid = txid
        self._fired = False
        self._present = board.store.watch_signal(txid, self._on_event)

    def _on_event(self, _event) -> None:
        self._fired = True

    def active(self) -> bool:
        """True if a signal was posted at subscribe time or since."""
        return self._present or self._fired

    def current(self) -> str | None:
        """The posted signal, re-read from the store (slow path; only
        taken when :meth:`active` is true)."""
        return self.board.get(self.txid)

    def close(self) -> None:
        """Deregister the watch if it never fired.  Subscriptions are
        per-transaction-execution while the watched path is eternal, so
        skipping this would leak one watcher entry per executed
        transaction."""
        if not self._fired:
            self.board.store.unwatch_signal(self.txid, self._on_event)
