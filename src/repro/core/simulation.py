"""Logical-layer execution: simulation, early abort and logical rollback (§3.1.2).

Once a transaction is scheduled, its stored procedure is run against the
*logical* data model.  Every action is applied sequentially; a constraint
violation (or any procedure error) aborts the transaction and the changes
already applied are rolled back via the undo actions recorded in the
execution log.  Successful simulation leaves the logical changes in place
and hands the execution log to the physical layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import (
    ConstraintViolation,
    DataModelError,
    InconsistencyError,
    ProcedureError,
    ReproError,
)
from repro.core.constraints import ConstraintEngine
from repro.core.context import OrchestrationContext
from repro.core.procedures import ProcedureRegistry
from repro.core.txn import ExecutionLog, ReadWriteSet, Transaction
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel


@dataclass
class SimulationOutcome:
    """Result of simulating one transaction in the logical layer."""

    ok: bool
    constraint_violation: bool = False
    error: str | None = None
    result: Any = None

    @property
    def aborted(self) -> bool:
        return not self.ok


class LogicalExecutor:
    """Runs stored procedures against the logical data model."""

    def __init__(
        self,
        model: DataModel,
        schema: ModelSchema,
        procedures: ProcedureRegistry,
        constraint_engine: ConstraintEngine | None = None,
    ):
        self.model = model
        self.schema = schema
        self.procedures = procedures
        self.constraints = constraint_engine or ConstraintEngine(schema)
        self.simulations = 0
        self.rollbacks = 0

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(self, txn: Transaction) -> SimulationOutcome:
        """Simulate ``txn``; on any error the logical model is rolled back.

        The transaction's execution log and read/write set are rebuilt from
        scratch on every attempt (a deferred transaction is re-simulated
        when retried, since the model may have changed in between).
        """
        self.simulations += 1
        txn.log = ExecutionLog()
        txn.rwset = ReadWriteSet()
        context = OrchestrationContext(
            self.model, self.schema, txn, self.constraints, procedures=self.procedures
        )
        try:
            proc = self.procedures.get(txn.procedure)
            result = proc(context, **txn.args)
        except ConstraintViolation as exc:
            self.rollback(txn)
            return SimulationOutcome(ok=False, constraint_violation=True, error=str(exc))
        except (ProcedureError, DataModelError, InconsistencyError, ReproError) as exc:
            self.rollback(txn)
            return SimulationOutcome(ok=False, error=f"{type(exc).__name__}: {exc}")
        txn.result = result
        return SimulationOutcome(ok=True, result=result)

    # ------------------------------------------------------------------
    # Rollback and replay
    # ------------------------------------------------------------------

    def rollback(self, txn: Transaction) -> int:
        """Undo the logical effects of ``txn`` (most recent action first).

        Used both when simulation itself fails and when the physical layer
        reports an abort/failure (Step 5B of Figure 2).  Returns the number
        of undo actions applied.
        """
        return self.undo_log(txn.log)

    def undo_log(self, log: ExecutionLog) -> int:
        undone = 0
        for record in reversed(list(log)):
            if record.undo_action is None:
                continue
            try:
                node = self.model.get_for_write(record.path)
                action_def = self.schema.get(node.entity_type).get_action(record.undo_action)
                action_def.simulate(self.model, node, *record.undo_args)
                undone += 1
            except ReproError:
                # Logical undo is best-effort by construction: the undo of an
                # action that never took logical effect may find nothing to do.
                continue
        self.rollbacks += 1
        return undone

    def apply_log(self, log: ExecutionLog) -> int:
        """Re-apply a previously simulated execution log to the model.

        Used by leader recovery to replay committed transactions on top of
        the latest checkpoint (§2.3).
        """
        applied = 0
        for record in log:
            node = self.model.get_for_write(record.path)
            action_def = self.schema.get(node.entity_type).get_action(record.action)
            action_def.simulate(self.model, node, *record.args)
            applied += 1
        return applied
