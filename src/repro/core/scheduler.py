"""The todo queue and scheduling policies (§3.1.1).

Accepted transactions wait in ``todoQ``.  The paper's controller uses a
plain FIFO policy for fairness and simplicity: only the head of the queue
is considered, and a head blocked by a resource conflict is put back at the
front and retried later.  The paper mentions, as future work, a more
aggressive policy that schedules transactions queued behind a conflicting
head; this module implements both, and the ablation benchmark compares
them.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.common.errors import ConfigurationError
from repro.core.txn import Transaction

FIFO = "fifo"
AGGRESSIVE = "aggressive"
POLICIES = (FIFO, AGGRESSIVE)


class TodoQueue:
    """In-memory queue of accepted transactions awaiting logical execution.

    The queue itself is controller-local (soft state); its content is
    recoverable because every accepted transaction is persisted in the
    coordination store before being enqueued.
    """

    def __init__(self, policy: str = FIFO):
        if policy not in POLICIES:
            raise ConfigurationError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self._queue: deque[Transaction] = deque()

    # -- queue operations ----------------------------------------------------

    def push_back(self, txn: Transaction) -> None:
        self._queue.append(txn)

    def push_front(self, txn: Transaction) -> None:
        self._queue.appendleft(txn)

    def remove(self, txid: str) -> Transaction | None:
        for index, txn in enumerate(self._queue):
            if txn.txid == txid:
                del self._queue[index]
                return txn
        return None

    def pop_index(self, index: int) -> Transaction:
        txn = self._queue[index]
        del self._queue[index]
        return txn

    def peek(self) -> Transaction | None:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._queue)

    def is_empty(self) -> bool:
        return not self._queue

    def transactions(self) -> list[Transaction]:
        return list(self._queue)

    # -- scheduling ----------------------------------------------------------

    def candidate_indices(self) -> list[int]:
        """Queue positions to try, in order, according to the policy.

        * ``fifo``: only the head — a blocked head blocks the queue.
        * ``aggressive``: every position, front to back — a blocked head is
          skipped and later transactions may be scheduled ahead of it.
        """
        if not self._queue:
            return []
        if self.policy == FIFO:
            return [0]
        return list(range(len(self._queue)))
