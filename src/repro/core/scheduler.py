"""The todo queue and scheduling policies (§3.1.1).

Accepted transactions wait in ``todoQ``.  The paper's controller uses a
plain FIFO policy for fairness and simplicity: only the head of the queue
is considered, and a head blocked by a resource conflict is put back at the
front and retried later.  The paper mentions, as future work, a more
aggressive policy that schedules transactions queued behind a conflicting
head; this module implements both, and the ablation benchmark compares
them.

The queue maintains a txid index so that :meth:`TodoQueue.remove` — called
once per transaction per scheduling pass, and by KILL handling — is O(1)
instead of an O(n) scan.  Removal marks the queue cell dead; dead cells are
skipped during iteration and compacted away once they outnumber live ones.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterator

from repro.analysis.recorder import traced
from repro.common.errors import ConfigurationError
from repro.core.txn import Transaction

FIFO = "fifo"
AGGRESSIVE = "aggressive"
POLICIES = (FIFO, AGGRESSIVE)


class _Cell:
    """One queue slot; ``live`` is cleared on removal (lazy deletion)."""

    __slots__ = ("txn", "live")

    def __init__(self, txn: Transaction):
        self.txn = txn
        self.live = True


class TodoQueue:
    """In-memory queue of accepted transactions awaiting logical execution.

    The queue itself is controller-local (soft state); its content is
    recoverable because every accepted transaction is persisted in the
    coordination store before being enqueued.
    """

    def __init__(self, policy: str = FIFO):
        if policy not in POLICIES:
            raise ConfigurationError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self._queue: deque[_Cell] = deque()
        self._index: dict[str, _Cell] = {}
        # send_kill (and the maintenance daemon) touch the queue from
        # other threads, and _compact rebuilds the deque: all structural
        # access is serialised.
        self._mutex = traced(threading.RLock(), "TodoQueue._mutex")

    # -- queue operations ----------------------------------------------------

    def push_back(self, txn: Transaction) -> None:
        with self._mutex:
            self._displace(txn.txid)
            cell = _Cell(txn)
            self._queue.append(cell)
            self._index[txn.txid] = cell

    def push_front(self, txn: Transaction) -> None:
        with self._mutex:
            self._displace(txn.txid)
            cell = _Cell(txn)
            self._queue.appendleft(cell)
            self._index[txn.txid] = cell

    def _displace(self, txid: str) -> None:
        """Kill any existing cell for ``txid`` (a transaction is queued at
        most once; re-pushing moves it)."""
        existing = self._index.pop(txid, None)
        if existing is not None:
            existing.live = False

    def remove(self, txid: str) -> Transaction | None:
        with self._mutex:
            cell = self._index.pop(txid, None)
            if cell is None:
                return None
            cell.live = False
            if len(self._queue) > 2 * max(len(self._index), 8):
                self._compact()
            return cell.txn

    def _compact(self) -> None:
        self._queue = deque(cell for cell in self._queue if cell.live)

    def peek(self) -> Transaction | None:
        with self._mutex:
            while self._queue and not self._queue[0].live:
                self._queue.popleft()
            return self._queue[0].txn if self._queue else None

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions())

    def is_empty(self) -> bool:
        return not self._index

    def transactions(self) -> list[Transaction]:
        with self._mutex:
            return [cell.txn for cell in self._queue if cell.live]

    # -- scheduling ----------------------------------------------------------

    def candidate_indices(self) -> list[int]:
        """Positions in the *live* view (:meth:`transactions`) to try, in
        order, according to the policy.

        * ``fifo``: only the head — a blocked head blocks the queue.
        * ``aggressive``: every position, front to back — a blocked head is
          skipped and later transactions may be scheduled ahead of it.

        The controller's schedule loop implements the same policy inline;
        this method documents it and serves the scheduling ablation
        tooling and tests.
        """
        if not self._index:
            return []
        if self.policy == FIFO:
            return [0]
        return list(range(len(self._index)))
