"""Persistent controller state in the coordination store (§2.3, §5).

TROPIC controllers keep only soft state in memory; everything needed to
resume execution after a leader failure lives in the replicated store:

* one document per transaction (state, arguments, execution log, read/write
  sets, timestamps),
* the latest data-model checkpoint plus an *applied log* of transactions
  committed since that checkpoint (a write-ahead structure the new leader
  replays to rebuild the logical model),
* the set of paths fenced off by cross-layer inconsistencies, and
* the TERM/KILL signal board.

Write-path performance (§6.1 identifies coordination I/O as a dominant
cost) is addressed on three fronts:

* **delta-aware transaction documents** — :meth:`TropicStore.
  save_transaction` caches the serialized JSON fragment of each document
  field and re-encodes only the fields a state transition touched (the
  execution log and argument blobs dominate document size but change at
  most once per transaction), and skips the store write entirely when the
  document text is unchanged;
* **group commit** — :meth:`TropicStore.batch` coalesces every store write
  issued during one controller loop iteration into a single multi-op
  round-trip;
* **incremental checkpoints** — instead of re-serialising the whole data
  model, a checkpoint persists a ``checkpoint/meta`` document plus one
  ``checkpoint/sub/<name>`` document per *top-level subtree*, and only the
  subtrees dirtied since the previous checkpoint are rewritten.

The checkpoint + applied-log layout is the replayable record both leader
failover (:mod:`repro.core.recovery`) and the read replicas
(:mod:`repro.core.replica`) rebuild models from; see
``docs/architecture.md#persistence-layout``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterable
from urllib.parse import quote

from repro.common.jsonutil import dumps
from repro.coordination.kvstore import KVStore
from repro.core.txn import Transaction, TransactionState
from repro.datamodel.snapshot import (
    node_info,
    restore_from_parts,
    snapshot_root_info,
    snapshot_unit,
)
from repro.datamodel.tree import DataModel

#: Document fields that are cheap to encode and may change on any state
#: transition; they are re-serialised on every save.  ``votes`` is the 2PC
#: coordinator's tally (cross-shard documents only).
_CHEAP_FIELDS = ("state", "error", "defer_count", "timestamps", "votes")
#: Expensive fields re-serialised only when explicitly marked dirty (or on
#: first save): the execution log, read/write set and result are produced
#: by simulation; args/procedure/client/txid/coordinator/participants
#: never change after creation.
_EXPENSIVE_FIELDS = (
    "args", "client", "coordinator", "log", "participants", "procedure",
    "result", "rwset", "txid",
)
#: Serialisation order must match ``json.dumps(..., sort_keys=True)``.
_FIELD_ORDER = tuple(sorted(_CHEAP_FIELDS + _EXPENSIVE_FIELDS))
#: Single-shard documents omit the three 2PC fields entirely (they decode
#: to their defaults), keeping the per-commit write path byte-identical to
#: the pre-2PC format.
_TWOPC_FIELDS = ("coordinator", "participants", "votes")
_LOCAL_FIELD_ORDER = tuple(f for f in _FIELD_ORDER if f not in _TWOPC_FIELDS)

#: Idempotency token: present only on tokened submissions, so token-less
#: documents stay byte-identical to the pre-resilience format (same
#: conditional-field discipline as the 2PC trio above).  Immutable after
#: creation, hence serialised once and reused like an expensive field.
_TOKEN_FIELD = "idempotency_token"
_FIELD_ORDER_TOKEN = tuple(sorted(_FIELD_ORDER + (_TOKEN_FIELD,)))
_LOCAL_FIELD_ORDER_TOKEN = tuple(sorted(_LOCAL_FIELD_ORDER + (_TOKEN_FIELD,)))

#: Marker requesting a full re-serialisation of a transaction document.
ALL_FIELDS = _FIELD_ORDER

#: Shared refresh set for the common ``dirty_fields=()`` save (terminal
#: state transitions), sparing a per-call set construction.
_CHEAP_FIELD_SET = frozenset(_CHEAP_FIELDS)

#: Bound on the serialized-fragment cache (entries are evicted wholesale if
#: the active-transaction population ever exceeds this).
_FRAGMENT_CACHE_LIMIT = 8192


def _field_value(txn: Transaction, field: str) -> Any:
    """The JSON-compatible value of one document field, without defensive
    copies (the value is serialised immediately)."""
    if field == "state":
        return txn.state.value
    if field == "log":
        return [
            {
                "seq": record.seq,
                "path": record.path,
                "action": record.action,
                "args": record.args,
                "undo_action": record.undo_action,
                "undo_args": record.undo_args,
            }
            for record in txn.log
        ]
    if field == "rwset":
        return txn.rwset.to_dict()
    if field == "timestamps":
        return txn.timestamps
    return getattr(txn, field)


class CheckpointStats:
    """Counters describing checkpoint activity (consumed by metrics)."""

    __slots__ = ("checkpoints", "full_checkpoints", "subtrees_written",
                 "subtrees_skipped", "bytes_serialized", "seconds", "last_seconds",
                 "round_trips", "serial_round_trips", "last_round_trips")

    def __init__(self) -> None:
        self.checkpoints = 0
        self.full_checkpoints = 0
        self.subtrees_written = 0
        self.subtrees_skipped = 0
        self.bytes_serialized = 0
        self.seconds = 0.0
        self.last_seconds = 0.0
        #: Coordination round-trips actually issued by checkpoint phases
        #: (multis + direct ops), versus what the same writes would have
        #: cost issued one-by-one ("before" batching) — the batching win
        #: of the checkpoint write phase, measured rather than claimed.
        self.round_trips = 0
        self.serial_round_trips = 0
        self.last_round_trips = 0

    def record_round_trips(self, actual: int, serial: int) -> None:
        self.round_trips += actual
        self.serial_round_trips += serial
        self.last_round_trips = actual

    def as_dict(self) -> dict[str, Any]:
        return {
            "checkpoints": self.checkpoints,
            "full_checkpoints": self.full_checkpoints,
            "subtrees_written": self.subtrees_written,
            "subtrees_skipped": self.subtrees_skipped,
            "bytes_serialized": self.bytes_serialized,
            "seconds": self.seconds,
            "last_seconds": self.last_seconds,
            "round_trips": self.round_trips,
            "serial_round_trips": self.serial_round_trips,
            "last_round_trips": self.last_round_trips,
        }


class TropicStore:
    """Typed facade over the KV store for controller/worker persistence."""

    TXN_PREFIX = "txns"
    APPLIED_PREFIX = "applied"
    SIGNAL_PREFIX = "signals"
    CHECKPOINT_META = "checkpoint/meta"
    CHECKPOINT_SUB_PREFIX = "checkpoint/sub"

    def __init__(self, kv: KVStore, shard_id: int | None = None, num_shards: int | None = None):
        self.kv = kv
        #: Shard identity stamped into checkpoint metadata (sharded
        #: deployments).  Recovery refuses a checkpoint stamped for a
        #: different shard layout — a misconfigured ``num_shards`` across a
        #: restart would silently re-route subtrees between lock domains.
        self.shard_id = shard_id
        self.num_shards = num_shards
        # txid -> {field: serialized fragment, "__doc__": full doc text}.
        # Concurrency contract: same-txid saves are serialised by the
        # controller's op mutex (submit writes a fresh txid before any
        # other thread knows it); cross-txid dict operations are
        # GIL-atomic, so no lock is taken on this hot path.
        self._fragments: dict[str, dict[str, str]] = {}
        self.txn_writes_skipped = 0
        self.fields_reserialized = 0
        self.fields_reused = 0
        self.checkpoint_stats = CheckpointStats()

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------

    @contextmanager
    def batch(self):
        """Context manager coalescing all store writes in scope into one
        multi-op group commit (see :meth:`KVStore.batch`).

        If the commit fails (e.g. quorum loss), the fragment cache is
        invalidated: buffered transaction documents were recorded in the
        cache as persisted, and a retry after a transient error must not
        have its writes suppressed by the unchanged-document check.
        """
        try:
            with self.kv.batch():
                yield self
        except Exception:
            self._fragments.clear()
            raise

    def flush(self) -> int:
        """Commit any pending batched writes immediately (keeps the batch
        scope open).  Required before an action whose correctness depends
        on prior state being durable — e.g. dispatching to phyQ."""
        try:
            return self.kv.flush()
        except Exception:
            self._fragments.clear()
            raise

    def commit_batches(self, batches: list[Any]) -> int:
        """Commit a pipeline window of sealed batches as one ``multi``
        (see :meth:`KVStore.commit_batches`), with the same fragment-cache
        invalidation contract as :meth:`flush`: a failed commit loses
        writes the cache already recorded as persisted."""
        try:
            return self.kv.commit_batches(batches)
        except Exception:
            self._fragments.clear()
            raise

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def save_transaction(
        self, txn: Transaction, dirty_fields: Iterable[str] = ALL_FIELDS
    ) -> bool:
        """Persist ``txn``, re-serialising only ``dirty_fields`` plus the
        always-cheap fields (state, error, defer count, timestamps).

        Callers that know which fields a transition touched pass a hint
        (e.g. ``("log", "rwset", "result")`` after simulation); the default
        re-encodes everything, which is always correct.  Returns ``True``
        if a store write was issued, ``False`` if the document text was
        unchanged and the write was skipped.
        """
        txid = txn.txid
        fragments = self._fragments.get(txid)
        if fragments is None:
            if len(self._fragments) >= _FRAGMENT_CACHE_LIMIT:
                self._fragments.clear()
            fragments = {}
            self._fragments[txid] = fragments
            dirty_fields = ALL_FIELDS
        if dirty_fields is ALL_FIELDS:
            refresh = None  # refresh everything; skip per-field membership tests
        elif not dirty_fields:
            refresh = _CHEAP_FIELD_SET
        else:
            refresh = set(_CHEAP_FIELDS)
            refresh.update(dirty_fields)
        cross_shard = txn.participants or txn.votes or txn.coordinator is not None
        if txn.idempotency_token is not None:
            fields = _FIELD_ORDER_TOKEN if cross_shard else _LOCAL_FIELD_ORDER_TOKEN
        else:
            fields = _FIELD_ORDER if cross_shard else _LOCAL_FIELD_ORDER
        for field in fields:
            if refresh is None or field in refresh or field not in fragments:
                # Trivial scalar fields skip the JSON encoder entirely.
                if field == "state":
                    fragments[field] = f'"{txn.state.value}"'
                elif field == "defer_count":
                    fragments[field] = str(txn.defer_count)
                elif field == "error" and txn.error is None:
                    fragments[field] = "null"
                elif field == "votes" and not txn.votes:
                    fragments[field] = "{}"
                elif field == "coordinator" and txn.coordinator is None:
                    fragments[field] = "null"
                elif field == "participants" and not txn.participants:
                    fragments[field] = "[]"
                else:
                    fragments[field] = dumps(_field_value(txn, field))
                self.fields_reserialized += 1
            else:
                self.fields_reused += 1
        doc = "{" + ",".join(
            [f'"{field}":{fragments[field]}' for field in fields]
        ) + "}"
        if fragments.get("__doc__") == doc:
            self.txn_writes_skipped += 1
            return False
        # The doc is recorded as persisted only after the write is issued;
        # batched writes that later fail to commit are handled by the
        # batch()/flush() wrappers invalidating the whole cache.
        self.kv.put_serialized(f"{self.TXN_PREFIX}/{txid}", doc)
        fragments["__doc__"] = doc
        if txn.is_terminal:
            # Terminal documents are effectively immutable; keep the cache
            # bounded by the active-transaction population.
            self._fragments.pop(txid, None)
        return True

    def reset_fragment_cache(self) -> None:
        """Drop all cached document fragments.

        Must be called on leadership changes: fragments cached under a
        previous leadership may describe transaction state another leader
        has since rewritten, and a delta save would splice the stale
        fragment into the document."""
        self._fragments.clear()

    def load_transaction(self, txid: str) -> Transaction | None:
        data = self.kv.get(f"{self.TXN_PREFIX}/{txid}")
        if data is None:
            return None
        return Transaction.from_dict(data)

    def transaction_ids(self) -> list[str]:
        return self.kv.keys(self.TXN_PREFIX)

    def load_all_transactions(self) -> list[Transaction]:
        return [
            Transaction.from_dict(value)
            for _, value in self.kv.items(self.TXN_PREFIX)
            if value is not None
        ]

    def load_active_transactions(self) -> list[Transaction]:
        """Transactions that still occupy the logical layer (non-terminal)."""
        return [txn for txn in self.load_all_transactions() if not txn.is_terminal]

    def delete_transaction(self, txid: str) -> None:
        self._fragments.pop(txid, None)
        self.kv.delete(f"{self.TXN_PREFIX}/{txid}", recursive=True)

    def count_by_state(self) -> dict[str, int]:
        counts: dict[str, int] = {state.value: 0 for state in TransactionState}
        for txn in self.load_all_transactions():
            counts[txn.state.value] += 1
        return counts

    # ------------------------------------------------------------------
    # Idempotency-token ack index
    # ------------------------------------------------------------------
    #
    # ``tokens/<token> → {token, txid, state}`` records the terminal
    # outcome of every *tokened* submission.  The entry rides the same
    # group commit as the COMMITTED (or ABORTED/FAILED) state transition,
    # so it is exactly as durable as the ack itself: a client that lost
    # the ack to a crash-between-commit-and-ack re-submits under the same
    # token and the platform answers from this index instead of
    # double-applying.  Token-less submissions never touch the index —
    # the hot path is unchanged.  Recovery re-derives missing entries
    # from the terminal transaction documents (the doc carries the token),
    # covering a crash after the commit multi but before a later terminal
    # rewrite.

    TOKEN_PREFIX = "tokens"

    @staticmethod
    def token_key(token: str) -> str:
        """Store key for a token (percent-escaped: tokens are free-form
        client strings and must not smuggle path separators)."""
        return quote(token, safe="")

    def record_token(self, token: str, txid: str, state: str) -> None:
        """Persist one token→txid ack entry (rides the enclosing batch)."""
        self.kv.put(
            f"{self.TOKEN_PREFIX}/{self.token_key(token)}",
            {"token": token, "txid": txid, "state": state},
        )

    def lookup_token(self, token: str) -> dict[str, Any] | None:
        """The ack entry for ``token`` (``{token, txid, state}``), if any."""
        return self.kv.get(f"{self.TOKEN_PREFIX}/{self.token_key(token)}")

    def token_entries(self) -> dict[str, dict[str, Any]]:
        """All ack entries, keyed by token."""
        return {
            value["token"]: value
            for _, value in self.kv.items(self.TOKEN_PREFIX)
            if value is not None
        }

    # ------------------------------------------------------------------
    # Dispatch markers + worker claim records (dispatch-loss window fix)
    # ------------------------------------------------------------------
    #
    # A leader crash *between* the group commit that makes a STARTED state
    # durable and the phyQ ``put_many`` that carries its execute message
    # used to strand the transaction: the successor saw it STARTED with no
    # message and no result, and could not re-dispatch safely (a worker
    # might already have claimed-and-deleted the item).  Two records close
    # the window:
    #
    # * a *dispatch marker* (``dispatch/<txid>``) stamped with the leader's
    #   dispatch epoch rides the same group commit as the STARTED state, and
    # * a worker persists a *claim record* (``claims/<txid>``) atomically
    #   with the phyQ item delete (one ``multi``) before executing.
    #
    # Recovery then re-dispatches exactly the STARTED transactions that
    # have neither a pending execute message nor a claim record; the claim
    # create-if-absent also makes duplicate dispatches execute-once.
    #
    # Cost discipline: the stamp is one coalesced sub-op per *group commit*
    # (not per transaction), the claim rides the worker's existing item
    # delete in one ``multi``, and the claim cleanup is one batched delete
    # per finished transaction — write round-trips per commit are unchanged.

    DISPATCH_STAMP_KEY = "dispatch/epoch"
    CLAIM_PREFIX = "claims"

    def dispatch_epoch(self) -> int:
        """The current leadership dispatch epoch (0 before any leader)."""
        return int(self.kv.get("meta/dispatch_epoch", 0))

    def bump_dispatch_epoch(self) -> int:
        """Advance the dispatch epoch (one write; called once per leader
        takeover, outside any batch)."""
        epoch = self.dispatch_epoch() + 1
        self.kv.put("meta/dispatch_epoch", epoch)
        return epoch

    def stamp_dispatch_epoch(self, epoch: int) -> None:
        """Stamp the group commit about to flush with the dispatch epoch
        (callers issue this inside the batch carrying STARTED documents;
        the write coalesces to one sub-op per flush)."""
        self.kv.put(self.DISPATCH_STAMP_KEY, {"epoch": epoch})

    def last_dispatch_stamp(self) -> dict[str, Any] | None:
        return self.kv.get(self.DISPATCH_STAMP_KEY)

    def claim_key(self, txid: str) -> str:
        """Absolute coordination path of the claim record for ``txid``."""
        return self.kv.full_key(f"{self.CLAIM_PREFIX}/{txid}")

    def ensure_claim_root(self) -> None:
        """Create the claims parent so atomic claim creates cannot fail on
        a missing parent (one-time, at worker startup)."""
        self.kv.client.ensure_path(self.kv.full_key(self.CLAIM_PREFIX))

    def load_claim(self, txid: str) -> dict[str, Any] | None:
        return self.kv.get(f"{self.CLAIM_PREFIX}/{txid}")

    def clear_claim(self, txid: str) -> None:
        """Drop one claim record eagerly (used by KILL, whose transaction
        may never reach a quiesce-point checkpoint)."""
        self.kv.delete(f"{self.CLAIM_PREFIX}/{txid}")

    def clear_claims(self) -> int:
        """Garbage-collect every claim record (the claims *root* survives,
        so worker claim creates never lose their parent).

        Safe only at a quiesce point (no STARTED transaction outstanding):
        a terminal transaction's claim is dead weight, and in-flight
        transactions — whose claims recovery must see — do not exist at a
        quiesce point.  Riding the checkpoint keeps the per-commit write
        path free of claim-cleanup deletes.  The deletes are grouped into
        one multi (joining any enclosing batch) instead of one round-trip
        per claim."""
        removed = 0
        with self.kv.batch():
            for key in self.kv.keys(self.CLAIM_PREFIX):
                self.kv.delete(f"{self.CLAIM_PREFIX}/{key}")
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Checkpoint + applied log (write-ahead structure for recovery)
    # ------------------------------------------------------------------

    def save_checkpoint(self, model: DataModel, applied_seq: int) -> None:
        """Write a *full* checkpoint (every checkpoint unit)."""
        self._write_checkpoint(
            model, applied_seq, full=True, dirty_tops=set(), dirty_pairs=set()
        )

    def save_checkpoint_incremental(self, model: DataModel, applied_seq: int) -> int:
        """Write a checkpoint re-serialising only the second-level units
        dirtied since the last one (per the model's dirty tracking); falls
        back to a full write when the model is marked all-dirty.  Returns
        the number of unit documents written."""
        all_dirty, dirty_tops, dirty_pairs = model.dirty_state()
        return self._write_checkpoint(
            model, applied_seq, full=all_dirty,
            dirty_tops=dirty_tops, dirty_pairs=dirty_pairs,
        )

    def _write_checkpoint(
        self,
        model: DataModel,
        applied_seq: int,
        full: bool,
        dirty_tops: set[str],
        dirty_pairs: set[tuple[str, str]],
    ) -> int:
        started = time.perf_counter()
        stats = self.checkpoint_stats
        root = model.root
        tops_meta = {
            name: {"info": node_info(top), "children": sorted(top.children)}
            for name, top in sorted(root.children.items())
        }
        meta = {
            "applied_seq": applied_seq,
            "root": snapshot_root_info(model),
            "tops": tops_meta,
        }
        if self.shard_id is not None:
            meta["shard"] = {"shard_id": self.shard_id, "num_shards": self.num_shards}
        current_pairs = {
            (top, child)
            for top, entry in tops_meta.items()
            for child in entry["children"]
        }
        previous = self.kv.get(self.CHECKPOINT_META)
        previous_pairs: set[tuple[str, str]] = set()
        if previous:
            for top, entry in (previous.get("tops") or {}).items():
                for child in entry.get("children", []):
                    previous_pairs.add((top, child))
        if full:
            to_write = set(current_pairs)
        else:
            to_write = dirty_pairs & current_pairs
            # A dirty top-level node invalidates all its units (e.g. after
            # a subtree replacement), and units that appeared since the
            # last checkpoint must be written even if nothing marked them.
            to_write.update(p for p in current_pairs if p[0] in dirty_tops)
            to_write.update(current_pairs - previous_pairs)
        to_delete = previous_pairs - current_pairs
        written = 0
        with self.kv.batch():
            self.kv.put(self.CHECKPOINT_META, meta)
            for top, child in sorted(to_write):
                doc = dumps(snapshot_unit(model, top, child))
                stats.bytes_serialized += len(doc)
                self.kv.put_serialized(
                    f"{self.CHECKPOINT_SUB_PREFIX}/{top}/{child}", doc
                )
                written += 1
            for top, child in sorted(to_delete):
                self.kv.delete(f"{self.CHECKPOINT_SUB_PREFIX}/{top}/{child}")
            # Force-commit even when nested inside an enclosing batch: the
            # dirty flags may only be cleared once the checkpoint is
            # durable, otherwise a failed outer commit would leave a stale
            # checkpoint with no record of what it is missing.
            self.kv.flush()
        model.clear_dirty()
        elapsed = time.perf_counter() - started
        stats.checkpoints += 1
        if full:
            stats.full_checkpoints += 1
        stats.subtrees_written += written
        stats.subtrees_skipped += len(current_pairs) - written
        stats.seconds += elapsed
        stats.last_seconds = elapsed
        return written

    def load_checkpoint(self) -> tuple[DataModel | None, int]:
        meta = self.kv.get(self.CHECKPOINT_META)
        if meta is None:
            # Legacy single-document layout (pre group-commit).
            data = self.kv.get("checkpoint")
            if data is None:
                return None, 0
            return DataModel.from_dict(data["model"]), int(data.get("applied_seq", 0))
        tops = meta.get("tops") or {}
        units: dict[tuple[str, str], Any] = {}
        for top, entry in tops.items():
            for child in entry.get("children", []):
                doc = self.kv.get(f"{self.CHECKPOINT_SUB_PREFIX}/{top}/{child}")
                if doc is not None:
                    units[(top, child)] = doc
        model = restore_from_parts(
            meta.get("root") or {},
            {name: entry.get("info") or {} for name, entry in tops.items()},
            units,
        )
        return model, int(meta.get("applied_seq", 0))

    def applied_seq(self) -> int:
        return int(self.kv.get("applied_seq", 0))

    def applied_entries(self, after_seq: int = 0) -> list[tuple[int, str]]:
        """``(seq, txid)`` pairs of the applied log after ``after_seq``, in
        commit order.  Shared by failover recovery and by read replicas
        tailing this shard's committed-transaction stream: sequence numbers
        are dense (one per commit), so a reader holding watermark ``W``
        that observes a first entry ``> W + 1`` knows a checkpoint
        truncated past it and must re-bootstrap from the checkpoint.

        Entry keys embed the sequence number (``e-<seq:010d>``), so a
        tailing reader pays one listing plus one document read *per new
        entry* — not per retained entry — keeping frequent replica
        refreshes proportional to the tail they catch up on."""
        return [
            (int(record["seq"]), record["txid"])
            for record in self.applied_records(after_seq)
        ]

    def applied_records(self, after_seq: int = 0) -> list[dict[str, Any]]:
        """Full applied-log records after ``after_seq``, in commit order.

        Cross-shard commits carry ``participants`` (sorted shard ids) and
        ``coordinator`` stamped at :meth:`record_applied` time, so a reader
        can recognise a 2PC commit from the entry alone — even after the
        transaction document itself has been garbage-collected — which is
        what the decision-log-aware read fence keys on."""
        records: list[dict[str, Any]] = []
        for key in self.kv.keys(self.APPLIED_PREFIX):
            try:
                key_seq = int(key.rsplit("-", 1)[-1])
            except ValueError:
                key_seq = None  # unrecognised key shape: read it to decide
            if key_seq is not None and key_seq <= after_seq:
                continue
            value = self.kv.get(f"{self.APPLIED_PREFIX}/{key}")
            if value is None:
                continue
            if int(value["seq"]) > after_seq:
                records.append(value)
        records.sort(key=lambda record: int(record["seq"]))
        return records

    def record_applied(
        self,
        txid: str,
        participants: list[int] | None = None,
        coordinator: int | None = None,
    ) -> int:
        """Append ``txid`` to the applied log; returns its sequence number.

        For cross-shard commits the caller passes the participant set and
        coordinator so the entry self-describes as one half of a 2PC
        commit (see :meth:`applied_records`); single-shard commits write
        the minimal record."""
        seq = self.applied_seq() + 1
        if participants is not None and len(participants) > 1:
            entry: dict[str, Any] = {"seq": seq, "txid": txid}
            entry["participants"] = sorted(int(p) for p in participants)
            if coordinator is not None:
                entry["coordinator"] = int(coordinator)
            self.kv.put(f"{self.APPLIED_PREFIX}/e-{seq:010d}", entry)
        else:
            # Single-shard entry, hand-assembled byte-identically to
            # ``dumps`` (keys already sorted; txid has no escapes).
            self.kv.put_serialized(
                f"{self.APPLIED_PREFIX}/e-{seq:010d}",
                f'{{"seq":{seq},"txid":"{txid}"}}',
            )
        self.kv.put("applied_seq", seq)
        return seq

    def applied_since(self, seq: int) -> list[str]:
        """Transaction ids applied after sequence number ``seq``, in order."""
        return [txid for _, txid in self.applied_entries(seq)]

    def applied_txids(self) -> set[str]:
        return {
            value["txid"]
            for _, value in self.kv.items(self.APPLIED_PREFIX)
            if value is not None
        }

    def truncate_applied(self, upto_seq: int) -> int:
        """Drop applied-log entries with sequence <= ``upto_seq`` (after a
        checkpoint has captured their effects).  The deletes are grouped
        into one multi-op commit.  Returns entries removed."""
        removed = 0
        with self.kv.batch():
            for key, value in list(self.kv.items(self.APPLIED_PREFIX)):
                if value is not None and int(value["seq"]) <= upto_seq:
                    self.kv.delete(f"{self.APPLIED_PREFIX}/{key}")
                    removed += 1
        return removed

    # ------------------------------------------------------------------
    # Inconsistency fencing (§4)
    # ------------------------------------------------------------------

    def save_inconsistent_paths(self, paths: list[str]) -> None:
        self.kv.put("inconsistent", sorted(set(paths)))

    def load_inconsistent_paths(self) -> list[str]:
        return list(self.kv.get("inconsistent", []))

    # ------------------------------------------------------------------
    # Signals (§4)
    # ------------------------------------------------------------------

    def set_signal(self, txid: str, signal: str) -> None:
        self.kv.put(f"{self.SIGNAL_PREFIX}/{txid}", signal)

    def get_signal(self, txid: str) -> str | None:
        return self.kv.get(f"{self.SIGNAL_PREFIX}/{txid}")

    def signalled_txids(self) -> list[str]:
        """Transaction ids with a pending signal (one listing round-trip)."""
        return self.kv.keys(self.SIGNAL_PREFIX)

    def watch_signal(self, txid: str, watcher: Any) -> bool:
        """Watch for a signal on ``txid``; returns whether one is already
        posted.  Lets the physical executor observe TERM without polling
        the store between every action."""
        return self.kv.watch(f"{self.SIGNAL_PREFIX}/{txid}", watcher)

    def unwatch_signal(self, txid: str, watcher: Any) -> bool:
        """Deregister an unfired signal watch (subscription cleanup)."""
        return self.kv.unwatch(f"{self.SIGNAL_PREFIX}/{txid}", watcher)

    def clear_signal(self, txid: str) -> None:
        self.kv.delete(f"{self.SIGNAL_PREFIX}/{txid}")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def put_meta(self, key: str, value: Any) -> None:
        self.kv.put(f"meta/{key}", value)

    def get_meta(self, key: str, default: Any = None) -> Any:
        return self.kv.get(f"meta/{key}", default)

    def io_stats(self) -> dict[str, Any]:
        """Write-path counters for the metrics collectors."""
        stats = dict(self.kv.io_stats())
        stats.update(
            txn_writes_skipped=self.txn_writes_skipped,
            fields_reserialized=self.fields_reserialized,
            fields_reused=self.fields_reused,
            checkpoint=self.checkpoint_stats.as_dict(),
        )
        return stats
