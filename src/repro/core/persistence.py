"""Persistent controller state in the coordination store (§2.3, §5).

TROPIC controllers keep only soft state in memory; everything needed to
resume execution after a leader failure lives in the replicated store:

* one document per transaction (state, arguments, execution log, read/write
  sets, timestamps),
* the latest data-model checkpoint plus an *applied log* of transactions
  committed since that checkpoint (a write-ahead structure the new leader
  replays to rebuild the logical model),
* the set of paths fenced off by cross-layer inconsistencies, and
* the TERM/KILL signal board.
"""

from __future__ import annotations

from typing import Any

from repro.coordination.kvstore import KVStore
from repro.core.txn import Transaction, TransactionState
from repro.datamodel.tree import DataModel


class TropicStore:
    """Typed facade over the KV store for controller/worker persistence."""

    TXN_PREFIX = "txns"
    APPLIED_PREFIX = "applied"
    SIGNAL_PREFIX = "signals"

    def __init__(self, kv: KVStore):
        self.kv = kv

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def save_transaction(self, txn: Transaction) -> None:
        self.kv.put(f"{self.TXN_PREFIX}/{txn.txid}", txn.to_dict())

    def load_transaction(self, txid: str) -> Transaction | None:
        data = self.kv.get(f"{self.TXN_PREFIX}/{txid}")
        if data is None:
            return None
        return Transaction.from_dict(data)

    def transaction_ids(self) -> list[str]:
        return self.kv.keys(self.TXN_PREFIX)

    def load_all_transactions(self) -> list[Transaction]:
        return [
            Transaction.from_dict(value)
            for _, value in self.kv.items(self.TXN_PREFIX)
            if value is not None
        ]

    def load_active_transactions(self) -> list[Transaction]:
        """Transactions that still occupy the logical layer (non-terminal)."""
        return [txn for txn in self.load_all_transactions() if not txn.is_terminal]

    def delete_transaction(self, txid: str) -> None:
        self.kv.delete(f"{self.TXN_PREFIX}/{txid}", recursive=True)

    def count_by_state(self) -> dict[str, int]:
        counts: dict[str, int] = {state.value: 0 for state in TransactionState}
        for txn in self.load_all_transactions():
            counts[txn.state.value] += 1
        return counts

    # ------------------------------------------------------------------
    # Checkpoint + applied log (write-ahead structure for recovery)
    # ------------------------------------------------------------------

    def save_checkpoint(self, model: DataModel, applied_seq: int) -> None:
        self.kv.put("checkpoint", {"model": model.to_dict(), "applied_seq": applied_seq})

    def load_checkpoint(self) -> tuple[DataModel | None, int]:
        data = self.kv.get("checkpoint")
        if data is None:
            return None, 0
        return DataModel.from_dict(data["model"]), int(data.get("applied_seq", 0))

    def applied_seq(self) -> int:
        return int(self.kv.get("applied_seq", 0))

    def record_applied(self, txid: str) -> int:
        """Append ``txid`` to the applied log; returns its sequence number."""
        seq = self.applied_seq() + 1
        self.kv.put(f"{self.APPLIED_PREFIX}/e-{seq:010d}", {"seq": seq, "txid": txid})
        self.kv.put("applied_seq", seq)
        return seq

    def applied_since(self, seq: int) -> list[str]:
        """Transaction ids applied after sequence number ``seq``, in order."""
        entries: list[tuple[int, str]] = []
        for _, value in self.kv.items(self.APPLIED_PREFIX):
            if value is None:
                continue
            if int(value["seq"]) > seq:
                entries.append((int(value["seq"]), value["txid"]))
        return [txid for _, txid in sorted(entries)]

    def applied_txids(self) -> set[str]:
        return {
            value["txid"]
            for _, value in self.kv.items(self.APPLIED_PREFIX)
            if value is not None
        }

    def truncate_applied(self, upto_seq: int) -> int:
        """Drop applied-log entries with sequence <= ``upto_seq`` (after a
        checkpoint has captured their effects).  Returns entries removed."""
        removed = 0
        for key, value in list(self.kv.items(self.APPLIED_PREFIX)):
            if value is not None and int(value["seq"]) <= upto_seq:
                self.kv.delete(f"{self.APPLIED_PREFIX}/{key}")
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Inconsistency fencing (§4)
    # ------------------------------------------------------------------

    def save_inconsistent_paths(self, paths: list[str]) -> None:
        self.kv.put("inconsistent", sorted(set(paths)))

    def load_inconsistent_paths(self) -> list[str]:
        return list(self.kv.get("inconsistent", []))

    # ------------------------------------------------------------------
    # Signals (§4)
    # ------------------------------------------------------------------

    def set_signal(self, txid: str, signal: str) -> None:
        self.kv.put(f"{self.SIGNAL_PREFIX}/{txid}", signal)

    def get_signal(self, txid: str) -> str | None:
        return self.kv.get(f"{self.SIGNAL_PREFIX}/{txid}")

    def clear_signal(self, txid: str) -> None:
        self.kv.delete(f"{self.SIGNAL_PREFIX}/{txid}")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def put_meta(self, key: str, value: Any) -> None:
        self.kv.put(f"meta/{key}", value)

    def get_meta(self, key: str, default: Any = None) -> Any:
        return self.kv.get(f"meta/{key}", default)
