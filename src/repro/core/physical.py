"""Physical-layer execution: replay of execution logs with undo rollback (§3.2).

A worker replays the execution log produced by logical simulation, invoking
device APIs action by action.  If every action succeeds the transaction is
*committed*.  If an action fails, the worker executes the undo actions of
the already-successful prefix in reverse chronological order and reports
*aborted*.  If an undo itself fails, the remaining undos are skipped (they
may have temporal dependencies) and the transaction is reported *failed*,
leaving a cross-layer inconsistency for reconciliation (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Clock, RealClock
from repro.common.config import TropicConfig
from repro.common.errors import DeviceError, ReproError
from repro.core.events import OUTCOME_ABORTED, OUTCOME_COMMITTED, OUTCOME_FAILED
from repro.core.signals import SignalBoard, TERM
from repro.core.txn import LogRecord, Transaction
from repro.drivers.registry import DeviceRegistry


@dataclass
class PhysicalOutcome:
    """Result of replaying one transaction in the physical layer."""

    outcome: str  # committed | aborted | failed
    error: str | None = None
    failed_path: str | None = None
    executed: int = 0
    undone: int = 0
    undo_errors: list[str] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        return self.outcome == OUTCOME_COMMITTED


class PhysicalExecutor:
    """Replays execution logs against registered devices."""

    def __init__(
        self,
        registry: DeviceRegistry | None,
        config: TropicConfig | None = None,
        clock: Clock | None = None,
        signals: SignalBoard | None = None,
    ):
        self.registry = registry
        self.config = config or TropicConfig()
        self.clock = clock or RealClock()
        self.signals = signals
        self.transactions_executed = 0
        self.actions_executed = 0
        self.undo_actions_executed = 0

    # ------------------------------------------------------------------

    def execute(self, txn: Transaction) -> PhysicalOutcome:
        """Replay ``txn``'s execution log; roll back on the first failure.

        TERM observation is watch-based: a one-shot coordination watch is
        registered once per transaction, so the per-action signal checks
        are in-memory flag reads until a signal is actually posted —
        instead of two store reads per replayed action.
        """
        self.transactions_executed += 1
        subscription = (
            self.signals.subscribe(txn.txid) if self.signals is not None else None
        )
        try:
            executed: list[LogRecord] = []
            for record in txn.log:
                if self._termed(txn, subscription):
                    return self._rollback(
                        txn, executed, error="transaction terminated by TERM signal"
                    )
                try:
                    self._invoke(record.path, record.action, record.args, phase="forward")
                    executed.append(record)
                    self.actions_executed += 1
                except ReproError as exc:
                    return self._rollback(
                        txn, executed, error=str(exc), failed_path=record.path
                    )
                if self._termed(txn, subscription):
                    # TERM arrived while this action was in flight (e.g. a
                    # stalled device call): roll back gracefully including
                    # this action.
                    return self._rollback(
                        txn, executed, error="transaction terminated by TERM signal"
                    )
            return PhysicalOutcome(outcome=OUTCOME_COMMITTED, executed=len(executed))
        finally:
            if subscription is not None:
                subscription.close()

    def _termed(self, txn: Transaction, subscription=None) -> bool:
        if self.signals is None:
            return False
        if subscription is not None and not subscription.active():
            return False
        return self.signals.get(txn.txid) == TERM

    def _rollback(
        self,
        txn: Transaction,
        executed: list[LogRecord],
        error: str | None,
        failed_path: str | None = None,
    ) -> PhysicalOutcome:
        """Undo the successfully executed prefix in reverse order."""
        undone = 0
        for record in reversed(executed):
            if record.undo_action is None:
                # Irreversible action: we cannot restore the physical state.
                return PhysicalOutcome(
                    outcome=OUTCOME_FAILED,
                    error=error,
                    failed_path=record.path,
                    executed=len(executed),
                    undone=undone,
                    undo_errors=[f"{record.action} at {record.path} has no undo action"],
                )
            try:
                self._invoke(record.path, record.undo_action, record.undo_args, phase="undo")
                undone += 1
                self.undo_actions_executed += 1
            except ReproError as exc:
                # Stop undoing on the first undo failure (undos may have
                # temporal dependencies, §3.2); report the txn as failed.
                return PhysicalOutcome(
                    outcome=OUTCOME_FAILED,
                    error=error,
                    failed_path=record.path,
                    executed=len(executed),
                    undone=undone,
                    undo_errors=[str(exc)],
                )
        return PhysicalOutcome(
            outcome=OUTCOME_ABORTED,
            error=error,
            failed_path=failed_path,
            executed=len(executed),
            undone=undone,
        )

    # ------------------------------------------------------------------

    def _invoke(self, path: str, action: str, args: list, phase: str = "forward") -> None:
        """Invoke one device API call (or simulate it in logical-only mode)."""
        if self.config.logical_only or self.registry is None:
            if self.config.simulated_action_latency > 0:
                self.clock.sleep(self.config.simulated_action_latency)
            return
        _, device = self.registry.lookup(path)
        if not device.supports(action):
            raise DeviceError(
                f"device for {path} does not support action {action!r}",
                device=device.name,
                action=action,
            )
        device.invoke(action, args, phase=phase)
