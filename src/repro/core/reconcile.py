"""Reconciliation between the logical and physical layers (§4).

TROPIC does not try to transparently mask resource volatility.  It detects
cross-layer inconsistencies (failed undos, out-of-band changes, crashes),
fences the affected subtrees, and offers two eventual-consistency
mechanisms:

* **reload** (physical → logical): replace logical subtrees with the state
  retrieved from devices, provided no constraint is violated and no
  outstanding transaction holds conflicting locks;
* **repair** (logical → physical): diff the two layers and execute
  pre-defined compensating device actions (e.g. restart VMs powered off by
  a host reboot) so the physical layer converges back to the logical state.

Resources that cannot be reconciled are marked unusable (fenced) so future
transactions avoid them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import DeviceError, ReproError
from repro.core.controller import Controller
from repro.core.locks import LockMode
from repro.datamodel.path import ResourcePath
from repro.datamodel.snapshot import ModelDiff, NodeDelta, diff_models
from repro.datamodel.tree import DataModel
from repro.drivers.registry import DeviceRegistry

#: A repair handler inspects one delta and returns device calls
#: ``(device_path, action, args)`` that bring the physical state back in
#: line with the logical state.
RepairHandler = Callable[[NodeDelta], list[tuple[str, str, list[Any]]]]


@dataclass
class RepairReport:
    """Outcome of one repair pass."""

    inspected: int = 0
    actions_executed: list[tuple[str, str, list[Any]]] = field(default_factory=list)
    action_errors: list[str] = field(default_factory=list)
    unrepairable: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.action_errors and not self.unrepairable


@dataclass
class ReloadReport:
    """Outcome of one reload operation."""

    path: str
    applied: bool
    violations: list[str] = field(default_factory=list)
    conflict: str | None = None


class Reconciler:
    """Detects and resolves divergence between the two layers."""

    def __init__(self, controller: Controller, registry: DeviceRegistry):
        self.controller = controller
        self.registry = registry
        self._handlers: dict[str, RepairHandler] = {}
        self.register_handler("vm", self._repair_vm)
        self.register_handler("image", self._repair_image)
        self.register_handler("vmHost", self._repair_vm_host)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def physical_model(self) -> DataModel:
        """Assemble the physical data model from device descriptions."""
        return self.registry.build_physical_model()

    def detect(self, path: str | ResourcePath = "/") -> ModelDiff:
        """Diff the logical and physical layers under ``path``."""
        return diff_models(self.controller.model, self.physical_model(), path)

    def detect_and_fence(self, path: str | ResourcePath = "/") -> ModelDiff:
        """Periodic detection (§4): fence every diverging subtree root.

        The fence is placed on the *device* owning the diverging node (its
        nearest registered ancestor), so the whole device subtree is denied
        to new transactions until reconciled — e.g. a rebooted compute host
        stops accepting spawns even though only its VMs' states diverged.
        """
        diff = self.detect(path)
        fenced: set[str] = set()
        for delta in diff.all_deltas():
            fence_path = self._fence_root(delta.path)
            if fence_path is not None:
                self.controller.model.mark_inconsistent(fence_path)
                fenced.add(str(fence_path))
        if fenced:
            existing = {str(p) for p in self.controller.model.inconsistent_paths()}
            self.controller.store.save_inconsistent_paths(sorted(existing))
        return diff

    def _fence_root(self, delta_path: ResourcePath) -> ResourcePath | None:
        """The path to fence for a divergence at ``delta_path``.

        Prefers the registered device root, then the diverging node itself,
        then its parent; returns None if none of these exist logically.
        """
        try:
            device_path, _ = self.registry.lookup(delta_path)
        except DeviceError:
            device_path = None
        candidates = [device_path, delta_path, delta_path.parent]
        for candidate in candidates:
            if candidate is not None and self.controller.model.exists(candidate):
                return candidate
        return None

    # ------------------------------------------------------------------
    # Reload: physical -> logical
    # ------------------------------------------------------------------

    def reload(self, path: str | ResourcePath) -> ReloadReport:
        """Replace the logical subtree at ``path`` with the physical state.

        Aborted (not applied) if an outstanding transaction holds a
        conflicting lock on the subtree or if the reloaded state would
        violate constraints.
        """
        rpath = ResourcePath.parse(path)
        # Reload behaves like a writer of the whole subtree for concurrency
        # control purposes.
        conflict = self.controller.lock_manager.find_conflict(
            "__reload__", {rpath: LockMode.W}
        )
        if conflict is not None:
            return ReloadReport(
                path=str(rpath), applied=False, conflict=f"locked by {conflict.holder}"
            )

        physical = self.physical_model()
        if not physical.exists(rpath):
            # Device decommissioned out of band: drop the logical subtree.
            if self.controller.model.exists(rpath):
                self.controller.model.delete(rpath, recursive=True)
                self.controller.checkpoint()
            return ReloadReport(path=str(rpath), applied=True)

        subtree = physical.get(rpath).clone()
        # CoW fork under the controller's op mutex (reload may run on the
        # maintenance thread while the step loop is mid-action).
        candidate = self.controller.fork_model()
        candidate.replace_subtree(rpath, subtree)
        violations = self.controller.constraint_engine.check_subtree(candidate, rpath)
        if violations:
            return ReloadReport(path=str(rpath), applied=False, violations=violations)

        self.controller.model.replace_subtree(rpath, physical.get(rpath).clone())
        self._clear_fencing(rpath)
        self.controller.checkpoint()
        return ReloadReport(path=str(rpath), applied=True)

    # ------------------------------------------------------------------
    # Repair: logical -> physical
    # ------------------------------------------------------------------

    def register_handler(self, entity_type: str, handler: RepairHandler) -> None:
        """Register a pre-defined repair handler for one entity type."""
        self._handlers[entity_type] = handler

    def repair(self, path: str | ResourcePath = "/") -> RepairReport:
        """Drive the physical layer back to the logical state under ``path``."""
        report = RepairReport()
        diff = self.detect(path)
        for delta in diff.all_deltas():
            report.inspected += 1
            entity_type = self._entity_type_for(delta)
            handler = self._handlers.get(entity_type)
            if handler is None:
                report.unrepairable.append(str(delta.path))
                continue
            for device_path, action, args in handler(delta):
                try:
                    _, device = self.registry.lookup(device_path)
                    device.invoke(action, args, phase="repair")
                    report.actions_executed.append((device_path, action, args))
                except (DeviceError, ReproError) as exc:
                    report.action_errors.append(f"{action}@{device_path}: {exc}")
                    report.unrepairable.append(str(delta.path))

        # Verify convergence and lift fencing where the layers now agree.
        remaining = self.detect(path)
        diverged = {str(delta.path) for delta in remaining.all_deltas()}
        for fenced in list(self.controller.model.inconsistent_paths()):
            if str(fenced) == str(ResourcePath.parse(path)) or str(fenced).startswith(
                str(ResourcePath.parse(path))
            ):
                still_bad = any(d == str(fenced) or d.startswith(str(fenced) + "/") for d in diverged)
                if not still_bad:
                    self.controller.model.clear_inconsistent(fenced)
        existing = {str(p) for p in self.controller.model.inconsistent_paths()}
        self.controller.store.save_inconsistent_paths(sorted(existing))
        if report.unrepairable:
            for bad in report.unrepairable:
                if self.controller.model.exists(bad):
                    self.controller.model.mark_inconsistent(bad)
        return report

    # ------------------------------------------------------------------
    # Default repair handlers
    # ------------------------------------------------------------------

    def _entity_type_for(self, delta: NodeDelta) -> str:
        if self.controller.model.exists(delta.path):
            return self.controller.model.get(delta.path).entity_type
        physical = self.physical_model()
        if physical.exists(delta.path):
            return physical.get(delta.path).entity_type
        return ""

    def _repair_vm(self, delta: NodeDelta) -> list[tuple[str, str, list[Any]]]:
        """Repair VM divergence: power state drift and VMs destroyed out of band."""
        host_path = str(delta.path.parent)
        vm_name = delta.path.name
        calls: list[tuple[str, str, list[Any]]] = []
        if delta.kind == "changed" and "state" in delta.changed_keys:
            logical_state = delta.attrs_left.get("state")
            if logical_state == "running":
                calls.append((host_path, "startVM", [vm_name]))
            elif logical_state == "stopped":
                calls.append((host_path, "stopVM", [vm_name]))
        elif delta.kind == "removed":
            # VM exists logically but not physically: recreate and restore state.
            image = delta.attrs_left.get("image")
            mem_mb = delta.attrs_left.get("mem_mb", 1024)
            hypervisor = delta.attrs_left.get("hypervisor")
            calls.append((host_path, "importImage", [image]))
            calls.append((host_path, "createVM", [vm_name, image, mem_mb, hypervisor]))
            if delta.attrs_left.get("state") == "running":
                calls.append((host_path, "startVM", [vm_name]))
        elif delta.kind == "added":
            # VM exists physically but not logically: remove the orphan.
            if delta.attrs_right.get("state") == "running":
                calls.append((host_path, "stopVM", [vm_name]))
            calls.append((host_path, "removeVM", [vm_name]))
        return calls

    def _repair_vm_host(self, delta: NodeDelta) -> list[tuple[str, str, list[Any]]]:
        """Repair compute-host attribute drift (currently: imported images)."""
        host_path = str(delta.path)
        calls: list[tuple[str, str, list[Any]]] = []
        if delta.kind == "changed" and "imported_images" in delta.changed_keys:
            logical = set(delta.attrs_left.get("imported_images") or [])
            physical = set(delta.attrs_right.get("imported_images") or [])
            for image in sorted(logical - physical):
                calls.append((host_path, "importImage", [image]))
            for image in sorted(physical - logical):
                calls.append((host_path, "unimportImage", [image]))
        return calls

    def _repair_image(self, delta: NodeDelta) -> list[tuple[str, str, list[Any]]]:
        """Repair image export-state drift on storage hosts."""
        host_path = str(delta.path.parent)
        image_name = delta.path.name
        calls: list[tuple[str, str, list[Any]]] = []
        if delta.kind == "changed" and "exported" in delta.changed_keys:
            if delta.attrs_left.get("exported"):
                calls.append((host_path, "exportImage", [image_name]))
            else:
                calls.append((host_path, "unexportImage", [image_name]))
        elif delta.kind == "added" and not delta.attrs_right.get("template"):
            if delta.attrs_right.get("exported"):
                calls.append((host_path, "unexportImage", [image_name]))
            calls.append((host_path, "removeImage", [image_name]))
        return calls

    # ------------------------------------------------------------------

    def _clear_fencing(self, path: ResourcePath) -> None:
        for fenced in list(self.controller.model.inconsistent_paths()):
            if fenced == path or str(fenced).startswith(str(path) + "/"):
                self.controller.model.clear_inconsistent(fenced)
        existing = {str(p) for p in self.controller.model.inconsistent_paths()}
        self.controller.store.save_inconsistent_paths(sorted(existing))
