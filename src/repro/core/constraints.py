"""Constraint engine: runtime enforcement of service/engineering rules (§2.2, §3.1.2).

Constraints are declared on entity types (see
:class:`repro.datamodel.schema.EntityType`).  During logical simulation the
engine is consulted after every action: it evaluates the constraints of the
subtree rooted at the *highest constrained ancestor* of the written object.
That same ancestor is R-locked by the scheduler so that concurrent
transactions cannot invalidate the checked state (§3.1.3).
"""

from __future__ import annotations

from repro.datamodel.path import ResourcePath
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel


class ConstraintEngine:
    """Evaluates schema constraints against a data model."""

    def __init__(self, schema: ModelSchema):
        self.schema = schema
        self.checks_performed = 0
        self.violations_found = 0

    # -- lock support -----------------------------------------------------

    def highest_constrained_ancestor(
        self, model: DataModel, path: str | ResourcePath
    ) -> ResourcePath | None:
        """Highest (closest to the root) ancestor-or-self of ``path`` whose
        entity type declares constraints, or ``None``."""
        rpath = ResourcePath.parse(path)
        node = model.root
        if self.schema.has_constraints(node.entity_type):
            return ResourcePath()
        current = ResourcePath()
        for part in rpath.parts:
            child = node.child(part)
            if child is None:
                break
            current = current.child(part)
            node = child
            if self.schema.has_constraints(node.entity_type):
                return current
        return None

    # -- checking -----------------------------------------------------------

    _SCOPE_UNRESOLVED = object()

    def check_after_write(
        self,
        model: DataModel,
        path: str | ResourcePath,
        scope: "ResourcePath | None | object" = _SCOPE_UNRESOLVED,
    ) -> list[str]:
        """Violations caused by a write at ``path``.

        The scope is the subtree under the highest constrained ancestor of
        ``path`` (falling back to the written subtree itself), which bounds
        checking cost while covering every constraint whose inputs the write
        can influence through its locked subtree.  Callers that already
        resolved the ancestor (the orchestration context records it as a
        constraint read just before checking) pass it as ``scope`` to skip
        the second resolution walk.
        """
        rpath = ResourcePath.parse(path)
        if scope is ConstraintEngine._SCOPE_UNRESOLVED:
            scope = self.highest_constrained_ancestor(model, rpath)
        if scope is None:
            scope = rpath if model.exists(rpath) else rpath.parent
        if not model.exists(scope):
            return []
        self.checks_performed += 1
        violations = self.schema.check_subtree(model, scope)
        self.violations_found += len(violations)
        return violations

    def check_subtree(self, model: DataModel, path: str | ResourcePath = "/") -> list[str]:
        """Violations anywhere under ``path`` (used by reload, §4)."""
        if not model.exists(path):
            return []
        self.checks_performed += 1
        violations = self.schema.check_subtree(model, path)
        self.violations_found += len(violations)
        return violations

    def check_all(self, model: DataModel) -> list[str]:
        return self.check_subtree(model, "/")
