"""Transactional orchestration core (the paper's primary contribution).

The two-layer transaction processing stack of §3:

* the **logical layer** — scheduling, simulation against the logical data
  model, constraint checking and multi-granularity locking — implemented by
  :class:`~repro.core.controller.Controller`, and
* the **physical layer** — replay of execution logs against device APIs
  with undo-based rollback — implemented by
  :class:`~repro.core.worker.Worker` /
  :class:`~repro.core.physical.PhysicalExecutor`.

:class:`~repro.core.platform.TropicPlatform` wires both layers to the
coordination substrate (queues, persistent store, leader election) and is
the public entry point of the library.
"""

from repro.core.txn import (
    ExecutionLog,
    LogRecord,
    ReadWriteSet,
    Transaction,
    TransactionState,
)
from repro.core.locks import LockManager, LockMode
from repro.core.constraints import ConstraintEngine
from repro.core.context import OrchestrationContext
from repro.core.procedures import ProcedureRegistry, procedure
from repro.core.simulation import LogicalExecutor, SimulationOutcome
from repro.core.scheduler import TodoQueue
from repro.core.persistence import TropicStore
from repro.core.physical import PhysicalExecutor, PhysicalOutcome
from repro.core.controller import Controller
from repro.core.worker import Worker
from repro.core.reconcile import Reconciler
from repro.core.signals import KILL, TERM, SignalBoard
from repro.core.recovery import RecoveredState, recover_state
from repro.core.platform import TransactionHandle, TropicPlatform

__all__ = [
    "Transaction",
    "TransactionState",
    "ExecutionLog",
    "LogRecord",
    "ReadWriteSet",
    "LockManager",
    "LockMode",
    "ConstraintEngine",
    "OrchestrationContext",
    "ProcedureRegistry",
    "procedure",
    "LogicalExecutor",
    "SimulationOutcome",
    "TodoQueue",
    "TropicStore",
    "PhysicalExecutor",
    "PhysicalOutcome",
    "Controller",
    "Worker",
    "Reconciler",
    "SignalBoard",
    "TERM",
    "KILL",
    "RecoveredState",
    "recover_state",
    "TransactionHandle",
    "TropicPlatform",
]
