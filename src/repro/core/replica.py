"""Per-shard read replicas: fleet-wide reads without hosting every shard.

See ``docs/architecture.md#the-read-path-replicas-and-the-readproxy`` for
the design and the staleness/consistency matrix.

Sharding (PR 2) made each controller shard authoritative for its own
subtrees, and the read-path hardening of PR 3 made
``TropicPlatform.model_view`` *refuse* (:class:`~repro.common.errors.
ShardUnavailable`) in any process that does not host every shard — a
partial merge would silently report foreign subtrees at their
bootstrap-frozen contents.  This module is the constructive answer: a
:class:`ReadReplica` tails one shard's store namespace and maintains a
local copy of that shard's committed model, so any process can serve fleet
reads while the shard leaders keep exclusive ownership of the write path.

The replica rebuilds the model exactly the way leader failover does —
*checkpoint + committed-log replay* — by reusing the same readers
(:meth:`~repro.core.persistence.TropicStore.load_checkpoint` and
:func:`~repro.core.recovery.replay_committed`), so a replica view and a
recovered leader can never disagree by construction.  Catch-up is
watch-driven, not polled:

* a **child watch** on the shard's applied-log prefix fires when the
  leader's group commit appends new committed transactions, and
* a **data watch** on ``checkpoint/meta`` fires when a quiesce-point
  checkpoint rewrites (and truncates) the log.

While neither watch has fired, :meth:`ReadReplica.refresh` returns without
issuing a single coordination operation — an idle replica is free, exactly
like the idle watch-parked queue consumers.

Consistency contract: the replica applies **only committed transactions**,
in commit order, and exposes a monotonic ``applied_txn`` watermark (the
applied-log sequence number its model reflects).  It never sees simulated
in-flight effects (those live only in the leader's memory), never goes
backwards (checkpoints always cover at least every applied entry they
truncate), and is *bounded-stale*: the leader's group commit makes the
applied entry durable before the client is acknowledged, so a replica
that refreshes after an acknowledged commit observes it.

Two read surfaces sit on top (PR 5):

* :meth:`ReadReplica.snapshot` — an **O(1) copy-on-write fork** of the
  model (structural sharing; refreshes path-copy what they change), and
* :meth:`ReadReplica.subscribe` — a **per-subtree delta stream** derived
  from the applied execution-log entries the replica already tails, so
  gateway-style caches stop re-materialising whole models (see
  ``docs/architecture.md#subtree-subscriptions``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.recorder import traced
from repro.core.persistence import TropicStore
from repro.core.procedures import ProcedureRegistry
from repro.core.recovery import replay_committed
from repro.core.simulation import LogicalExecutor
from repro.core.txn import TransactionState
from repro.datamodel.path import ResourcePath
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel

#: Subscription event kinds.  ``delta`` events carry one applied
#: execution-log record touching the subscribed subtree; a ``resync``
#: event tells the subscriber the replica re-bootstrapped from a
#: checkpoint (the intervening per-record deltas were truncated away), so
#: any derived cache must be rebuilt from :meth:`ReadReplica.snapshot`.
#: ``barrier`` events (opt-in, ``include_barriers=True``) precede the
#: deltas of a cross-shard 2PC commit and carry its participant set, so a
#: consumer stitching several shards' streams can hold one shard's half
#: of the commit until the other shards' halves arrive (see
#: :class:`repro.core.platform.StitchedSubscription`).
EVENT_DELTA = "delta"
EVENT_RESYNC = "resync"
EVENT_BARRIER = "barrier"


@dataclass(frozen=True)
class SubtreeDelta:
    """One subscription event of a per-subtree delta stream.

    Delta events replicate the committed execution-log records verbatim
    (path, action, args — exactly what the shard leader simulated and the
    replica just re-applied), stamped with the applied-log sequence number
    and txid they came from, so a gateway cache can apply them to its own
    materialised view without re-reading the model.
    """

    kind: str
    seq: int
    txid: str | None = None
    path: str | None = None
    action: str | None = None
    args: tuple = ()
    #: Sorted shard ids of a cross-shard commit; only ``barrier`` events
    #: carry a non-empty tuple.
    participants: tuple = ()


@dataclass
class Barrier:
    """An open atomicity barrier: a cross-shard 2PC commit this replica
    has applied whose other participants have not yet been confirmed
    visible by the read fence.

    ``pre_model`` is an O(1) copy-on-write fork of the replica's model
    taken *before* the commit was applied, so the fence can serve a view
    that atomically excludes the whole transaction when a lagging
    participant cannot be advanced (decision log unreachable).  Barriers
    are bounded (:data:`ReadReplica.BARRIER_WINDOW`); an evicted barrier
    simply removes the rewind option — the fence then advances the
    laggard or degrades the shard to partial.
    """

    txid: str
    participants: tuple
    coordinator: int | None
    pre_model: DataModel
    pre_applied: int
    pre_early: int
    tick: int
    #: Applied-log sequence of the commit; ``None`` while only
    #: early-applied (the entry has not appeared in this shard's log yet).
    seq: int | None = None
    #: Whether ``pre_model`` really precedes the commit.  Barriers opened
    #: while replaying a bootstrap tail hold the *post*-replay model (the
    #: pre-commit state is unreconstructable there) and only exist to let
    #: the fence advance lagging participants; the rewind path must treat
    #: them as unusable and degrade instead.
    rewindable: bool = True


class Subscription:
    """A per-subtree delta stream fed by a :class:`ReadReplica`.

    Events are queued in commit order; drain them with :meth:`poll` (or
    receive them synchronously via the ``callback`` passed to
    ``subscribe``, invoked under the replica lock after each refresh that
    produced events).  ``last_seq`` is the applied-log watermark of the
    newest event delivered — on a ``resync`` event it is the watermark the
    re-bootstrapped model reflects.
    """

    #: Bounded memory of delivered ``(seq, txid)`` pairs, used to drop
    #: duplicate redeliveries across a resync boundary (a re-bootstrap
    #: whose checkpoint truncation lands exactly on the watermark can
    #: otherwise replay the newest already-delivered commit).
    DEDUPE_WINDOW = 1024

    def __init__(
        self,
        replica: "ReadReplica",
        path: str,
        callback: Callable[[list[SubtreeDelta]], None] | None = None,
        include_barriers: bool = False,
    ):
        self.replica = replica
        self.path = str(ResourcePath.parse(path))
        self.callback = callback
        #: Whether cross-shard commit ``barrier`` events are delivered
        #: (before the commit's deltas, and regardless of whether any of
        #: its records fall inside the subscribed subtree — a stitching
        #: consumer needs the marker even for the half it cannot see).
        self.include_barriers = include_barriers
        self.last_seq = 0
        self._events: deque[SubtreeDelta] = deque()
        self._delivered: OrderedDict[tuple[int, str | None], None] = OrderedDict()
        self._closed = False

    def matches(self, path: str) -> bool:
        """Whether an execution-log record at ``path`` falls inside the
        subscribed subtree."""
        if self.path == "/":
            return True
        return path == self.path or path.startswith(self.path + "/")

    def _deliver(self, events: list[SubtreeDelta]) -> None:
        # Dedupe by (seq, txid): the replica delivers each commit's events
        # in one batch, so a (seq, txid) already marked delivered means the
        # whole commit was — drop the redelivery rather than double-apply
        # it in the subscriber's materialised view.  Resync events always
        # pass (they reset the subscriber, never mutate it incrementally),
        # and the memory survives resyncs on purpose: the hazard is
        # precisely a commit redelivered across the resync boundary.
        fresh = [
            event
            for event in events
            if event.kind == EVENT_RESYNC
            or (event.seq, event.txid) not in self._delivered
        ]
        for event in fresh:
            if event.kind != EVENT_RESYNC:
                self._delivered[(event.seq, event.txid)] = None
        while len(self._delivered) > self.DEDUPE_WINDOW:
            self._delivered.popitem(last=False)
        if not fresh:
            return
        self._events.extend(fresh)
        self.last_seq = max(self.last_seq, max(event.seq for event in fresh))
        if self.callback is not None:
            self.callback(fresh)

    def poll(self, refresh: bool = True) -> list[SubtreeDelta]:
        """Drain queued events, optionally refreshing the replica first
        (the refresh is free while the coordination watches are parked).

        The drain pops one event at a time (deque.popleft is atomic), so
        an event delivered concurrently by another thread's refresh is
        either returned by this poll or left for the next one — never
        silently discarded.
        """
        if refresh and not self._closed:
            self.replica.refresh()
        events: list[SubtreeDelta] = []
        try:
            while True:
                events.append(self._events.popleft())
        except IndexError:
            return events

    def pending(self) -> int:
        return len(self._events)

    def close(self) -> None:
        self._closed = True
        self.replica.unsubscribe(self)

    def __repr__(self) -> str:
        return (
            f"<Subscription {self.path} shard={self.replica.shard_id} "
            f"last_seq={self.last_seq} pending={len(self._events)}>"
        )


class ReadReplica:
    """A read-only tail of one shard's committed transaction stream.

    The replica holds a private :class:`~repro.datamodel.tree.DataModel`
    rebuilt from the shard's persistent store; it never writes to the
    store and never shares node objects with a controller.  Callers must
    treat the returned model as read-only (clone before mutating).
    """

    #: Most open barriers retained (each holds an O(1) CoW pre-commit fork).
    BARRIER_WINDOW = 64
    #: Most recent commit txids remembered for the fence's visibility check.
    RECENT_TXIDS = 1024
    #: Most (tick, unit) change-log entries retained for cache invalidation.
    UNIT_LOG_WINDOW = 4096
    #: Unit-log marker for a record outside any depth-2 checkpoint unit.
    UNIT_WILDCARD = "*"

    def __init__(
        self,
        store: TropicStore,
        schema: ModelSchema,
        procedures: ProcedureRegistry,
        shard_id: int = 0,
        counters: Any | None = None,
    ):
        self.store = store
        self.schema = schema
        self.procedures = procedures
        self.shard_id = shard_id
        #: Optional resilience counters (``watch_rearms`` is bumped per
        #: re-registration after the initial arming).
        self.counters = counters
        self._model: DataModel | None = None
        self._executor: LogicalExecutor | None = None
        self._applied_txn = 0
        self._has_checkpoint = False
        #: Set by the coordination watches; a refresh with the flag clear
        #: (and watches armed) is a guaranteed no-op and issues zero
        #: coordination operations.
        self._pending = threading.Event()
        #: Per-target armed flags: one-shot watches are re-registered only
        #: after they fire, so a long-tailing replica holds at most one
        #: live registration per target instead of accumulating one per
        #: refresh (ensemble watch lists are append-only until they fire).
        self._applied_watch_armed = False
        self._meta_watch_armed = False
        self._lock = traced(threading.RLock(), "ReadReplica._lock")
        #: Per-subtree delta subscriptions fed by the catch-up path.
        self._subs: list[Subscription] = []
        #: Open cross-shard atomicity barriers, keyed by txid, in opening
        #: order (the read fence consumes these; see :class:`Barrier`).
        self._barriers: OrderedDict[str, Barrier] = OrderedDict()
        #: Bounded txid -> applied-log seq memory of recent commits; the
        #: fence's "has this replica seen txn T" check.
        self._recent_txids: OrderedDict[str, int] = OrderedDict()
        #: Cross-shard commits applied *early* (prepared slice applied on
        #: proof of a durable commit decision) whose own applied-log entry
        #: has not been processed yet.
        self._early_applied: set[str] = set()
        #: Bumped per early application: the model can change without the
        #: ``applied_txn`` watermark moving, and cache keys must see that.
        self._early_seq = 0
        #: Monotonic change counter plus a bounded (tick, unit) log of
        #: checkpoint units touched by applied records, for per-subtree
        #: view-cache invalidation.  Entries at tick <= the floor are
        #: unknown (bootstrap or eviction); ``UNIT_WILDCARD`` marks a
        #: record outside any depth-2 unit (top-level churn).
        self._change_tick = 0
        self._unit_floor = 0
        self._unit_log: deque[tuple[int, str]] = deque()
        self.stats: dict[str, int] = {
            "bootstraps": 0,
            "catchup_batches": 0,
            "txns_applied": 0,
            "refreshes_skipped": 0,
            "deltas_delivered": 0,
            "resyncs_delivered": 0,
            "barriers_opened": 0,
            "early_applies": 0,
        }

    # ------------------------------------------------------------------
    # Watch plumbing
    # ------------------------------------------------------------------

    def _on_applied_event(self, _event: Any) -> None:
        self._applied_watch_armed = False
        self._pending.set()

    def _on_meta_event(self, _event: Any) -> None:
        self._meta_watch_armed = False
        self._pending.set()

    def _arm_watches(self) -> None:
        """Register one-shot watches on the applied-log prefix (new commits)
        and the checkpoint meta document (checkpoint/truncation).  Called at
        the start of every real refresh, *before* the state is read, so a
        write landing between the read and the next refresh is never lost —
        it fires the fresh watch and marks the replica pending.  A watch
        that has not fired is still live and is not re-registered.

        Each armed flag is set *before* its registration call (the watch
        may fire from another thread the instant it is registered, and that
        firing clears the flag — setting it afterwards would overwrite the
        clear and strand the replica) but rolled back if the registration
        itself fails (e.g. the session expired mid-call): a stale-true flag
        with no live watch would make every later refresh skip
        re-registration and the replica would never wake again."""
        kv = self.store.kv
        if not self._applied_watch_armed:
            self._applied_watch_armed = True
            try:
                kv.watch_children(TropicStore.APPLIED_PREFIX, self._on_applied_event)
            except Exception:
                self._applied_watch_armed = False
                raise
            self._count_rearm()
        if not self._meta_watch_armed:
            self._meta_watch_armed = True
            try:
                kv.watch(TropicStore.CHECKPOINT_META, self._on_meta_event)
            except Exception:
                self._meta_watch_armed = False
                raise
            self._count_rearm()

    def _count_rearm(self) -> None:
        if self.counters is not None and self.stats["bootstraps"] > 0:
            # Only re-registrations count: the first arming of a fresh
            # replica is bootstrap, not recovery.
            self.counters.watch_rearms += 1

    # ------------------------------------------------------------------
    # Catch-up
    # ------------------------------------------------------------------

    @property
    def applied_txn(self) -> int:
        """Monotonic watermark: the applied-log sequence number (number of
        committed transactions since the epoch of this shard) the current
        model reflects."""
        return self._applied_txn

    @property
    def has_checkpoint(self) -> bool:
        """Whether the tailed namespace has ever been bootstrapped by an
        owner process.  ``False`` means the replica's model is an empty
        placeholder, *not* an authoritative "this shard owns nothing" —
        consumers (the ReadProxy merge) must fall back to their own
        bootstrap-frozen copy instead of trusting it."""
        return self._has_checkpoint

    def lag(self) -> int:
        """Commits the leader has applied that this replica has not yet
        (one coordination read; used by the staleness benchmark)."""
        return max(self.store.applied_seq() - self._applied_txn, 0)

    def refresh(self, force: bool = False) -> bool:
        """Catch up with the shard's committed-transaction stream.

        Returns ``True`` if the model advanced (or was [re]bootstrapped).
        When the watches are armed and have not fired, this is a free
        no-op — zero coordination operations — unless ``force`` is set.
        """
        # repro: allow(blocking-under-lock) -- refresh serialises model mutation against snapshot forks; bootstrap/catch-up reads must happen under it or a concurrent snapshot() could fork a half-applied model
        with self._lock:
            if self._model is not None and not force and not self._pending.is_set():
                self.stats["refreshes_skipped"] += 1
                return False
            self._pending.clear()
            self._arm_watches()
            if self._model is None or not self._has_checkpoint:
                # No checkpoint seen yet: the namespace may have just been
                # bootstrapped by its owner (the checkpoint/meta watch is
                # what woke us), so rebuild rather than tail a log that
                # cannot exist before the first checkpoint does.
                self._bootstrap_locked()
                return True
            return self._catch_up_locked()

    def _bootstrap_locked(self) -> None:
        """(Re)build the model the way a recovering leader does: latest
        checkpoint (meta + per-unit documents) plus committed-log replay."""
        model, checkpoint_seq = self.store.load_checkpoint()
        self._has_checkpoint = model is not None
        model = model if model is not None else DataModel()
        executor = LogicalExecutor(model, self.schema, self.procedures)
        seen, replayed, last_seq = replay_committed(self.store, executor, checkpoint_seq)
        self._model = model
        self._executor = executor
        for txid in seen:
            self._remember_txid(txid, last_seq)
        # A checkpoint always covers at least every entry it truncated, so
        # a re-bootstrap can only move the watermark forward; max() guards
        # the monotonicity contract even against a torn meta read.
        self._applied_txn = max(self._applied_txn, last_seq)
        # Barriers hold pre-commit forks of the *previous* model; they
        # cannot rewind the rebuilt one.  The unit change-log is equally
        # void: raise its floor so cache consumers do a full rebuild.
        self._barriers.clear()
        self._change_tick += 1
        self._unit_floor = self._change_tick
        self._unit_log.clear()
        # Cross-shard commits in the replayed tail still need barriers —
        # their other participants may lag, and the fence can only align
        # what it can see.  The pre-commit state is unreconstructable
        # after a wholesale replay, so these barriers advance laggards
        # but cannot back a rewind.
        for record in self.store.applied_records(checkpoint_seq):
            participants = tuple(int(p) for p in record.get("participants", ()))
            if len(participants) > 1:
                self._open_barrier_locked(
                    record["txid"],
                    participants,
                    record.get("coordinator"),
                    seq=int(record["seq"]),
                    rewindable=False,
                )
        # Cross-shard commits *covered by the checkpoint* need barriers
        # too: a quiesce point only quiesces this shard, so the checkpoint
        # can contain this shard's half of a commit whose other
        # participant has not applied its half yet.  Their applied-log
        # entries are truncated, but a locally COMMITTED document proves
        # the commit is in the rebuilt model (the COMMITTED write and the
        # applied entry share a group-commit batch, so checkpoint + replay
        # always covers it) — surface it to the fence, and stamp the
        # recent-txid memory so ``has_applied`` reports the coverage.
        # Barriers are capped to the window's remaining capacity, newest
        # commits first, so historical documents cannot evict the
        # replayed-tail barriers opened above.
        covered = sorted(
            (
                txn
                for txn in self.store.load_all_transactions()
                if txn.state is TransactionState.COMMITTED
                and txn.participants is not None
                and len(txn.participants) > 1
            ),
            key=lambda t: t.txid,
        )
        for txn in covered:
            self._remember_txid(txn.txid, self._applied_txn)
        capacity = max(0, self.BARRIER_WINDOW - len(self._barriers))
        for txn in covered[-capacity:] if capacity else []:
            self._open_barrier_locked(
                txn.txid,
                tuple(int(p) for p in txn.participants),
                txn.coordinator,
                seq=None,
                rewindable=False,
            )
        # Early-applied commits whose document is still PREPARED are not in
        # the applied log, hence not covered by checkpoint + replay: carry
        # them over the rebuild (monotonic reads — a fenced view must not
        # lose a commit it already served).  COMMITTED documents wrote
        # their applied entry in the same group-commit batch, so the
        # rebuild covered them; drop the flag.
        for txid in sorted(self._early_applied):
            doc = self.store.load_transaction(txid)
            if doc is not None and doc.state is TransactionState.PREPARED:
                self._executor.apply_log(doc.log)
                self._early_seq += 1
            else:
                self._early_applied.discard(txid)
        self.stats["bootstraps"] += 1
        self.stats["txns_applied"] += len(replayed)
        # Subscribers cannot receive the per-record deltas a checkpoint
        # truncated away; tell them to rebuild from a snapshot instead of
        # silently skipping commits.  Iterate a snapshot of the list: a
        # delivery callback may subscribe/unsubscribe reentrantly.
        for sub in list(self._subs):
            if sub.last_seq < self._applied_txn:
                sub._deliver([SubtreeDelta(EVENT_RESYNC, self._applied_txn)])
                self.stats["resyncs_delivered"] += 1

    def _catch_up_locked(self) -> bool:
        records = self.store.applied_records(self._applied_txn)
        if not records:
            if self.store.applied_seq() > self._applied_txn:
                # The log advanced past us and a checkpoint truncated the
                # entries we were missing; the checkpoint has their effects.
                self._bootstrap_locked()
                return True
            return False
        if int(records[0]["seq"]) > self._applied_txn + 1:
            # Gap: a quiesce-point checkpoint truncated entries we never
            # applied.  Re-bootstrap (the checkpoint covers the gap).
            self._bootstrap_locked()
            return True
        applied = 0
        # Keyed by subscription *object*, and delivered to that object: a
        # delivery callback may subscribe/unsubscribe reentrantly, so
        # positional indexing into self._subs could misroute a subtree's
        # deltas to another subscriber.
        subs = list(self._subs)
        deltas: dict[int, list[SubtreeDelta]] = {}
        for record in records:
            seq, txid = int(record["seq"]), record["txid"]
            txn = self.store.load_transaction(txid)
            if txn is None:
                # Applied entry without a readable document (e.g. raced a
                # wholesale cleanup): fall back to the checkpoint path.
                self._bootstrap_locked()
                return True
            participants = tuple(
                int(p) for p in record.get("participants", txn.participants or ())
            )
            cross_shard = len(participants) > 1
            if txid in self._early_applied:
                # The read fence already applied this commit's prepared
                # slice; re-applying the log would double-apply it.  Only
                # the watermark moves — the model is already there — and
                # its barrier (opened by the early apply) learns its seq.
                self._early_applied.discard(txid)
                barrier = self._barriers.get(txid)
                if barrier is not None:
                    barrier.seq = seq
            else:
                if cross_shard:
                    self._open_barrier_locked(
                        txid,
                        participants,
                        record.get("coordinator", txn.coordinator),
                        seq=seq,
                    )
                self._executor.apply_log(txn.log)
                self._log_units_locked(txn.log)
            self._applied_txn = seq
            self._remember_txid(txid, seq)
            applied += 1
            # Derive per-subtree deltas from the execution log just
            # applied — the same records the model mutation came from, so
            # a subscriber's materialised view can never diverge from the
            # replica's.  A cross-shard commit's deltas are preceded by a
            # barrier event (for barrier-aware subscribers only, and
            # regardless of subtree match), so multi-shard stream
            # consumers can stitch the halves of the commit together.
            for index, sub in enumerate(subs):
                events = []
                if cross_shard and sub.include_barriers:
                    events.append(
                        SubtreeDelta(
                            EVENT_BARRIER, seq, txid, participants=participants
                        )
                    )
                events.extend(
                    SubtreeDelta(
                        EVENT_DELTA, seq, txid, record_entry.path,
                        record_entry.action, tuple(record_entry.args),
                    )
                    for record_entry in txn.log
                    if sub.matches(record_entry.path)
                )
                if events:
                    deltas.setdefault(index, []).extend(events)
        for index, events in deltas.items():
            subs[index]._deliver(events)
            self.stats["deltas_delivered"] += len(events)
        self.stats["catchup_batches"] += 1
        self.stats["txns_applied"] += applied
        return applied > 0

    # ------------------------------------------------------------------
    # Cross-shard atomicity surface (the read fence)
    # ------------------------------------------------------------------

    def _remember_txid(self, txid: str, seq: int) -> None:
        self._recent_txids[txid] = seq
        self._recent_txids.move_to_end(txid)
        while len(self._recent_txids) > self.RECENT_TXIDS:
            self._recent_txids.popitem(last=False)

    def _open_barrier_locked(
        self,
        txid: str,
        participants: tuple,
        coordinator: int | None,
        seq: int | None,
        rewindable: bool = True,
    ) -> None:
        if txid in self._barriers:
            return
        self._change_tick += 1
        self._barriers[txid] = Barrier(
            txid=txid,
            participants=tuple(sorted(int(p) for p in participants)),
            coordinator=None if coordinator is None else int(coordinator),
            pre_model=self._model.clone(),
            pre_applied=self._applied_txn,
            pre_early=self._early_seq,
            tick=self._change_tick,
            seq=seq,
            rewindable=rewindable,
        )
        self.stats["barriers_opened"] += 1
        while len(self._barriers) > self.BARRIER_WINDOW:
            self._barriers.popitem(last=False)

    def _log_units_locked(self, log: Any) -> None:
        self._change_tick += 1
        tick = self._change_tick
        for record in log:
            parts = str(record.path).strip("/").split("/")
            unit = (
                f"/{parts[0]}/{parts[1]}" if len(parts) >= 2 else self.UNIT_WILDCARD
            )
            self._unit_log.append((tick, unit))
        while len(self._unit_log) > self.UNIT_LOG_WINDOW:
            evicted_tick, _ = self._unit_log.popleft()
            self._unit_floor = max(self._unit_floor, evicted_tick)

    def has_applied(self, txid: str) -> bool:
        """Whether this replica's model includes commit ``txid``, judged
        from its bounded recent-commit memory (the fence only asks about
        commits at the replication frontier — its candidates come from
        open barriers, which are recent by construction)."""
        with self._lock:
            return txid in self._recent_txids or txid in self._early_applied

    def early_apply(self, txid: str) -> str:
        """Advance this replica past a cross-shard commit *before* its
        applied-log entry is processed, on the caller's proof of a durable
        commit decision (:meth:`repro.core.twopc.TwoPCLog.
        commit_participants`).

        Applies the prepared slice from this shard's own transaction
        document — the same records the leader will commit — under an
        atomicity barrier.  Returns ``"applied"`` (slice applied early),
        ``"already"`` (the model covers it), or ``"unavailable"`` (no
        usable document; the caller must rewind or degrade instead).
        """
        # repro: allow(blocking-under-lock) -- early-apply reads the txn document and applies it as one unit; dropping the lock between the applied-index read and the apply would tear the read-fence barrier
        with self._lock:
            if txid in self._early_applied or txid in self._recent_txids:
                return "already"
            if self._model is None:
                self.refresh(force=True)
                if txid in self._early_applied or txid in self._recent_txids:
                    return "already"
            txn = self.store.load_transaction(txid)
            if txn is None:
                # Document gone: either never reached this shard (cannot
                # apply) or applied long ago and wholesale-cleaned (the
                # model covers it).  The applied log arbitrates.
                if txid in self.store.applied_txids():
                    self._remember_txid(txid, self._applied_txn)
                    return "already"
                return "unavailable"
            if txn.state is not TransactionState.PREPARED:
                if txn.state is TransactionState.COMMITTED:
                    # The commit's applied entry is durable (written in the
                    # same group-commit batch as the COMMITTED document);
                    # a forced catch-up picks it up the normal way.  If a
                    # quiesce-point checkpoint already truncated the entry,
                    # the catch-up re-bootstraps and the checkpoint covers
                    # it — either way the model now includes the commit, so
                    # stamp the recent-txid memory or ``has_applied`` would
                    # keep reporting this shard as a laggard and the fence
                    # would spin on the open barrier forever.
                    self.refresh(force=True)
                    self._remember_txid(txid, self._applied_txn)
                    return "already"
                return "unavailable"
            participants = tuple(sorted(int(p) for p in txn.participants or ()))
            self._open_barrier_locked(txid, participants, txn.coordinator, seq=None)
            self._executor.apply_log(txn.log)
            self._log_units_locked(txn.log)
            self._early_applied.add(txid)
            self._early_seq += 1
            self.stats["early_applies"] += 1
            return "applied"

    @property
    def early_seq(self) -> int:
        """Monotonic count of early applications (see :meth:`early_apply`);
        a model-change stamp component alongside ``applied_txn``."""
        return self._early_seq

    def open_barriers(self) -> list[Barrier]:
        """Open atomicity barriers in opening order (oldest first)."""
        with self._lock:
            return list(self._barriers.values())

    def close_barrier(self, txid: str) -> None:
        """Drop the barrier for ``txid`` (the fence confirmed the commit
        visible on every fenced participant), releasing its pre-commit
        fork."""
        with self._lock:
            self._barriers.pop(txid, None)

    # ------------------------------------------------------------------
    # Per-subtree change tracking (view-cache invalidation)
    # ------------------------------------------------------------------

    @property
    def change_tick(self) -> int:
        """Monotonic model-change counter; pair it with
        :meth:`units_changed_since` for incremental cache maintenance."""
        return self._change_tick

    def units_changed_since(self, tick: int) -> set[str] | None:
        """Depth-2 checkpoint units (``/{top}/{child}``) touched since
        ``tick``, or ``None`` when the answer is unknown — the replica
        re-bootstrapped, the change log was evicted past ``tick``, or a
        record landed outside any unit — in which case the caller must
        rebuild rather than patch."""
        with self._lock:
            if tick < self._unit_floor:
                return None
            units: set[str] = set()
            for entry_tick, unit in self._unit_log:
                if entry_tick <= tick:
                    continue
                if unit == self.UNIT_WILDCARD:
                    return None
                units.add(unit)
            return units

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------

    def model(self, refresh: bool = True) -> DataModel:
        """The replica's *live* model (read-only; clone before mutating).

        With ``refresh=True`` (default) the replica first catches up on any
        watch-signalled changes; when nothing changed this costs zero
        coordination operations.

        Threading contract: the returned tree is mutated **in place** by
        later refreshes, so it is only safe to read from the thread that
        drives this replica's refreshes.  A reader that retains the tree
        across refreshes, or runs concurrently with another refresher
        (e.g. the platform's ``fleet_view``), must use :meth:`snapshot`,
        which clones under the replica lock.
        """
        if refresh or self._model is None:
            self.refresh()
        return self._model

    def snapshot(self) -> tuple[DataModel, int]:
        """An O(1) copy-on-write snapshot of the model plus its watermark,
        for callers that retain the view across refreshes (or mutate it).

        The fork shares every node with the live model; later refreshes
        path-copy the subtrees they touch, so the snapshot stays frozen at
        its watermark while costing a pointer swap under the lock — this
        is what makes ``fleet_view`` composition O(changed units) rather
        than O(model)."""
        # repro: allow(blocking-under-lock) -- the clone and its watermark must be read under the same lock hold as the (possibly refreshing) model, or the pair could disagree
        with self._lock:
            model = self.model()
            return model.clone(), self._applied_txn

    # ------------------------------------------------------------------
    # Per-subtree delta subscriptions
    # ------------------------------------------------------------------

    def subscribe(
        self,
        path: str,
        callback: Callable[[list[SubtreeDelta]], None] | None = None,
        include_barriers: bool = False,
    ) -> Subscription:
        """Subscribe to the committed delta stream of the subtree at
        ``path`` (``"/"`` for the whole shard).

        Events are derived from the applied execution-log entries the
        replica already tails, so a subscription adds **zero** coordination
        operations beyond the replica's own catch-up.  The subscription
        starts at the replica's current watermark: the subscriber should
        initialise its cache from :meth:`snapshot` and then apply deltas
        (rebuilding on ``resync`` events, which replace the deltas a
        quiesce-point checkpoint truncated away).
        """
        # repro: allow(blocking-under-lock) -- subscription registration must be atomic with the watermark-establishing refresh, or the first deltas could be lost between them
        with self._lock:
            self.refresh()  # establish the start watermark and arm watches
            sub = Subscription(self, path, callback, include_barriers=include_barriers)
            sub.last_seq = self._applied_txn
            self._subs.append(sub)
            return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)

    def subscriptions(self) -> list[Subscription]:
        with self._lock:
            return list(self._subs)

    def __repr__(self) -> str:
        return (
            f"<ReadReplica shard={self.shard_id} applied_txn={self._applied_txn} "
            f"bootstrapped={self._model is not None}>"
        )
