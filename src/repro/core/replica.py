"""Per-shard read replicas: fleet-wide reads without hosting every shard.

See ``docs/architecture.md#the-read-path-replicas-and-the-readproxy`` for
the design and the staleness/consistency matrix.

Sharding (PR 2) made each controller shard authoritative for its own
subtrees, and the read-path hardening of PR 3 made
``TropicPlatform.model_view`` *refuse* (:class:`~repro.common.errors.
ShardUnavailable`) in any process that does not host every shard — a
partial merge would silently report foreign subtrees at their
bootstrap-frozen contents.  This module is the constructive answer: a
:class:`ReadReplica` tails one shard's store namespace and maintains a
local copy of that shard's committed model, so any process can serve fleet
reads while the shard leaders keep exclusive ownership of the write path.

The replica rebuilds the model exactly the way leader failover does —
*checkpoint + committed-log replay* — by reusing the same readers
(:meth:`~repro.core.persistence.TropicStore.load_checkpoint` and
:func:`~repro.core.recovery.replay_committed`), so a replica view and a
recovered leader can never disagree by construction.  Catch-up is
watch-driven, not polled:

* a **child watch** on the shard's applied-log prefix fires when the
  leader's group commit appends new committed transactions, and
* a **data watch** on ``checkpoint/meta`` fires when a quiesce-point
  checkpoint rewrites (and truncates) the log.

While neither watch has fired, :meth:`ReadReplica.refresh` returns without
issuing a single coordination operation — an idle replica is free, exactly
like the idle watch-parked queue consumers.

Consistency contract: the replica applies **only committed transactions**,
in commit order, and exposes a monotonic ``applied_txn`` watermark (the
applied-log sequence number its model reflects).  It never sees simulated
in-flight effects (those live only in the leader's memory), never goes
backwards (checkpoints always cover at least every applied entry they
truncate), and is *bounded-stale*: the leader's group commit makes the
applied entry durable before the client is acknowledged, so a replica
that refreshes after an acknowledged commit observes it.

Two read surfaces sit on top (PR 5):

* :meth:`ReadReplica.snapshot` — an **O(1) copy-on-write fork** of the
  model (structural sharing; refreshes path-copy what they change), and
* :meth:`ReadReplica.subscribe` — a **per-subtree delta stream** derived
  from the applied execution-log entries the replica already tails, so
  gateway-style caches stop re-materialising whole models (see
  ``docs/architecture.md#subtree-subscriptions``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.persistence import TropicStore
from repro.core.procedures import ProcedureRegistry
from repro.core.recovery import replay_committed
from repro.core.simulation import LogicalExecutor
from repro.datamodel.path import ResourcePath
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel

#: Subscription event kinds.  ``delta`` events carry one applied
#: execution-log record touching the subscribed subtree; a ``resync``
#: event tells the subscriber the replica re-bootstrapped from a
#: checkpoint (the intervening per-record deltas were truncated away), so
#: any derived cache must be rebuilt from :meth:`ReadReplica.snapshot`.
EVENT_DELTA = "delta"
EVENT_RESYNC = "resync"


@dataclass(frozen=True)
class SubtreeDelta:
    """One subscription event of a per-subtree delta stream.

    Delta events replicate the committed execution-log records verbatim
    (path, action, args — exactly what the shard leader simulated and the
    replica just re-applied), stamped with the applied-log sequence number
    and txid they came from, so a gateway cache can apply them to its own
    materialised view without re-reading the model.
    """

    kind: str
    seq: int
    txid: str | None = None
    path: str | None = None
    action: str | None = None
    args: tuple = ()


class Subscription:
    """A per-subtree delta stream fed by a :class:`ReadReplica`.

    Events are queued in commit order; drain them with :meth:`poll` (or
    receive them synchronously via the ``callback`` passed to
    ``subscribe``, invoked under the replica lock after each refresh that
    produced events).  ``last_seq`` is the applied-log watermark of the
    newest event delivered — on a ``resync`` event it is the watermark the
    re-bootstrapped model reflects.
    """

    def __init__(
        self,
        replica: "ReadReplica",
        path: str,
        callback: Callable[[list[SubtreeDelta]], None] | None = None,
    ):
        self.replica = replica
        self.path = str(ResourcePath.parse(path))
        self.callback = callback
        self.last_seq = 0
        self._events: deque[SubtreeDelta] = deque()
        self._closed = False

    def matches(self, path: str) -> bool:
        """Whether an execution-log record at ``path`` falls inside the
        subscribed subtree."""
        if self.path == "/":
            return True
        return path == self.path or path.startswith(self.path + "/")

    def _deliver(self, events: list[SubtreeDelta]) -> None:
        self._events.extend(events)
        self.last_seq = events[-1].seq
        if self.callback is not None:
            self.callback(events)

    def poll(self, refresh: bool = True) -> list[SubtreeDelta]:
        """Drain queued events, optionally refreshing the replica first
        (the refresh is free while the coordination watches are parked).

        The drain pops one event at a time (deque.popleft is atomic), so
        an event delivered concurrently by another thread's refresh is
        either returned by this poll or left for the next one — never
        silently discarded.
        """
        if refresh and not self._closed:
            self.replica.refresh()
        events: list[SubtreeDelta] = []
        try:
            while True:
                events.append(self._events.popleft())
        except IndexError:
            return events

    def pending(self) -> int:
        return len(self._events)

    def close(self) -> None:
        self._closed = True
        self.replica.unsubscribe(self)

    def __repr__(self) -> str:
        return (
            f"<Subscription {self.path} shard={self.replica.shard_id} "
            f"last_seq={self.last_seq} pending={len(self._events)}>"
        )


class ReadReplica:
    """A read-only tail of one shard's committed transaction stream.

    The replica holds a private :class:`~repro.datamodel.tree.DataModel`
    rebuilt from the shard's persistent store; it never writes to the
    store and never shares node objects with a controller.  Callers must
    treat the returned model as read-only (clone before mutating).
    """

    def __init__(
        self,
        store: TropicStore,
        schema: ModelSchema,
        procedures: ProcedureRegistry,
        shard_id: int = 0,
        counters: Any | None = None,
    ):
        self.store = store
        self.schema = schema
        self.procedures = procedures
        self.shard_id = shard_id
        #: Optional resilience counters (``watch_rearms`` is bumped per
        #: re-registration after the initial arming).
        self.counters = counters
        self._model: DataModel | None = None
        self._executor: LogicalExecutor | None = None
        self._applied_txn = 0
        self._has_checkpoint = False
        #: Set by the coordination watches; a refresh with the flag clear
        #: (and watches armed) is a guaranteed no-op and issues zero
        #: coordination operations.
        self._pending = threading.Event()
        #: Per-target armed flags: one-shot watches are re-registered only
        #: after they fire, so a long-tailing replica holds at most one
        #: live registration per target instead of accumulating one per
        #: refresh (ensemble watch lists are append-only until they fire).
        self._applied_watch_armed = False
        self._meta_watch_armed = False
        self._lock = threading.RLock()
        #: Per-subtree delta subscriptions fed by the catch-up path.
        self._subs: list[Subscription] = []
        self.stats: dict[str, int] = {
            "bootstraps": 0,
            "catchup_batches": 0,
            "txns_applied": 0,
            "refreshes_skipped": 0,
            "deltas_delivered": 0,
            "resyncs_delivered": 0,
        }

    # ------------------------------------------------------------------
    # Watch plumbing
    # ------------------------------------------------------------------

    def _on_applied_event(self, _event: Any) -> None:
        self._applied_watch_armed = False
        self._pending.set()

    def _on_meta_event(self, _event: Any) -> None:
        self._meta_watch_armed = False
        self._pending.set()

    def _arm_watches(self) -> None:
        """Register one-shot watches on the applied-log prefix (new commits)
        and the checkpoint meta document (checkpoint/truncation).  Called at
        the start of every real refresh, *before* the state is read, so a
        write landing between the read and the next refresh is never lost —
        it fires the fresh watch and marks the replica pending.  A watch
        that has not fired is still live and is not re-registered.

        Each armed flag is set *before* its registration call (the watch
        may fire from another thread the instant it is registered, and that
        firing clears the flag — setting it afterwards would overwrite the
        clear and strand the replica) but rolled back if the registration
        itself fails (e.g. the session expired mid-call): a stale-true flag
        with no live watch would make every later refresh skip
        re-registration and the replica would never wake again."""
        kv = self.store.kv
        if not self._applied_watch_armed:
            self._applied_watch_armed = True
            try:
                kv.watch_children(TropicStore.APPLIED_PREFIX, self._on_applied_event)
            except Exception:
                self._applied_watch_armed = False
                raise
            self._count_rearm()
        if not self._meta_watch_armed:
            self._meta_watch_armed = True
            try:
                kv.watch(TropicStore.CHECKPOINT_META, self._on_meta_event)
            except Exception:
                self._meta_watch_armed = False
                raise
            self._count_rearm()

    def _count_rearm(self) -> None:
        if self.counters is not None and self.stats["bootstraps"] > 0:
            # Only re-registrations count: the first arming of a fresh
            # replica is bootstrap, not recovery.
            self.counters.watch_rearms += 1

    # ------------------------------------------------------------------
    # Catch-up
    # ------------------------------------------------------------------

    @property
    def applied_txn(self) -> int:
        """Monotonic watermark: the applied-log sequence number (number of
        committed transactions since the epoch of this shard) the current
        model reflects."""
        return self._applied_txn

    @property
    def has_checkpoint(self) -> bool:
        """Whether the tailed namespace has ever been bootstrapped by an
        owner process.  ``False`` means the replica's model is an empty
        placeholder, *not* an authoritative "this shard owns nothing" —
        consumers (the ReadProxy merge) must fall back to their own
        bootstrap-frozen copy instead of trusting it."""
        return self._has_checkpoint

    def lag(self) -> int:
        """Commits the leader has applied that this replica has not yet
        (one coordination read; used by the staleness benchmark)."""
        return max(self.store.applied_seq() - self._applied_txn, 0)

    def refresh(self, force: bool = False) -> bool:
        """Catch up with the shard's committed-transaction stream.

        Returns ``True`` if the model advanced (or was [re]bootstrapped).
        When the watches are armed and have not fired, this is a free
        no-op — zero coordination operations — unless ``force`` is set.
        """
        with self._lock:
            if self._model is not None and not force and not self._pending.is_set():
                self.stats["refreshes_skipped"] += 1
                return False
            self._pending.clear()
            self._arm_watches()
            if self._model is None or not self._has_checkpoint:
                # No checkpoint seen yet: the namespace may have just been
                # bootstrapped by its owner (the checkpoint/meta watch is
                # what woke us), so rebuild rather than tail a log that
                # cannot exist before the first checkpoint does.
                self._bootstrap_locked()
                return True
            return self._catch_up_locked()

    def _bootstrap_locked(self) -> None:
        """(Re)build the model the way a recovering leader does: latest
        checkpoint (meta + per-unit documents) plus committed-log replay."""
        model, checkpoint_seq = self.store.load_checkpoint()
        self._has_checkpoint = model is not None
        model = model if model is not None else DataModel()
        executor = LogicalExecutor(model, self.schema, self.procedures)
        _, replayed, last_seq = replay_committed(self.store, executor, checkpoint_seq)
        self._model = model
        self._executor = executor
        # A checkpoint always covers at least every entry it truncated, so
        # a re-bootstrap can only move the watermark forward; max() guards
        # the monotonicity contract even against a torn meta read.
        self._applied_txn = max(self._applied_txn, last_seq)
        self.stats["bootstraps"] += 1
        self.stats["txns_applied"] += len(replayed)
        # Subscribers cannot receive the per-record deltas a checkpoint
        # truncated away; tell them to rebuild from a snapshot instead of
        # silently skipping commits.  Iterate a snapshot of the list: a
        # delivery callback may subscribe/unsubscribe reentrantly.
        for sub in list(self._subs):
            if sub.last_seq < self._applied_txn:
                sub._deliver([SubtreeDelta(EVENT_RESYNC, self._applied_txn)])
                self.stats["resyncs_delivered"] += 1

    def _catch_up_locked(self) -> bool:
        entries = self.store.applied_entries(self._applied_txn)
        if not entries:
            if self.store.applied_seq() > self._applied_txn:
                # The log advanced past us and a checkpoint truncated the
                # entries we were missing; the checkpoint has their effects.
                self._bootstrap_locked()
                return True
            return False
        if entries[0][0] > self._applied_txn + 1:
            # Gap: a quiesce-point checkpoint truncated entries we never
            # applied.  Re-bootstrap (the checkpoint covers the gap).
            self._bootstrap_locked()
            return True
        applied = 0
        # Keyed by subscription *object*, and delivered to that object: a
        # delivery callback may subscribe/unsubscribe reentrantly, so
        # positional indexing into self._subs could misroute a subtree's
        # deltas to another subscriber.
        subs = list(self._subs)
        deltas: dict[int, list[SubtreeDelta]] = {}
        for seq, txid in entries:
            txn = self.store.load_transaction(txid)
            if txn is None:
                # Applied entry without a readable document (e.g. raced a
                # wholesale cleanup): fall back to the checkpoint path.
                self._bootstrap_locked()
                return True
            self._executor.apply_log(txn.log)
            self._applied_txn = seq
            applied += 1
            # Derive per-subtree deltas from the execution log just
            # applied — the same records the model mutation came from, so
            # a subscriber's materialised view can never diverge from the
            # replica's.
            for index, sub in enumerate(subs):
                events = [
                    SubtreeDelta(
                        EVENT_DELTA, seq, txid, record.path,
                        record.action, tuple(record.args),
                    )
                    for record in txn.log
                    if sub.matches(record.path)
                ]
                if events:
                    deltas.setdefault(index, []).extend(events)
        for index, events in deltas.items():
            subs[index]._deliver(events)
            self.stats["deltas_delivered"] += len(events)
        self.stats["catchup_batches"] += 1
        self.stats["txns_applied"] += applied
        return applied > 0

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------

    def model(self, refresh: bool = True) -> DataModel:
        """The replica's *live* model (read-only; clone before mutating).

        With ``refresh=True`` (default) the replica first catches up on any
        watch-signalled changes; when nothing changed this costs zero
        coordination operations.

        Threading contract: the returned tree is mutated **in place** by
        later refreshes, so it is only safe to read from the thread that
        drives this replica's refreshes.  A reader that retains the tree
        across refreshes, or runs concurrently with another refresher
        (e.g. the platform's ``fleet_view``), must use :meth:`snapshot`,
        which clones under the replica lock.
        """
        if refresh or self._model is None:
            self.refresh()
        return self._model

    def snapshot(self) -> tuple[DataModel, int]:
        """An O(1) copy-on-write snapshot of the model plus its watermark,
        for callers that retain the view across refreshes (or mutate it).

        The fork shares every node with the live model; later refreshes
        path-copy the subtrees they touch, so the snapshot stays frozen at
        its watermark while costing a pointer swap under the lock — this
        is what makes ``fleet_view`` composition O(changed units) rather
        than O(model)."""
        with self._lock:
            model = self.model()
            return model.clone(), self._applied_txn

    # ------------------------------------------------------------------
    # Per-subtree delta subscriptions
    # ------------------------------------------------------------------

    def subscribe(
        self,
        path: str,
        callback: Callable[[list[SubtreeDelta]], None] | None = None,
    ) -> Subscription:
        """Subscribe to the committed delta stream of the subtree at
        ``path`` (``"/"`` for the whole shard).

        Events are derived from the applied execution-log entries the
        replica already tails, so a subscription adds **zero** coordination
        operations beyond the replica's own catch-up.  The subscription
        starts at the replica's current watermark: the subscriber should
        initialise its cache from :meth:`snapshot` and then apply deltas
        (rebuilding on ``resync`` events, which replace the deltas a
        quiesce-point checkpoint truncated away).
        """
        with self._lock:
            self.refresh()  # establish the start watermark and arm watches
            sub = Subscription(self, path, callback)
            sub.last_seq = self._applied_txn
            self._subs.append(sub)
            return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)

    def subscriptions(self) -> list[Subscription]:
        with self._lock:
            return list(self._subs)

    def __repr__(self) -> str:
        return (
            f"<ReadReplica shard={self.shard_id} applied_txn={self._applied_txn} "
            f"bootstrapped={self._model is not None}>"
        )
