"""Cross-shard two-phase commit across shard leaders (presumed abort).

PR 2 sharded the controller but punted on transactions spanning shards:
``reject`` refuses them and ``pin`` runs them on one shard with degraded
isolation and read visibility.  This module supplies the missing pieces of
a real cross-shard protocol (``cross_shard_policy="2pc"``):

* **Roles.**  The submitting router picks the lowest involved shard as the
  *coordinator*; every other involved shard is a *participant*.  The
  coordinator simulates the whole stored procedure against its model,
  splits the resulting execution log and read/write set by owning shard
  (:func:`split_log` / :func:`split_rwset`), and drives the protocol over
  the shard inputQs (``prepare`` / ``vote`` / ``decision`` messages).
* **Prepare records.**  A participant validates its slice against its
  *authoritative* copy of the subtrees it owns (re-applying the log
  actions and re-checking constraints), acquires locks in its own lock
  domain, and persists the slice as a normal per-shard transaction
  document in state ``prepared`` — the transaction document already
  carries everything a 2PC prepare record needs (log, rwset, coordinator,
  participants, attempt).  Only then does it vote yes.
* **Decision log.**  Commit/abort decisions live in the *global* (unsharded)
  coordination namespace (:data:`TWOPC_PREFIX`), the same place as the
  shard map: the coordination service is the one component every shard can
  always reach, so a participant recovering from a crash resolves its
  prepared transactions by reading the decision record — no peer RPC
  needed.  The coordinator durably writes the decision *before* fanning it
  out (and before acknowledging the client).
* **Presumed abort.**  The coordinator logs no "begin" record.  A
  coordinator that fails over while a transaction is still ``preparing``
  aborts it on recovery (writing an abort decision so participants resolve
  quickly); a participant finding no decision record keeps its prepare
  record (and its locks) until one appears.
* **Wound-wait admission.**  Concurrent cross-shard prepares run fully in
  parallel; conflicts are resolved by *txid order* (txids are zero-padded
  monotonic counters, so lexicographic order is transaction age).  On a
  prepare-lock conflict the older transaction wounds a younger
  prepare-phase holder — its coordinator writes an abort decision record,
  releases the attempt's locks everywhere and requeues it behind a seeded
  backoff — while a younger transaction waits for the older holder.
  Wait-for edges therefore always point young → old: no cycles (no
  deadlock), and the oldest active transaction is never wounded, so it
  always progresses (no livelock — the reversed-roles scenario that
  earlier builds serialised behind a fleet-wide ticket znode resolves by
  the younger side yielding).  The decision is made locally from the lock
  table's holder txids; no global coordination state exists on this path
  (:data:`LEGACY_TICKET_KEY` survives only as a recovery-time cleanup of
  pre-upgrade stores).

``pin`` remains the fast path: when every path the simulation touched
collapses onto the coordinator's own shard, the transaction silently
downgrades to the ordinary single-shard 3C dispatch.

The protocol, its presumed-abort recovery table and the decision-record
GC are documented in
``docs/architecture.md#cross-shard-transactions-two-phase-commit``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.coordination.kvstore import KVStore
from repro.core.sharding import is_global_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sharding import ShardMap
    from repro.core.txn import ExecutionLog, ReadWriteSet

#: Global (unsharded) coordination namespace holding decision records and
#: checkpoint horizons.
TWOPC_PREFIX = "/tropic/2pc"

DECISION_COMMIT = "commit"
DECISION_ABORT = "abort"


class TwoPCLog:
    """Decision records + checkpoint horizons in the global coordination
    tree.

    All writes are immediate (never batched): a decision record is the
    durable commit point of the whole protocol and may never sit in a
    leader's group-commit buffer.

    Decision records are keyed **by coordinator shard**
    (``decisions/shard-<N>/<txid>``), so each shard's GC sweep lists only
    its own records instead of reading every retained record fleet-wide.
    Records written by older builds under the flat ``decisions/<txid>``
    layout are still *read* transparently and are migrated into the
    sharded layout by their coordinator at recovery
    (:meth:`migrate_flat_decisions`).
    """

    DECISION_PREFIX = "decisions"
    #: Pre-upgrade builds admitted one cross-shard prepare fleet-wide via
    #: an atomic znode at this key.  Wound-wait removed the ticket; the
    #: key survives only so recovery can delete a persisted ticket left by
    #: an old build as a clean no-op (:meth:`clear_legacy_ticket`).
    LEGACY_TICKET_KEY = "ticket"
    #: Child-name prefix distinguishing per-coordinator directories from
    #: legacy flat txid keys under :data:`DECISION_PREFIX`.
    SHARD_DIR_PREFIX = "shard-"

    def __init__(self, kv: KVStore):
        self.kv = kv

    # -- decision records ------------------------------------------------

    def _shard_dir(self, shard: int) -> str:
        return f"{self.DECISION_PREFIX}/{self.SHARD_DIR_PREFIX}{int(shard)}"

    def _decision_key(self, txid: str, coordinator: int) -> str:
        return f"{self._shard_dir(coordinator)}/{txid}"

    def decide(
        self,
        txid: str,
        decision: str,
        coordinator: int,
        participants: Iterable[int] = (),
    ) -> dict[str, Any]:
        """Durably record the outcome of ``txid``.  Idempotent: a decision,
        once written, never changes (recovery may re-write the same value)."""
        record = {
            "txid": txid,
            "decision": decision,
            "coordinator": int(coordinator),
            "participants": sorted(int(s) for s in participants),
        }
        self.kv.put(self._decision_key(txid, coordinator), record)
        return record

    def decision(self, txid: str, coordinator: int | None = None) -> str | None:
        """The recorded decision for ``txid`` (``None`` = presumed open;
        presumed *abort* only once the coordinator is known to have failed
        before logging — which its successor converts into an explicit
        abort record on recovery).

        Callers that know the coordinator (participants and recovering
        leaders always do — it is stamped in the transaction document)
        should pass it: the lookup is then two point reads at most (the
        sharded key, plus the legacy flat key for pre-migration records)
        instead of a fleet-wide scan.
        """
        record = self.decision_record(txid, coordinator)
        return None if record is None else record.get("decision")

    def decision_record(
        self, txid: str, coordinator: int | None = None
    ) -> dict[str, Any] | None:
        if coordinator is not None:
            record = self.kv.get(self._decision_key(txid, coordinator))
            if record is not None:
                return record
            return self.kv.get(f"{self.DECISION_PREFIX}/{txid}")
        # Coordinator unknown (introspection/tests): flat key first, then
        # every shard directory.
        record = self.kv.get(f"{self.DECISION_PREFIX}/{txid}")
        if record is not None:
            return record
        for child in self.kv.keys(self.DECISION_PREFIX):
            if not child.startswith(self.SHARD_DIR_PREFIX):
                continue
            record = self.kv.get(f"{self.DECISION_PREFIX}/{child}/{txid}")
            if record is not None:
                return record
        return None

    def commit_participants(
        self, txid: str, coordinator: int | None = None
    ) -> tuple[int, ...] | None:
        """The sorted participant set of ``txid`` *iff* a durable commit
        decision exists; ``None`` otherwise (open, aborted, or GC'd).

        This is the read API the decision-log-aware read fence uses: a
        non-``None`` return is proof the transaction committed on every
        participant's timeline, so a reader may apply the prepared slice
        on a lagging shard (or must withhold the advanced shard's slice)
        to keep cross-shard reads atomic."""
        record = self.decision_record(txid, coordinator)
        if record is None or record.get("decision") != DECISION_COMMIT:
            return None
        return tuple(sorted(int(s) for s in record.get("participants", ())))

    def clear_decision(self, txid: str, coordinator: int | None = None) -> None:
        """Drop one decision record (the GC below is the systematic path)."""
        record = self.decision_record(txid, coordinator)
        if record is None:
            return
        self.kv.delete(f"{self.DECISION_PREFIX}/{txid}")
        self.kv.delete(self._decision_key(txid, int(record.get("coordinator", -1))))

    def migrate_flat_decisions(self, shard: int) -> int:
        """Re-key this shard's legacy flat decision records into the
        per-coordinator layout.  Called once per leader takeover (recovery):
        each shard migrates the records *it* coordinated, so after every
        shard has recovered once the flat namespace is empty and GC sweeps
        never scan foreign records again.  Returns records migrated."""
        migrated = 0
        for child in self.kv.keys(self.DECISION_PREFIX):
            if child.startswith(self.SHARD_DIR_PREFIX):
                continue
            record = self.kv.get(f"{self.DECISION_PREFIX}/{child}")
            if not record or int(record.get("coordinator", -1)) != int(shard):
                continue
            # Write the sharded copy before dropping the flat key: a crash
            # between the two leaves a duplicate, which reads resolve and a
            # later migration pass cleans up — never a lost decision.
            self.kv.put(self._decision_key(record["txid"], shard), record)
            self.kv.delete(f"{self.DECISION_PREFIX}/{child}")
            migrated += 1
        return migrated

    # -- decision-record garbage collection -------------------------------
    #
    # Decision records are only ever *needed* by a shard recovering with an
    # unresolved (``prepared`` participant / ``started`` coordinator)
    # document for that txid.  A shard's quiesce-point checkpoint implies it
    # holds no unresolved cross-shard state at all (checkpoints require an
    # empty outstanding set), so a decision is dead once **every
    # participating shard has completed a checkpoint after the decision
    # existed**.  Each shard publishes a monotonically increasing *horizon
    # epoch* at every quiesce-point checkpoint; the coordinator then runs a
    # two-phase mark-and-sweep piggybacked on its own checkpoints (the same
    # cost discipline as the worker-claim GC — nothing rides the per-commit
    # write path):
    #
    # * **mark**: stamp the record with every participant's current horizon
    #   epoch (a participant with no published horizon is stamped -1);
    # * **sweep** (a later checkpoint): delete the record once every
    #   participant's current horizon *exceeds* its stamped epoch — i.e.
    #   each has completed a full quiesce checkpoint after the mark.
    #
    # Liveness after GC is preserved without the record: a participant that
    # prepares against an already-resolved transaction (a stale queued
    # prepare) gets its answer from the coordinator's terminal document via
    # the vote/decision message exchange, and recovering participants
    # re-send their vote.  See docs/architecture.md#decision-record-gc.

    HORIZON_PREFIX = "horizons"
    #: Horizon value published for a permanently decommissioned shard: it
    #: compares greater than every real epoch, so coordinators' sweeps
    #: never wait on a participant that will never checkpoint again.
    RETIRED_HORIZON = 1 << 62

    def publish_horizon(self, shard: int, epoch: int) -> None:
        """Advertise that ``shard`` completed quiesce-point checkpoint number
        ``epoch`` (monotonic per shard; re-publishing an epoch after a crash
        only delays GC, never expedites it)."""
        self.kv.put(f"{self.HORIZON_PREFIX}/shard-{int(shard)}", int(epoch))

    def horizons(self) -> dict[int, int]:
        """Every shard's latest published checkpoint horizon epoch.
        Retired shards report :data:`RETIRED_HORIZON` (always past any
        mark)."""
        out: dict[int, int] = {}
        for key, value in self.kv.items(self.HORIZON_PREFIX):
            if value is None:
                continue
            shard = int(key.rsplit("-", 1)[-1])
            if isinstance(value, dict) and value.get("retired"):
                out[shard] = self.RETIRED_HORIZON
            else:
                out[shard] = int(value)
        return out

    def gc_decisions(self, shard: int) -> int:
        """Mark-and-sweep the decision records coordinated by ``shard``
        (each shard garbage-collects its own transactions' outcomes).
        Returns the number of records deleted.  Callers invoke this from a
        quiesce-point checkpoint only.

        With records keyed by coordinator, the sweep lists only this
        shard's own directory — its cost is proportional to the decisions
        *this shard* retains, not to every retained record fleet-wide.
        """
        horizons = self.horizons()
        shard_dir = self._shard_dir(shard)
        removed = 0
        for txid in self.kv.keys(shard_dir):
            record = self.kv.get(f"{shard_dir}/{txid}")
            if not record:
                continue
            participants = [int(p) for p in record.get("participants") or []]
            mark = record.get("gc_horizons")
            if mark is None:
                record["gc_horizons"] = {
                    str(p): int(horizons.get(p, -1)) for p in participants
                }
                self.kv.put(f"{shard_dir}/{txid}", record)
                continue
            # A retired participant is always past any mark — including a
            # mark that itself stored the retirement sentinel (the record
            # was first marked after the retirement), where the strict
            # ``>`` alone would retain the record forever.
            swept = all(
                horizons.get(p, -(1 << 30)) > int(mark.get(str(p), 1 << 30))
                or horizons.get(p, -(1 << 30)) >= self.RETIRED_HORIZON
                for p in participants
            )
            if swept:
                self.kv.delete(f"{shard_dir}/{txid}")
                removed += 1
        return removed

    # -- administrative shard retirement ----------------------------------

    def retire_shard(self, shard: int) -> dict[str, int]:
        """Administrative sweep for a permanently decommissioned shard
        (``cli ... 2pc-gc --retired-shard N``).

        Normal GC needs the *coordinator* alive to mark and sweep its own
        records, and needs every *participant* to keep publishing horizons
        — a retired shard satisfies neither, so without this sweep its
        records (and any record naming it as participant) are retained
        forever.  Retirement:

        * deletes every decision record the retired shard coordinated
          (sharded directory and any pre-migration flat keys) — the only
          reader of a decision is a participant recovering with an
          unresolved prepare for it, and a *permanently* decommissioned
          coordinator's peers were required to resolve or be retired
          before decommissioning (see docs/operations.md), and
        * publishes a retired-horizon sentinel so other coordinators'
          mark-and-sweep stops waiting for the shard's checkpoints.

        Idempotent; returns ``{"records_removed": n, "horizon_retired": 1}``.
        """
        removed = 0
        shard_dir = self._shard_dir(shard)
        for txid in list(self.kv.keys(shard_dir)):
            self.kv.delete(f"{shard_dir}/{txid}")
            removed += 1
        for child in list(self.kv.keys(self.DECISION_PREFIX)):
            if child.startswith(self.SHARD_DIR_PREFIX):
                continue
            record = self.kv.get(f"{self.DECISION_PREFIX}/{child}")
            if record and int(record.get("coordinator", -1)) == int(shard):
                self.kv.delete(f"{self.DECISION_PREFIX}/{child}")
                removed += 1
        self.kv.put(
            f"{self.HORIZON_PREFIX}/shard-{int(shard)}", {"retired": True}
        )
        return {"records_removed": removed, "horizon_retired": 1}

    # -- legacy prepare-ticket cleanup ------------------------------------

    def clear_legacy_ticket(self) -> bool:
        """Delete a fleet-wide prepare-ticket znode persisted by a
        pre-wound-wait build, if present.  Called from 2PC recovery so an
        upgrade over an old store is a clean no-op: the znode was pure
        admission control (never consulted for correctness), so deleting
        it unconditionally is safe, and idempotent.  Returns whether a
        stale ticket was actually found."""
        if self.kv.get(self.LEGACY_TICKET_KEY) is None:
            return False
        self.kv.delete(self.LEGACY_TICKET_KEY)
        return True


# ----------------------------------------------------------------------
# Splitting a simulated transaction by owning shard
# ----------------------------------------------------------------------

def owner_of(shard_map: "ShardMap", path: str, coordinator: int) -> int:
    """Owning shard of one log/rwset path; paths above the sharding
    granularity fall to the coordinator (it locks them everywhere via the
    per-shard intention locks anyway)."""
    if is_global_path(path):
        return coordinator
    return shard_map.shard_of(path)


def shards_touched(
    shard_map: "ShardMap", log: "ExecutionLog", rwset: "ReadWriteSet", coordinator: int
) -> set[int]:
    """Every shard owning a path the simulation actually touched.

    This is the authoritative participant set: stored procedures may write
    paths that never appear in their arguments (auto-placement), so the
    submit-time routing decision is only provisional.
    """
    shards = {coordinator}
    for record in log:
        shards.add(owner_of(shard_map, record.path, coordinator))
    for path in rwset.writes | rwset.reads | rwset.constraint_reads:
        shards.add(owner_of(shard_map, path, coordinator))
    return shards


def split_log(
    shard_map: "ShardMap", log: "ExecutionLog", shard: int, coordinator: int
) -> list[dict[str, Any]]:
    """The slice of ``log`` (serialised) acting on paths ``shard`` owns,
    original order and sequence numbers preserved."""
    return [
        record.to_dict()
        for record in log
        if owner_of(shard_map, record.path, coordinator) == shard
    ]


def split_rwset(
    shard_map: "ShardMap", rwset: "ReadWriteSet", shard: int, coordinator: int
) -> dict[str, list[str]]:
    """The slice of ``rwset`` (serialised) that ``shard`` must lock.

    Global paths (at or above the sharding granularity) are included in
    every participant's slice — their intention locks anchor the
    participant's lock tree exactly as they do on the coordinator.
    """

    def keep(path: str) -> bool:
        return is_global_path(path) or shard_map.shard_of(path) == shard

    return {
        "reads": sorted(p for p in rwset.reads if keep(p)),
        "writes": sorted(p for p in rwset.writes if keep(p)),
        "constraint_reads": sorted(p for p in rwset.constraint_reads if keep(p)),
    }
