"""The TROPIC controller: logical-layer transaction processing (§3, Figure 2).

The (leader) controller accepts transaction requests from inputQ, schedules
them from todoQ, simulates them against the logical data model with
constraint checking, acquires multi-granularity locks, hands runnable
transactions to the physical workers through phyQ, and performs cleanup
(commit bookkeeping or logical rollback) when the workers report results.

The controller keeps only soft state in memory; everything needed to resume
after a leader failure is persisted in the coordination store *before* the
triggering inputQ item is acknowledged, which makes message handling
idempotent across failovers (§2.3).

The write path (group commit → dispatch epoch → worker claims) and the
cross-shard protocol driven from here are documented in
``docs/architecture.md#the-write-path`` and
``docs/architecture.md#cross-shard-transactions-two-phase-commit``.
"""

from __future__ import annotations

import threading
import warnings
from typing import Any, Callable

from repro.analysis.recorder import traced
from repro.common.clock import Clock, RealClock, Stopwatch
from repro.common.errors import ReproError, UnknownPathError
from repro.common.config import TropicConfig
from repro.common.retry import RetryPolicy
from repro.coordination.queue import DistributedQueue
from repro.core.constraints import ConstraintEngine
from repro.core.events import (
    DECISION_ABORT,
    DECISION_COMMIT,
    DECISION_RELEASE,
    KIND_DECISION,
    KIND_EXECUTE,
    KIND_PREPARE,
    KIND_REQUEST,
    KIND_RESULT,
    KIND_VOTE,
    KIND_WOUND,
    OUTCOME_ABORTED,
    OUTCOME_COMMITTED,
    VOTE_NO,
    VOTE_YES,
    decision_message,
    execute_message,
    prepare_message,
    vote_message,
    wound_message,
)
from repro.core.locks import LockManager
from repro.core.persistence import TropicStore
from repro.core.pipeline import (
    PIPELINE_POST_FLUSH_PRE_ACK,
    PIPELINE_PRE_FLUSH,  # noqa: F401 - re-exported for the fault matrix
    PIPELINE_WINDOW_CRASH,  # noqa: F401 - re-exported for the fault matrix
    CommitPipeline,
    SealedStep,
)
from repro.core.procedures import ProcedureRegistry
from repro.core.recovery import recover_state
from repro.core.scheduler import FIFO, TodoQueue
from repro.core.sharding import ShardRouter
from repro.core.signals import KILL, SignalBoard, TERM
from repro.core.simulation import LogicalExecutor
from repro.core.twopc import (
    TwoPCLog,
    shards_touched,
    split_log,
    split_rwset,
)
from repro.core.txn import ExecutionLog, ReadWriteSet, Transaction, TransactionState
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel

#: Named crash edges of the controller main loop beyond the generic store/
#: queue boundaries (see repro.testing.faults): the dispatch-loss window
#: between the group-commit flush and the phyQ put_many, and the protocol
#: edges of cross-shard two-phase commit — the four prepare/decision edges
#: plus the three wound-wait edges of concurrent prepares.  A ``fault_hook``
#: (test harness only) receives these names and may raise to model a
#: process death at that exact edge.
PRE_DISPATCH = "post-flush-pre-dispatch"
TWOPC_PRE_PREPARE = "2pc-pre-prepare"
TWOPC_POST_PREPARE = "2pc-post-prepare"
TWOPC_PRE_DECISION = "2pc-pre-decision"
TWOPC_POST_DECISION = "2pc-post-decision"
#: Wound-wait edges: before any wound mutation is durable (the victim's
#: successor presumed-aborts it), after the wound's abort record + lock
#: release are durable but before the retry requeue, and a coordinator
#: entering the prepare fan-out while other cross-shard transactions are
#: already in flight on the same shard.
TWOPC_PRE_WOUND = "2pc-pre-wound"
TWOPC_POST_WOUND = "2pc-post-wound"
TWOPC_CONCURRENT_PREPARE = "2pc-concurrent-prepare"

#: Vote-no reason that triggers a coordinator retry instead of an abort.
_REASON_CONFLICT = "lock-conflict"

#: Wound-backoff cooldowns are expressed in *scheduling passes*, not wall
#: time: inline test drivers and chaos scenarios step controllers to
#: quiescence with no clock advancing, so a time-based backoff would
#: either spin or deadlock them.  The seeded RetryPolicy's jittered delay
#: is mapped onto a pass count (delay / base_delay, capped) — identical
#: growth curve, deterministic under a fixed seed.
_MAX_WOUND_COOLDOWN_PASSES = 16


class Controller:
    """A controller replica.  Only the elected leader executes transactions."""

    def __init__(
        self,
        name: str,
        config: TropicConfig,
        store: TropicStore,
        input_queue: DistributedQueue,
        phy_queue: DistributedQueue,
        schema: ModelSchema,
        procedures: ProcedureRegistry,
        clock: Clock | None = None,
        on_complete: Callable[[Transaction], None] | None = None,
        shard_id: int = 0,
        router: ShardRouter | None = None,
        peer_queues: dict[int, DistributedQueue] | None = None,
        twopc: TwoPCLog | None = None,
        fault_hook: Callable[[str], None] | None = None,
    ):
        self.name = name
        #: Index of the data-model shard this replica serves.  All of the
        #: controller's persistent state (store, queues, election) is
        #: namespaced per shard by the platform; the lock domain and todoQ
        #: below are therefore shard-local by construction.
        self.shard_id = shard_id
        self.config = config
        self.store = store
        self.input_queue = input_queue
        self.phy_queue = phy_queue
        self.schema = schema
        self.procedures = procedures
        self.clock = clock or RealClock()
        self.on_complete = on_complete
        #: Cross-shard two-phase commit wiring (sharded deployments only):
        #: the shard router (authoritative participant resolution from the
        #: simulated read/write set), the peer shards' inputQs for
        #: prepare/vote/decision traffic, and the global decision log.
        self.router = router
        self.peer_queues = dict(peer_queues or {})
        self.twopc = twopc
        #: Test-harness hook receiving named crash edges (see PRE_DISPATCH
        #: and the TWOPC_* constants); may raise to model a process death.
        self.fault_hook = fault_hook
        #: Wound-wait soft state.  The seeded backoff policy prices the
        #: cooldown (in scheduling passes) a wounded transaction sits out
        #: before re-preparing; seeding by shard keeps interleavings
        #: reproducible.  ``_wounds_sent`` dedupes cross-shard wound
        #: requests per (requester, victim) so a blocked requester polling
        #: the conflict does not flood the victim's coordinator; both are
        #: soft state — a failover forgets them at the cost of one
        #: duplicate (idempotent) wound message or a restarted backoff.
        self._wound_backoff = RetryPolicy(seed=shard_id)
        self._wounds_sent: dict[str, set[str]] = {}

        self.model = DataModel()
        self.constraint_engine = ConstraintEngine(schema)
        self.executor = LogicalExecutor(self.model, schema, procedures, self.constraint_engine)
        self.lock_manager = LockManager()
        self.todo = TodoQueue(config.scheduler_policy)
        self.outstanding: dict[str, Transaction] = {}
        self.signals = SignalBoard(store)

        self.busy = Stopwatch(self.clock)
        self.recovered = False
        self.applied_since_checkpoint = 0
        #: Leadership generation stamp for dispatch markers and execute
        #: messages; bumped (durably) at every takeover.
        self.dispatch_epoch = 0
        #: phyQ dispatches deferred until the pending group commit makes
        #: the corresponding STARTED states durable.
        self._dispatch_buffer: list[str] = []
        #: 2PC protocol messages (prepare/vote/decision) deferred until the
        #: states they presuppose are durable — a participant must never
        #: see a prepare whose PREPARING record could still be lost, and a
        #: vote must never precede its durable prepare record.
        self._outbound: list[tuple[int, dict[str, Any]]] = []
        #: completion notifications deferred until the terminal states are
        #: durable (see _notify).
        self._notify_buffer: list[Transaction] = []
        #: Signal-board snapshot refreshed once per step (one listing
        #: round-trip instead of one read per scheduled transaction).
        self._signals_present: set[str] | None = None
        #: Serialises the step loop with cross-thread mutations
        #: (send_kill / send_term).  With group-commit batching, a direct
        #: store write racing a pending batch could be overwritten when
        #: the batch flushes (e.g. a kill's ABORTED document clobbered by
        #: the buffered STARTED document); the mutex restores the seed's
        #: sequential ordering.
        self._op_mutex = traced(threading.RLock(), "Controller._op_mutex")
        #: Pipelined group commit (``config.pipeline_depth``): each step's
        #: write batch is sealed — together with its deferred phyQ
        #: dispatches, 2PC fan-out, notifications and inputQ acks — into a
        #: bounded in-flight window; the window commits as one multi and
        #: only then are the sealed effects applied, preserving
        #: ack-after-durable / STARTED-durable-before-dispatch at any
        #: depth.  Depth 1 reproduces the classic serial loop exactly.
        self._pipeline = CommitPipeline(
            kv=store.kv,
            depth=config.pipeline_depth,
            commit=store.commit_batches,
            effects=self._apply_sealed_effects,
            fault=self._fault,
        )
        self.stats: dict[str, int] = {
            "accepted": 0,
            "committed": 0,
            "aborted_logical": 0,
            "aborted_physical": 0,
            "failed": 0,
            "deferred": 0,
            "killed": 0,
            "checkpoints": 0,
            "input_batches": 0,
            "messages_handled": 0,
            "redispatched": 0,
            "cross_shard_prepares": 0,
            "cross_shard_prepared": 0,
            "cross_shard_committed": 0,
            "cross_shard_aborted": 0,
            "cross_shard_collapsed": 0,
            "cross_shard_upgrades": 0,
            "cross_shard_wounded": 0,
            "cross_shard_wounds_sent": 0,
            "cross_shard_waits": 0,
            "foreign_write_rejects": 0,
            "foreign_write_pins": 0,
            "prepare_timeouts": 0,
            "twopc_decisions_gced": 0,
            "token_acks": 0,
        }

    # ------------------------------------------------------------------
    # State restoration (leader takeover, §2.3)
    # ------------------------------------------------------------------

    def recover(self) -> None:
        """Rebuild logical state from the persistent store.

        Called when this replica becomes leader (including the very first
        leader).  Idempotent: calling it again simply rebuilds the same
        state from the store.
        """
        state = recover_state(
            self.store, self.schema, self.procedures, self.config, self.clock
        )
        self.model = state.model
        self.constraint_engine = ConstraintEngine(self.schema)
        self.executor = LogicalExecutor(
            self.model, self.schema, self.procedures, self.constraint_engine
        )
        self.lock_manager = state.lock_manager
        self.todo = state.todo
        self.outstanding = state.outstanding
        self.applied_since_checkpoint = len(state.replayed_committed)
        self._dispatch_buffer = []
        self._notify_buffer = []
        self._outbound = []
        self._wounds_sent = {}
        # A fresh leadership starts with an empty commit window; anything
        # sealed before the failover is lost exactly like a dying leader's
        # buffered group commit (the unacked messages re-deliver).
        self._pipeline.clear()
        # Another leader may have rewritten transaction documents since
        # this replica last persisted them.
        self.store.reset_fragment_cache()
        # The rebuilt model is conservatively all-dirty, so the first
        # checkpoint after a failover is a full one.
        self.model.mark_all_dirty()
        # Every dispatch of this leadership carries a fresh epoch.
        self.dispatch_epoch = self.store.bump_dispatch_epoch()
        # Resolve cross-shard transactions caught mid-protocol, then
        # re-dispatch STARTED transactions whose execute message was lost
        # in the flush->put_many crash window.
        if self.twopc is not None:
            self._recover_two_phase(state)
        self._redispatch_lost()
        # Only now is recovery complete.  The flag must be set *last*: a
        # transient coordination fault anywhere above leaves it False, so
        # the next step re-runs the whole (idempotent) procedure.  Were it
        # set earlier, a leader interrupted before the presumed-abort
        # decisions of _recover_two_phase were durable would resume normal
        # message handling and could commit a PREPARING coordinator it
        # never simulated — acknowledging effects its model does not hold.
        self.recovered = True

    def demote(self) -> None:
        """Drop leader-only soft state when losing leadership."""
        self.recovered = False
        self.outstanding = {}
        self.lock_manager = LockManager()
        self.todo = TodoQueue(self.config.scheduler_policy)
        self._dispatch_buffer = []
        self._notify_buffer = []
        self._outbound = []
        self._signals_present = None
        self._wounds_sent = {}
        self._pipeline.clear()
        self.store.reset_fragment_cache()

    # ------------------------------------------------------------------
    # Failover resolution (2PC outcomes, lost dispatches)
    # ------------------------------------------------------------------

    def _recover_two_phase(self, state: "Any") -> None:
        """Resolve cross-shard transactions the failed leader left
        mid-protocol.  All writes here are direct (no batch is open): each
        is individually required to be durable before the next step.
        """
        now = self.clock.now()
        # Re-key any decision records this shard coordinated that are
        # still under the legacy flat layout (pre per-coordinator keys),
        # so the GC sweeps below only ever list this shard's directory.
        self.twopc.migrate_flat_decisions(self.shard_id)
        # Coordinators that died during the prepare phase: presumed abort.
        # The decision record is written first so participants holding
        # prepare records resolve immediately instead of waiting.
        for txn in state.preparing:
            self.twopc.decide(
                txn.txid, DECISION_ABORT, self.shard_id, txn.participants
            )
            txn.error = "presumed abort: coordinator failed during prepare"
            txn.mark(TransactionState.ABORTED, now)
            self.store.save_transaction(txn)
            self._send_decisions(txn, DECISION_ABORT, direct=True)
            self.stats["cross_shard_aborted"] += 1
            self._notify(txn)
        # Prepared participants: the decision log is the oracle.  With no
        # decision yet, re-send the (possibly lost) yes vote and keep the
        # prepare record + locks; _resolve_prepared polls the log until
        # the coordinator (or its successor) decides.
        for txn in state.prepared:
            decision = self.twopc.decision(txn.txid, txn.coordinator)
            if decision == DECISION_COMMIT:
                self._commit_participant(txn)
            elif decision == DECISION_ABORT:
                self._abort_participant(txn)
            elif txn.coordinator is not None:
                # repro: allow(ack-before-flush) -- recovery path: the prepare record it re-votes for was durable before the crash
                self._send_peer(
                    txn.coordinator,
                    vote_message(txn.txid, self.shard_id, VOTE_YES, txn.defer_count),
                )
        # Coordinators that died between logging a commit decision and
        # completing their own cleanup: finish the commit (the physical
        # outcome is already decided; effects were re-applied as in-flight
        # state by recover_state).
        for txid, txn in list(self.outstanding.items()):
            if not (txn.is_cross_shard and txn.coordinator == self.shard_id):
                continue
            if txn.state is not TransactionState.STARTED:
                continue
            decision = self.twopc.decision(txid, self.shard_id)
            if decision == DECISION_COMMIT:
                self._finish_cross_shard_commit(txn, check_applied=True)
            elif decision == DECISION_ABORT:
                # An abort decision with the document still STARTED can
                # only come from an earlier explicit abort whose document
                # write was lost; converge on the decision.
                self.executor.rollback(txn)
                self._mark_dirty_writes(txn)
                txn.error = txn.error or "cross-shard abort"
                txn.mark(TransactionState.ABORTED, now)
                self.store.save_transaction(txn)
                self.store.clear_claim(txid)
                self.lock_manager.release_all(txid)
                self._send_decisions(txn, DECISION_ABORT, direct=True)
                self.outstanding.pop(txid, None)
                self.stats["cross_shard_aborted"] += 1
                self._notify(txn)
        # Pre-upgrade builds serialised cross-shard prepares through a
        # fleet-wide ticket znode; a store that last ran one of those may
        # still hold it.  Wound-wait needs no admission control, so the
        # stale znode is deleted as a clean no-op (idempotent; see the
        # ticket-compat test in tests/integration/test_twopc.py).
        self.twopc.clear_legacy_ticket()

    def _redispatch_lost(self) -> None:
        """Close the dispatch-loss window: re-enqueue execute messages for
        STARTED transactions that have neither a pending phyQ item nor a
        worker claim record.  The previous leader committed their STARTED
        state (and dispatch marker) but died before the phyQ ``put_many``.
        Safe against double execution: a worker that already claimed the
        transaction left a claim record, and the claim create-if-absent
        makes any residual duplicate message inert."""
        pending: set[str] = set()
        for _, item in self.phy_queue.take_many(1_000_000):
            if item.get("kind") == KIND_EXECUTE:
                pending.add(item["txid"])
        lost = [
            txid
            for txid, txn in self.outstanding.items()
            if txn.state is TransactionState.STARTED
            and txid not in pending
            and self.store.load_claim(txid) is None  # no worker owns it
        ]
        if not lost:
            return
        self.store.stamp_dispatch_epoch(self.dispatch_epoch)
        # repro: allow(ack-before-flush) -- recovery path: the STARTED documents being re-dispatched were committed by the previous leader
        self.phy_queue.put_many(
            [execute_message(txid, self.dispatch_epoch) for txid in lost]
        )
        self.stats["redispatched"] += len(lost)

    # ------------------------------------------------------------------
    # Main loop step
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Drain a batch of inputQ messages and run one scheduling pass.

        The step is the *CPU stage* of the pipelined write path: all store
        writes issued while handling the batch — acceptance and terminal
        state transitions, applied-log appends, signal clears — are
        buffered into one sealed :class:`~repro.core.pipeline.SealedStep`,
        together with every effect that must wait for their durability
        (phyQ dispatches, 2PC fan-out, notifications, inputQ acks).  The
        *I/O stage* — the group-commit flush and those deferred effects —
        runs when the in-flight window reaches ``config.pipeline_depth``
        (immediately, at the default depth 1) or when the loop goes idle.
        Messages are acknowledged only after their covering commit: a
        leader crash mid-window re-delivers every unacked message to the
        next leader, which handles each idempotently (§2.3).

        Returns True if any work was performed.  All CPU time spent here is
        charged to the busy stopwatch, which backs the controller CPU
        utilisation measurements of Figure 4.
        """
        if not self.recovered:
            self.recover()
        did_work = False
        # repro: allow(blocking-under-lock) -- the op mutex IS the step loop's serialisation point: holding it across the batch's coordination ops restores the seed's sequential per-shard ordering that group commit would otherwise race
        with self.busy, self._op_mutex:
            try:
                taken = self.input_queue.take_many(
                    self.config.input_batch_size,
                    exclude=self._pipeline.pending_acks,
                )
                if taken or not self.todo.is_empty():
                    # One listing round-trip amortised over the batch; idle
                    # polls (no messages, nothing queued) skip the board
                    # entirely — _signal_of falls back to direct reads when
                    # the snapshot is None.
                    self._signals_present = self.signals.signalled()
                else:
                    self._signals_present = None
                kv = self.store.kv
                kv.begin_batch()
                try:
                    for _, item in taken:
                        self._handle_message(item)
                    if taken:
                        did_work = True
                        self.stats["input_batches"] += 1
                        self.stats["messages_handled"] += len(taken)
                    if self._resolve_prepared():
                        did_work = True
                    if self._expire_preparing():
                        did_work = True
                    if self.schedule():
                        did_work = True
                    if self._dispatch_buffer:
                        # Stamp the covering commit with the dispatch epoch
                        # (coalesces to one sub-op per flush).
                        self.store.stamp_dispatch_epoch(self.dispatch_epoch)
                except BaseException:
                    # Pre-pipeline, the batch context manager still flushed
                    # partial writes while an exception unwound the step;
                    # preserve that by committing the window plus this
                    # step's partial batch, dropping the deferred effects
                    # (unacked messages re-deliver; lost dispatches are
                    # re-dispatched on recovery).  A commit failure — or an
                    # armed pre-commit crash — propagates from here exactly
                    # as an unwind-flush failure did.
                    self._pipeline.abort_step()
                    raise
                self._pipeline.seal(
                    SealedStep(
                        batch=kv.detach_batch(),
                        dispatches=self._dispatch_buffer,
                        dispatch_epoch=self.dispatch_epoch,
                        outbound=self._outbound,
                        notifications=self._notify_buffer,
                        acks=[name for name, _ in taken],
                    )
                )
                self._dispatch_buffer = []
                self._outbound = []
                self._notify_buffer = []
                # I/O stage: flush when the window is full — always, at
                # depth 1 — or when the loop has gone idle (nothing new to
                # overlap the in-flight window with).  Draining deferred
                # dispatches/acks counts as progress for run-until-idle
                # drivers.
                if self._pipeline.should_flush() or not did_work:
                    if self._pipeline.flush() and not did_work:
                        did_work = True
            except Exception:
                # A failed step may have lost buffered store writes while
                # the in-memory transitions survived (or vice versa).  Soft
                # state is cheap to rebuild and the consumed messages were
                # not acked, so abandon it and re-recover from the store —
                # exactly the §2.3 failover contract, applied to the same
                # replica.
                self.demote()
                raise
        return did_work

    def run_until_idle(self, max_steps: int = 1_000_000) -> int:
        """Step until no more progress can be made (used by the inline runtime)."""
        steps = 0
        while steps < max_steps and self.step():
            steps += 1
        return steps

    # ------------------------------------------------------------------
    # Message handling (Steps 2 and 5 of Figure 2)
    # ------------------------------------------------------------------

    def _handle_message(self, item: dict[str, Any]) -> None:
        kind = item.get("kind")
        if kind == KIND_REQUEST:
            self._accept(item)
        elif kind == KIND_RESULT:
            self._cleanup(item)
        elif kind == KIND_PREPARE:
            self._handle_prepare(item)
        elif kind == KIND_VOTE:
            self._handle_vote(item)
        elif kind == KIND_DECISION:
            self._handle_decision(item)
        elif kind == KIND_WOUND:
            self._handle_wound(item)

    def _accept(self, item: dict[str, Any]) -> None:
        """Step 2: accept a client request into todoQ."""
        txid = item["txid"]
        txn = self.store.load_transaction(txid)
        if txn is None:
            return
        if txn.state is not TransactionState.INITIALIZED:
            # Duplicate delivery after a failover; recovery already placed
            # the transaction where it belongs.
            return
        txn.mark(TransactionState.ACCEPTED, self.clock.now())
        self.store.save_transaction(txn, dirty_fields=())
        self.todo.push_back(txn)
        self.stats["accepted"] += 1

    def _cleanup(self, item: dict[str, Any]) -> None:
        """Step 5: commit bookkeeping or logical rollback after physical execution."""
        txid = item["txid"]
        txn = self.outstanding.pop(txid, None)
        if txn is None:
            txn = self.store.load_transaction(txid)
        if txn is None or txn.is_terminal:
            return  # duplicate result (idempotent cleanup)
        if txn.is_cross_shard and txn.coordinator == self.shard_id:
            self._cleanup_cross_shard(txn, item)
            return
        outcome = item.get("outcome")
        if outcome == OUTCOME_COMMITTED:
            self.store.record_applied(txid)
            txn.mark(TransactionState.COMMITTED, self.clock.now())
            self.store.save_transaction(txn, dirty_fields=())
            # The worker's claim record is garbage-collected wholesale at
            # the next quiesce-point checkpoint (clear_claims), keeping
            # this per-commit path free of cleanup deletes.
            self._mark_dirty_writes(txn)
            self.stats["committed"] += 1
            self.applied_since_checkpoint += 1
            if self.applied_since_checkpoint >= self.config.checkpoint_every:
                self.checkpoint()  # no-op unless at a quiesce point
        else:
            # 5B: roll back the logical layer via the undo log.
            self.executor.rollback(txn)
            # Logical undo is best-effort; conservatively treat the touched
            # subtrees as diverged from the last checkpoint.
            self._mark_dirty_writes(txn)
            txn.error = item.get("error")
            if outcome == OUTCOME_ABORTED:
                txn.mark(TransactionState.ABORTED, self.clock.now())
                self.stats["aborted_physical"] += 1
            else:
                txn.mark(TransactionState.FAILED, self.clock.now())
                self.stats["failed"] += 1
                self._fence(item.get("failed_path"))
            self.store.save_transaction(txn, dirty_fields=())
        self.lock_manager.release_all(txid)
        # Clearing a signal that was never sent is a store delete per
        # commit; the per-step snapshot knows whether one exists (all
        # sends go through send_term/send_kill under the op mutex, which
        # also add to the live snapshot).
        present = self._signals_present
        if present is None or txid in present:
            self.signals.clear(txid)
        self._notify(txn)

    def _signal_of(self, txid: str) -> str | None:
        """Pending signal for ``txid``, consulting the per-step snapshot to
        avoid a store read for the (overwhelmingly common) unsignalled
        case.  Falls back to a direct read when no snapshot is active."""
        snapshot = self._signals_present
        if snapshot is not None and txid not in snapshot:
            return None
        return self.signals.get(txid)

    def _mark_dirty_writes(self, txn: Transaction) -> None:
        """Mark the subtrees in ``txn``'s write set dirty for incremental
        checkpointing.  The write set is the same authority the lock
        manager trusts, so it covers attribute mutations performed inside
        action simulation functions that bypass the DataModel API."""
        for path in txn.rwset.writes:
            self.model.mark_dirty(path)

    def _fence(self, path: str | None) -> None:
        """Mark a subtree inconsistent after an undo failure (§4)."""
        if not path:
            return
        try:
            self.model.mark_inconsistent(path)
        except UnknownPathError:
            return
        fenced = {str(p) for p in self.model.inconsistent_paths()}
        self.store.save_inconsistent_paths(sorted(fenced))

    def _notify(self, txn: Transaction) -> None:
        """Queue (or deliver) a completion notification.

        While a group-commit batch is open, the terminal state is not yet
        durable, so the notification is buffered and delivered only after
        the batch flushes — a client must never observe an outcome the
        store could still lose to a crash.

        This is also the single point where every client-visible terminal
        outcome passes, so the idempotency-token ack entry is written here:
        the ``tokens/<token>`` put joins the same group commit as the
        terminal document (or is a direct write on recovery paths, where
        the terminal state is already durable), making the ack index
        exactly as durable as the ack itself.
        """
        if txn.is_terminal and txn.idempotency_token is not None:
            self.store.record_token(txn.idempotency_token, txn.txid, txn.state.value)
            self.stats["token_acks"] += 1
        if self.store.kv.in_batch():
            self._notify_buffer.append(txn)
            return
        self._deliver_notification(txn)

    def _deliver_notification(self, txn: Transaction) -> None:
        if self.on_complete is not None:
            try:
                self.on_complete(txn)
            except Exception:  # noqa: BLE001 - observer bugs must not affect cleanup
                pass

    def _flush_notifications(self) -> None:
        while self._notify_buffer:
            self._deliver_notification(self._notify_buffer.pop(0))

    # ------------------------------------------------------------------
    # Scheduling and logical execution (Step 3 of Figure 2)
    # ------------------------------------------------------------------

    def schedule(self) -> bool:
        """One scheduling pass over todoQ; returns True if any transaction
        was started or aborted.

        Every currently-runnable transaction is dispatched in this single
        pass.  Dispatches to phyQ are buffered into the step's sealed
        batch and sent only after its covering group commit, so a worker
        can never observe a transaction whose STARTED state is not yet
        durable.
        """
        progressed = False
        deferred: list[Transaction] = []
        pending = self.todo.transactions()
        for txn in pending:
            if txn.wound_cooldown > 0:
                # A wounded transaction sits out its backoff without
                # leaving (or blocking) the queue: skipping it must not
                # trigger the FIFO blocked-head break — the backoff exists
                # precisely so the older wounding transaction (and
                # unrelated traffic) can run ahead of the retry.  The
                # decrement counts as progress: cooldowns strictly
                # decrease, so run-until-idle drivers keep stepping until
                # the retry itself runs instead of quiescing early.
                txn.wound_cooldown -= 1
                progressed = True
                continue
            if self.todo.remove(txn.txid) is None:
                continue
            disposition = self._try_run(txn)
            if disposition == "deferred":
                deferred.append(txn)
                if self.todo.policy == FIFO:
                    break  # a blocked head blocks the FIFO queue
            else:
                progressed = True
        for txn in reversed(deferred):
            self.todo.push_front(txn)
        return progressed

    def _apply_sealed_effects(self, sealed: SealedStep) -> None:
        """Apply one sealed step's post-durability effects (the pipeline's
        I/O stage calls this after the step's covering flush): deliver the
        buffered completion notifications, hand the runnable transactions
        to the physical workers in one queue write, fan the buffered 2PC
        messages out to peer shards, and finally acknowledge the consumed
        inputQ messages."""
        if sealed.dispatches:
            # The dispatch-loss window: STARTED states (and their dispatch
            # markers) are durable, the execute messages are not yet in
            # phyQ.  Recovery closes it via _redispatch_lost.
            self._fault(PRE_DISPATCH)
        for txn in sealed.notifications:
            self._deliver_notification(txn)
        if sealed.dispatches:
            # repro: allow(ack-before-flush) -- post-flush callback: CommitPipeline.flush invokes this only after commit_batches made the sealed step durable
            self.phy_queue.put_many(
                [
                    execute_message(txid, sealed.dispatch_epoch)
                    for txid in sealed.dispatches
                ]
            )
        # repro: allow(ack-before-flush) -- post-flush callback: the covering commit_batches already ran in CommitPipeline.flush
        self._send_outbound(sealed.outbound)
        if sealed.acks:
            # The re-delivery window: the step's effects are applied but
            # its messages are still on the queue; the successor (or a
            # later step of this leader) re-handles them idempotently.
            self._fault(PIPELINE_POST_FLUSH_PRE_ACK)
            # repro: allow(ack-before-flush) -- post-flush callback: acks run strictly after the covering commit_batches in CommitPipeline.flush
            self.input_queue.ack_many(sealed.acks)

    def _drain_pipeline(self) -> None:
        """Force the in-flight commit window down to empty.  Callers that
        write to the store outside the step loop (term/kill signalling,
        checkpointing) must drain first so a later window flush cannot
        clobber their direct writes."""
        if not self._pipeline.window:
            return
        try:
            self._pipeline.flush()
        except Exception:
            self.demote()
            raise

    def _flush_outbound(self) -> None:
        if not self._outbound:
            return
        batch, self._outbound = self._outbound, []
        # repro: allow(ack-before-flush) -- callers (kill/recovery paths) guarantee the states these messages presuppose are already durable
        self._send_outbound(batch)

    def _send_outbound(self, batch: list[tuple[int, dict[str, Any]]]) -> None:
        """Deliver buffered 2PC messages to peer shard inputQs.  Callers
        guarantee the states those messages presuppose are durable.  The
        named crash edges fire once per message kind present: a crash here
        models a leader dying after its commit but before the fan-out."""
        if not batch:
            return
        fired: set[str] = set()
        edges = {
            KIND_PREPARE: TWOPC_PRE_PREPARE,
            KIND_VOTE: TWOPC_POST_PREPARE,
            KIND_DECISION: TWOPC_POST_DECISION,
        }
        for shard, message in batch:
            edge = edges.get(message.get("kind"))
            if edge is not None and edge not in fired:
                fired.add(edge)
                self._fault(edge)
            self._peer_queue(shard).put(message)

    def _peer_queue(self, shard: int) -> DistributedQueue:
        if shard == self.shard_id:
            return self.input_queue
        queue = self.peer_queues.get(shard)
        if queue is None:
            raise ReproError(
                f"controller {self.name} (shard {self.shard_id}) has no "
                f"route to shard {shard}'s inputQ; cross-shard 2PC requires "
                f"peer queue wiring"
            )
        return queue

    def _send_peer(self, shard: int, message: dict[str, Any]) -> None:
        """Send one protocol message immediately (recovery paths, where no
        batch is open and the presupposed state is already durable)."""
        self._peer_queue(shard).put(message)

    def _send_decisions(
        self, txn: Transaction, decision: str, direct: bool = False
    ) -> None:
        """Fan a decision out to every participant except this shard."""
        for shard in txn.participants:
            if shard == self.shard_id:
                continue
            message = decision_message(txn.txid, decision, txn.defer_count)
            if direct:
                # repro: allow(ack-before-flush) -- direct mode is used only on recovery/kill paths where the decision record is already durable
                self._send_peer(shard, message)
            else:
                self._outbound.append((shard, message))

    def _fault(self, point: str) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(point)

    def _try_run(self, txn: Transaction) -> str:
        """Simulate, check constraints and locks, and dispatch one transaction.

        Returns ``"started"``, ``"aborted"`` or ``"deferred"`` (3A/3B/3C in
        Figure 2).
        """
        if self._signal_of(txn.txid) == KILL:
            txn.error = "killed before execution"
            txn.mark(TransactionState.ABORTED, self.clock.now())
            self.store.save_transaction(txn)
            self.stats["killed"] += 1
            self._notify(txn)
            return "aborted"

        if txn.is_cross_shard and txn.coordinator == self.shard_id:
            return self._try_run_cross_shard(txn)

        outcome = self.executor.simulate(txn)
        if not outcome.ok:
            # 3A: constraint violation (or procedure error) — abort.  The
            # simulation was rolled back, but logical undo is best-effort,
            # so conservatively mark the touched subtrees dirty.
            self._mark_dirty_writes(txn)
            txn.error = outcome.error
            txn.mark(TransactionState.ABORTED, self.clock.now())
            self.store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
            self.stats["aborted_logical"] += 1
            self._notify(txn)
            return "aborted"

        disposition = self._check_foreign_writes(txn)
        if disposition is not None:
            return disposition

        conflict = self.lock_manager.try_acquire(txn.txid, txn.rwset)
        if conflict is not None:
            # 3B: resource conflict — undo the simulation and defer.
            return self._defer(txn)

        # 3C: runnable — keep the simulated changes, dispatch to phyQ
        # (buffered until the STARTED state is group-committed).
        self._mark_started(txn, dirty_fields=("log", "rwset", "result"))
        return "started"

    def _check_foreign_writes(self, txn: Transaction) -> str | None:
        """Guard a single-shard-routed transaction whose *simulation*
        touched paths other shards own.

        Routing is argument-path based, but stored procedures may write
        paths absent from their arguments (auto-placement): the submission
        looked single-shard while the simulated read/write set spans
        shards.  Applying such a simulation locally would silently land
        the foreign writes on this shard's bootstrap-frozen copies.
        Policy-dependent handling:

        * ``2pc`` — upgrade in place: stamp this shard as coordinator and
          re-enter the scheduler, so the next pass runs the full two-phase
          protocol with participants computed from the simulated rwset;
        * ``reject`` — abort with an explicit error (the policy promised
          no cross-shard effects; corrupting frozen copies breaks it);
        * ``pin`` (deprecated) — warn and proceed, recording the hazard in
          the stats, mirroring pin's documented degraded visibility.

        Returns a disposition string when it consumed the transaction,
        ``None`` to continue the ordinary single-shard dispatch.
        """
        if self.router is None:
            return None
        foreign = shards_touched(
            self.router.map, txn.log, txn.rwset, self.shard_id
        ) - {self.shard_id}
        if not foreign:
            return None
        policy = self.router.policy
        if policy == "2pc" and self.twopc is not None:
            txn.coordinator = self.shard_id
            txn.participants = sorted(foreign | {self.shard_id})
            self.stats["cross_shard_upgrades"] += 1
            # The scheduler re-queues deferred transactions; the next pass
            # sees the coordinator stamp and runs _try_run_cross_shard.
            return self._defer(txn, "coordinator", "participants")
        if policy == "reject":
            self.executor.rollback(txn)
            self._mark_dirty_writes(txn)
            txn.error = (
                f"cross-shard writes under cross_shard_policy='reject': the "
                f"simulation of {txn.procedure!r} touched paths owned by "
                f"shards {sorted(foreign)} that its arguments never named; "
                f"applying it on shard {self.shard_id} would corrupt "
                f"bootstrap-frozen foreign copies silently"
            )
            txn.mark(TransactionState.ABORTED, self.clock.now())
            self.store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
            self.stats["aborted_logical"] += 1
            self.stats["foreign_write_rejects"] += 1
            self._notify(txn)
            return "aborted"
        # pin (deprecated): the effects stay on this shard and are merged
        # into read views via the pinned-unit preference; surface the
        # hazard instead of staying silent.
        self.stats["foreign_write_pins"] += 1
        warnings.warn(
            f"transaction {txn.txid} ({txn.procedure}) simulated writes on "
            f"shards {sorted(foreign)} under the deprecated 'pin' policy: "
            f"the owners' copies stay bootstrap-frozen and the effects are "
            f"visible only through this shard's model",
            RuntimeWarning,
            stacklevel=2,
        )
        return None

    def _defer(self, txn: Transaction, *extra_dirty: str) -> str:
        """Undo the simulation and put the transaction back for a retry
        (3B): shared by the local conflict path and every cross-shard
        defer (wound-wait wait/wound, local conflict, participant
        conflict)."""
        self.executor.rollback(txn)
        self._mark_dirty_writes(txn)
        txn.defer_count += 1
        txn.mark(TransactionState.DEFERRED, self.clock.now())
        self.store.save_transaction(
            txn, dirty_fields=("log", "rwset", "result", *extra_dirty)
        )
        self.stats["deferred"] += 1
        return "deferred"

    def _mark_started(self, txn: Transaction, dirty_fields: tuple = ()) -> None:
        """Persist the STARTED state (with its dispatch marker riding the
        same group commit) and buffer the phyQ dispatch."""
        txn.mark(TransactionState.STARTED, self.clock.now())
        self.store.save_transaction(txn, dirty_fields=dirty_fields)
        self._mark_dirty_writes(txn)
        self.outstanding[txn.txid] = txn
        self._dispatch_buffer.append(txn.txid)

    # ------------------------------------------------------------------
    # Cross-shard two-phase commit (see repro.core.twopc)
    # ------------------------------------------------------------------

    def _try_run_cross_shard(self, txn: Transaction) -> str:
        """Coordinator side of phase 1: simulate, determine the true
        participant set, acquire the local locks under wound-wait, persist
        the PREPARING state and fan prepare requests out to participants.

        Disjoint cross-shard prepares run fully in parallel; on a lock
        conflict the *txid order* decides locally (txids are zero-padded
        monotonic counters, so lexicographic order is age): an older
        transaction wounds a younger prepare-phase holder out of its locks
        (the victim aborts its attempt via the presumed-abort machinery
        and retries after a seeded backoff), while a younger transaction
        waits for the older holder to finish.  The oldest active
        transaction is never wounded and never waits on 2PC state, so it
        always progresses — no deadlock, no livelock, and each transaction
        is wounded at most once per older concurrent transaction per
        attempt.

        When the simulation's read/write set collapses onto this shard the
        transaction silently downgrades to the ordinary single-shard 3C
        dispatch (the ``pin`` fast path).
        """
        if self.twopc is None or self.router is None:
            txn.error = (
                "cross-shard transaction reached a controller without 2PC "
                "wiring (router/peer queues/decision log)"
            )
            txn.mark(TransactionState.ABORTED, self.clock.now())
            self.store.save_transaction(txn)
            self.stats["aborted_logical"] += 1
            self._notify(txn)
            return "aborted"

        outcome = self.executor.simulate(txn)
        if not outcome.ok:
            # 3A equivalent: abort before any participant is contacted.
            self._mark_dirty_writes(txn)
            txn.error = outcome.error
            txn.mark(TransactionState.ABORTED, self.clock.now())
            self.store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
            self.stats["aborted_logical"] += 1
            self._notify(txn)
            return "aborted"

        # The simulated read/write set is the authoritative participant
        # set (procedures may touch paths absent from their arguments).
        shards = shards_touched(self.router.map, txn.log, txn.rwset, self.shard_id)
        if shards <= {self.shard_id}:
            # All participants collapsed onto this shard: fast path.
            txn.participants = []
            conflict = self.lock_manager.try_acquire(txn.txid, txn.rwset)
            if conflict is not None:
                return self._defer(txn, "participants")
            self.stats["cross_shard_collapsed"] += 1
            self._mark_started(
                txn, dirty_fields=("log", "rwset", "result", "participants")
            )
            return "started"
        txn.participants = sorted(shards)

        # Retry entry: a wound leaves a durable abort decision behind (the
        # record is what lets a crashed participant resolve the wounded
        # attempt through the decision log exactly like any abort).  It
        # must be cleared before this fresh attempt prepares, or the
        # participants' decision-log polling would abort the new attempt
        # on sight.  Guarded to ABORT records only — commit decisions are
        # immutable, and only wound-released transactions (never genuinely
        # aborted ones, which are terminal) re-enter this path.
        if txn.defer_count > 0:
            record = self.twopc.decision_record(txn.txid, self.shard_id)
            if record is not None and record.get("decision") == DECISION_ABORT:
                self.twopc.clear_decision(txn.txid, self.shard_id)

        requests = self.lock_manager.requests_for(txn.rwset)
        conflicts = self.lock_manager.find_conflicts(txn.txid, requests)
        if conflicts:
            if self._wound_or_wait(txn.txid, conflicts):
                # A local synchronous wound freed its locks; re-check once
                # (remote wounds resolve asynchronously — defer for those).
                conflicts = self.lock_manager.find_conflicts(txn.txid, requests)
            if conflicts:
                self.stats["cross_shard_waits"] += 1
                return self._defer(txn)
        self.lock_manager.acquire(txn.txid, requests)
        self._wounds_sent.pop(txn.txid, None)

        if any(
            other.txid != txn.txid and other.is_cross_shard
            for other in self.outstanding.values()
        ):
            # Another cross-shard transaction is mid-protocol on this
            # shard while this one enters the prepare fan-out — the
            # concurrency the ticket used to forbid.
            self._fault(TWOPC_CONCURRENT_PREPARE)

        # Durable PREPARING record (rides the step's group commit); the
        # prepare fan-out is buffered until that commit lands.
        txn.votes = {str(self.shard_id): VOTE_YES}
        txn.mark(TransactionState.PREPARING, self.clock.now())
        self.store.save_transaction(
            txn,
            dirty_fields=("log", "rwset", "result", "coordinator", "participants"),
        )
        self._mark_dirty_writes(txn)
        self.outstanding[txn.txid] = txn
        for shard in txn.participants:
            if shard == self.shard_id:
                continue
            self._outbound.append(
                (
                    shard,
                    prepare_message(
                        txn.txid,
                        self.shard_id,
                        txn.participants,
                        txn.defer_count,
                        txn.procedure,
                        split_log(self.router.map, txn.log, shard, self.shard_id),
                        split_rwset(self.router.map, txn.rwset, shard, self.shard_id),
                    ),
                )
            )
        self.stats["cross_shard_prepares"] += 1
        return "started"

    def _handle_prepare(self, item: dict[str, Any]) -> None:
        """Participant side of phase 1: validate the log slice against this
        shard's authoritative subtrees, lock, persist the prepare record,
        and (after the group commit) vote."""
        txid = item["txid"]
        coordinator = int(item["coordinator"])
        attempt = int(item.get("attempt", 0))
        existing = self.store.load_transaction(txid)
        if existing is not None:
            if existing.state is TransactionState.PREPARED:
                if existing.defer_count == attempt:
                    # Duplicate delivery (or coordinator re-sent after its
                    # own failover): repeat the vote idempotently.
                    self._outbound.append(
                        (coordinator, vote_message(txid, self.shard_id, VOTE_YES, attempt))
                    )
                    return
                if existing.defer_count < attempt:
                    # A newer attempt supersedes a stale prepare whose
                    # release message was lost; drop it and fall through
                    # to prepare afresh.
                    self._release_participant(existing)
                else:
                    return  # stale attempt; the coordinator moved on
            elif (
                existing.state is TransactionState.ABORTED
                and existing.defer_count < attempt
            ):
                # A previous attempt was wounded and this shard resolved it
                # through the decision log into a terminal ABORTED prepare
                # record (slice undone, locks released).  A higher-attempt
                # prepare supersedes it — only wound-released attempts ever
                # re-prepare (genuine aborts are terminal on the
                # coordinator and send no further prepares) — so drop the
                # stale record and prepare afresh.
                self.store.delete_transaction(txid)
            elif existing.is_terminal:
                vote = (
                    VOTE_YES
                    if existing.state is TransactionState.COMMITTED
                    else VOTE_NO
                )
                self._outbound.append(
                    (coordinator, vote_message(txid, self.shard_id, vote, attempt))
                )
                return
            else:
                return  # unexpected local state; let recovery reconcile

        txn = Transaction(
            procedure=item.get("procedure", ""),
            args={},
            txid=txid,
            coordinator=coordinator,
            participants=[int(s) for s in item.get("participants") or []],
        )
        txn.defer_count = attempt
        txn.log = ExecutionLog.from_dict(item.get("log") or [])
        txn.rwset = ReadWriteSet.from_dict(item.get("rwset") or {})

        requests = self.lock_manager.requests_for(txn.rwset)
        conflicts = self.lock_manager.find_conflicts(txid, requests)
        if conflicts:
            # Participant-side wound-wait: if the incoming transaction is
            # older than a prepare-phase holder, wound the holder (locally
            # when this shard coordinates it — e.g. the classic reversed-
            # roles livelock, T1 coordinated by A preparing at B while T2
            # coordinated by B prepares at A — or via a wound message to
            # its coordinator).  A local wound may free the locks within
            # this very delivery; otherwise vote no/conflict and let the
            # coordinator's prompt retry find them free.
            if self._wound_or_wait(txid, conflicts):
                conflicts = self.lock_manager.find_conflicts(txid, requests)
            if conflicts:
                self._outbound.append(
                    (
                        coordinator,
                        vote_message(
                            txid, self.shard_id, VOTE_NO, attempt, reason=_REASON_CONFLICT
                        ),
                    )
                )
                return
        self.lock_manager.acquire(txid, requests)
        self._wounds_sent.pop(txid, None)
        error = self._apply_participant_log(txn)
        if error is not None:
            self.lock_manager.release_all(txid)
            self._outbound.append(
                (coordinator, vote_message(txid, self.shard_id, VOTE_NO, attempt, reason=error))
            )
            return

        txn.mark(TransactionState.PREPARED, self.clock.now())
        self.store.save_transaction(txn)
        self._mark_dirty_writes(txn)
        self.outstanding[txid] = txn
        self._outbound.append(
            (coordinator, vote_message(txid, self.shard_id, VOTE_YES, attempt))
        )
        self.stats["cross_shard_prepared"] += 1

    def _apply_participant_log(self, txn: Transaction) -> str | None:
        """Apply a prepare slice to this shard's authoritative model and
        re-check the constraints its writes can influence.  Returns an
        error string (with the partial application undone) or ``None``.

        This is the participant-side validation that makes coordinator
        simulation against possibly-stale foreign copies safe: the owner
        of a subtree is the final authority on whether an action sequence
        is applicable and constraint-clean there."""
        applied: list[Any] = []
        try:
            for record in txn.log:
                node = self.model.get_for_write(record.path)
                action_def = self.schema.get(node.entity_type).get_action(record.action)
                action_def.simulate(self.model, node, *record.args)
                applied.append(record)
        except ReproError as exc:
            self.executor.undo_log(ExecutionLog(list(applied)))
            self._mark_dirty_writes(txn)
            return f"{type(exc).__name__}: {exc}"
        for path in sorted(txn.rwset.writes):
            violations = self.constraint_engine.check_after_write(self.model, path)
            if violations:
                self.executor.undo_log(ExecutionLog(list(applied)))
                self._mark_dirty_writes(txn)
                return f"constraint violation on participant: {violations[0]}"
        return None

    def _handle_vote(self, item: dict[str, Any]) -> None:
        """Coordinator side of the vote tally."""
        txid = item["txid"]
        voter = int(item["shard"])
        attempt = int(item.get("attempt", 0))
        txn = self.outstanding.get(txid)
        if txn is None:
            txn = self.store.load_transaction(txid)
        if txn is None:
            return
        if txn.state is TransactionState.PREPARING and txn.defer_count == attempt:
            if item.get("vote") != VOTE_YES:
                if item.get("reason") == _REASON_CONFLICT:
                    self._retry_cross_shard(txn)
                else:
                    self._abort_cross_shard(
                        txn, f"participant {voter} voted no: {item.get('reason')}"
                    )
                return
            txn.votes[str(voter)] = VOTE_YES
            if all(str(shard) in txn.votes for shard in txn.participants):
                # Phase 1 complete on every shard: dispatch the full log
                # to this shard's physical workers; the commit decision
                # follows the physical outcome (Figure 2, step 5).
                self._mark_started(txn)
            else:
                self.store.save_transaction(txn, dirty_fields=())
        elif txn.state in (TransactionState.ACCEPTED, TransactionState.DEFERRED):
            # A stale yes-vote for an attempt we already walked away from:
            # the participant must drop its prepare record before we retry.
            self._outbound.append(
                (voter, decision_message(txid, DECISION_RELEASE, attempt))
            )
        elif txn.is_terminal:
            decision = (
                DECISION_COMMIT
                if txn.state is TransactionState.COMMITTED
                else DECISION_ABORT
            )
            self._outbound.append((voter, decision_message(txid, decision, attempt)))
        # PREPARING with a different attempt, or STARTED: stale duplicate.

    def _retry_cross_shard(self, txn: Transaction) -> None:
        """A participant's locks were busy: release every shard's prepare
        state for this attempt and retry from todoQ.  The retry is prompt
        (no backoff): the participant already applied wound-wait to the
        blockers, so they are either older transactions about to finish or
        younger ones already being wounded aside."""
        self._send_release(txn)
        self.lock_manager.release_all(txn.txid)
        txn.votes = {}
        self._defer(txn)
        self.outstanding.pop(txn.txid, None)
        self.todo.push_front(txn)

    # -- wound-wait (concurrent prepare admission) ----------------------

    def _wound_or_wait(
        self, requester: str, conflicts: list["Any"]
    ) -> bool:
        """Apply wound-wait to every conflicting lock holder.

        ``requester`` is the txid asking for the locks (a local cross-shard
        coordinator, or a foreign transaction preparing a slice here).  For
        each holder, txid order decides locally — no global state:

        * requester older (lower txid) and the holder is a *local
          PREPARING coordinator* — wound it synchronously (abort the
          attempt, requeue with backoff); returns True so the caller may
          re-check its lock requests in the same pass;
        * requester older and the holder is a *prepared participant* of a
          foreign coordinator — send that coordinator a wound message and
          wait for the release to arrive (deduped per requester/victim);
        * requester older but the holder is STARTED (single-shard, or
          phase 2 of a committed-vote cross-shard transaction) — its
          physical effects may be in flight, so it is past wounding; wait
          for it to complete (it holds no 2PC waits, so it will);
        * requester younger — wait: the older holder progresses first.
        """
        wounded_local = False
        for conflict in conflicts:
            holder_id = conflict.holder
            if requester >= holder_id:
                continue  # requester is younger (or self): wait
            holder = self.outstanding.get(holder_id)
            if holder is None or not holder.is_cross_shard:
                continue  # single-shard STARTED holder: wait for completion
            if (
                holder.state is TransactionState.PREPARING
                and holder.coordinator == self.shard_id
            ):
                self._wound_cross_shard(holder, requester)
                wounded_local = True
            elif (
                holder.state is TransactionState.PREPARED
                and holder.coordinator is not None
                and holder.coordinator != self.shard_id
            ):
                sent = self._wounds_sent.setdefault(requester, set())
                if holder_id not in sent:
                    sent.add(holder_id)
                    self._outbound.append(
                        (
                            holder.coordinator,
                            wound_message(holder_id, requester, self.shard_id),
                        )
                    )
                    self.stats["cross_shard_wounds_sent"] += 1
            # else: STARTED cross-shard (phase 2) — wait.
        if len(self._wounds_sent) > 1024:
            # Soft-state hygiene: entries are popped as their requesters
            # resolve, but a foreign requester that aborts elsewhere can
            # strand one.  Dropping the map wholesale only risks a
            # duplicate wound message, which the coordinator treats
            # idempotently.
            self._wounds_sent.clear()
        return wounded_local

    def _wound_cross_shard(self, txn: Transaction, by: str) -> None:
        """Wound a local PREPARING coordinator: an older transaction
        (``by``) is blocked by its prepare-phase locks, and txid order says
        the younger transaction yields.

        The sequence is decide → release → requeue, in that order: the
        abort decision record is durable *before* any lock is released, so
        a participant that persisted (or is about to persist) a prepare
        record for this attempt resolves it through the decision log
        exactly as it would any abort — even if this leader dies mid-wound
        (the ``repro.analysis`` wound-without-decision rule pins this
        ordering statically).  Live participants additionally get a
        RELEASE message for a prompt undo.  The retry re-enters the
        scheduler as a fresh attempt after a seeded backoff and clears the
        wound's decision record before re-preparing."""
        self._fault(TWOPC_PRE_WOUND)
        self.twopc.decide(txn.txid, DECISION_ABORT, self.shard_id, txn.participants)
        self._send_release(txn)
        self.lock_manager.release_all(txn.txid)
        self._fault(TWOPC_POST_WOUND)
        txn.votes = {}
        self._defer(txn)
        txn.wound_count += 1
        txn.wound_cooldown = self._wound_cooldown_passes(txn.wound_count)
        self._wounds_sent.pop(txn.txid, None)
        self.outstanding.pop(txn.txid, None)
        self.todo.push_front(txn)
        self.stats["cross_shard_wounded"] += 1

    def _wound_cooldown_passes(self, wound_count: int) -> int:
        """Scheduling passes a freshly wounded transaction sits out,
        derived from the seeded retry policy's jittered exponential delay
        (see _MAX_WOUND_COOLDOWN_PASSES for why passes, not seconds)."""
        policy = self._wound_backoff
        delay = policy.backoff(max(wound_count, 1))
        passes = int(round(delay / policy.base_delay))
        return max(1, min(_MAX_WOUND_COOLDOWN_PASSES, passes))

    def _handle_wound(self, item: dict[str, Any]) -> None:
        """Coordinator side of a wound request from a shard where an older
        transaction is blocked by this (younger) transaction's prepared
        slice.  Only a transaction still in its prepare phase is woundable;
        anything else means the wound is stale — already wounded (DEFERRED),
        past the vote barrier (STARTED: effects dispatched, the older
        transaction's wait is bounded by physical completion), or terminal
        — and is dropped idempotently."""
        txid = item["txid"]
        by = item.get("by")
        txn = self.outstanding.get(txid)
        if txn is None or txn.state is not TransactionState.PREPARING:
            return
        if txn.coordinator != self.shard_id:
            return
        if not isinstance(by, str) or by >= txid:
            return  # only an older transaction may wound
        self._wound_cross_shard(txn, by)

    def _send_release(self, txn: Transaction) -> None:
        for shard in txn.participants:
            if shard != self.shard_id:
                self._outbound.append(
                    (shard, decision_message(txn.txid, DECISION_RELEASE, txn.defer_count))
                )

    def _abort_cross_shard(self, txn: Transaction, error: str, failed: bool = False) -> None:
        """Coordinator-side abort after prepares may be out: log the abort
        decision (durable, immediate — expedites presumed abort), undo the
        local simulation and fan the decision out."""
        self.twopc.decide(txn.txid, DECISION_ABORT, self.shard_id, txn.participants)
        self.executor.rollback(txn)
        self._mark_dirty_writes(txn)
        txn.error = error
        txn.mark(
            TransactionState.FAILED if failed else TransactionState.ABORTED,
            self.clock.now(),
        )
        self.store.save_transaction(txn)
        self.store.clear_claim(txn.txid)
        self.lock_manager.release_all(txn.txid)
        self.signals.clear(txn.txid)
        self._send_decisions(txn, DECISION_ABORT)
        self._wounds_sent.pop(txn.txid, None)
        self.outstanding.pop(txn.txid, None)
        self.stats["cross_shard_aborted"] += 1
        self._notify(txn)

    def _cleanup_cross_shard(self, txn: Transaction, item: dict[str, Any]) -> None:
        """Step 5 for a cross-shard coordinator: the physical outcome *is*
        the 2PC decision.  A commit is durably logged in the global
        decision namespace before any fan-out (and before the client can
        observe the terminal state)."""
        if item.get("outcome") == OUTCOME_COMMITTED:
            self._fault(TWOPC_PRE_DECISION)
            self.twopc.decide(
                txn.txid, DECISION_COMMIT, self.shard_id, txn.participants
            )
            self._finish_cross_shard_commit(txn)
        else:
            if item.get("outcome") == OUTCOME_ABORTED:
                self._abort_cross_shard(txn, item.get("error") or "physical abort")
            else:
                self._fence(item.get("failed_path"))
                self._abort_cross_shard(
                    txn, item.get("error") or "physical failure", failed=True
                )
                self.stats["failed"] += 1

    def _finish_cross_shard_commit(
        self, txn: Transaction, check_applied: bool = False
    ) -> None:
        """Commit bookkeeping on the coordinator once the decision record
        is durable.  Also used by failover recovery when the decision was
        logged but the previous leader died before this bookkeeping —
        only that rare path pays for the applied-log membership check
        (the hot path knows the txid cannot be in the applied log yet)."""
        if not check_applied or txn.txid not in self.store.applied_txids():
            self.store.record_applied(
                txn.txid, participants=txn.participants, coordinator=txn.coordinator
            )
        txn.mark(TransactionState.COMMITTED, self.clock.now())
        self.store.save_transaction(txn, dirty_fields=())
        self.store.clear_claim(txn.txid)
        self._mark_dirty_writes(txn)
        self.lock_manager.release_all(txn.txid)
        self.signals.clear(txn.txid)
        self._send_decisions(txn, DECISION_COMMIT)
        self._wounds_sent.pop(txn.txid, None)
        self.outstanding.pop(txn.txid, None)
        self.stats["committed"] += 1
        self.stats["cross_shard_committed"] += 1
        self.applied_since_checkpoint += 1
        self._notify(txn)
        if self.applied_since_checkpoint >= self.config.checkpoint_every:
            self.checkpoint()

    # -- participant decision handling ---------------------------------

    def _handle_decision(self, item: dict[str, Any]) -> None:
        txid = item["txid"]
        decision = item.get("decision")
        attempt = int(item.get("attempt", 0))
        txn = self.outstanding.get(txid)
        if txn is None:
            txn = self.store.load_transaction(txid)
        if txn is None or txn.is_terminal:
            return
        if txn.state is not TransactionState.PREPARED:
            return
        if decision == DECISION_RELEASE:
            if txn.defer_count <= attempt:
                self._release_participant(txn)
        elif decision == DECISION_COMMIT:
            self._commit_participant(txn)
        elif decision == DECISION_ABORT:
            self._abort_participant(txn)

    def _resolve_prepared(self) -> bool:
        """Poll the global decision log for prepared participant
        transactions (only while any exist).  This is the liveness
        backstop when the decision message itself was lost to a
        coordinator crash: the decision record is the source of truth."""
        if self.twopc is None:
            return False
        prepared = [
            txn
            for txn in self.outstanding.values()
            if txn.state is TransactionState.PREPARED
            and txn.coordinator != self.shard_id
        ]
        progressed = False
        for txn in prepared:
            decision = self.twopc.decision(txn.txid, txn.coordinator)
            if decision == DECISION_COMMIT:
                self._commit_participant(txn)
                progressed = True
            elif decision == DECISION_ABORT:
                self._abort_participant(txn)
                progressed = True
        return progressed

    def _expire_preparing(self) -> bool:
        """Prepare-phase deadline: a coordinator stuck in PREPARING past
        ``config.prepare_timeout`` presumed-aborts and frees its prepare
        locks.  This covers the one stall the TERM watchdog and shard
        failover do not: a participant shard that is down *and* not
        failing over (no replica to elect) can neither vote nor resolve,
        and without a deadline the coordinator would hold its prepare
        locks — blocking every conflicting transaction, and under
        wound-wait every *older* one that would otherwise wound it past a
        dead shard — forever.  Safe at any time before a decision is
        logged (presumed abort is exactly the protocol's answer to an
        undecided prepare); a late yes-vote or prepare record is resolved
        by the abort decision record."""
        timeout = self.config.prepare_timeout
        if self.twopc is None or timeout <= 0:
            return False
        now = self.clock.now()
        expired = [
            txn
            for txn in self.outstanding.values()
            if txn.state is TransactionState.PREPARING
            and txn.coordinator == self.shard_id
            and now - txn.timestamps.get(TransactionState.PREPARING.value, now)
            > timeout
        ]
        for txn in expired:
            self._abort_cross_shard(
                txn,
                f"presumed abort: prepare phase exceeded "
                f"prepare_timeout={timeout}s (participants "
                f"{txn.participants}, votes from {sorted(txn.votes)})",
            )
            self.stats["prepare_timeouts"] += 1
        return bool(expired)

    def _commit_participant(self, txn: Transaction) -> None:
        """Apply the commit decision to a prepared participant: the slice
        effects are already in the model; record them in the applied log
        (recovery replays them) and release the locks.  No client
        notification — the client observes the coordinator's document.

        No applied-log membership check is needed: every caller guards on
        state PREPARED, and a PREPARED document already in the applied log
        is converted to COMMITTED by recover_state before it can get here.
        """
        self.store.record_applied(
            txn.txid, participants=txn.participants, coordinator=txn.coordinator
        )
        txn.mark(TransactionState.COMMITTED, self.clock.now())
        self.store.save_transaction(txn, dirty_fields=())
        self._mark_dirty_writes(txn)
        self.lock_manager.release_all(txn.txid)
        self.outstanding.pop(txn.txid, None)
        self.stats["cross_shard_committed"] += 1
        self.applied_since_checkpoint += 1
        if self.applied_since_checkpoint >= self.config.checkpoint_every:
            self.checkpoint()

    def _abort_participant(self, txn: Transaction) -> None:
        self.executor.undo_log(txn.log)
        self._mark_dirty_writes(txn)
        txn.error = txn.error or "cross-shard abort"
        txn.mark(TransactionState.ABORTED, self.clock.now())
        self.store.save_transaction(txn, dirty_fields=())
        self.lock_manager.release_all(txn.txid)
        self.outstanding.pop(txn.txid, None)
        self.stats["cross_shard_aborted"] += 1

    def _release_participant(self, txn: Transaction) -> None:
        """Drop a prepare record whose attempt the coordinator abandoned:
        undo the slice, release the locks, delete the document (the retry
        re-prepares from scratch)."""
        self.executor.undo_log(txn.log)
        self._mark_dirty_writes(txn)
        self.lock_manager.release_all(txn.txid)
        self.outstanding.pop(txn.txid, None)
        self.store.delete_transaction(txn.txid)

    # ------------------------------------------------------------------
    # Signals (§4)
    # ------------------------------------------------------------------

    def send_term(self, txid: str) -> None:
        """Gracefully abort a stalled transaction (worker rolls back undo-wise)."""
        # repro: allow(blocking-under-lock) -- signal sends must be serialised with the step loop so a TERM never lands between a worker claim and its first write
        with self._op_mutex:
            # A windowed step may hold a signals/<txid> clear; flushing it
            # *after* the send would erase the new TERM.
            self._drain_pipeline()
            self.signals.send(txid, TERM)
            if self._signals_present is not None:
                self._signals_present.add(txid)

    def send_kill(self, txid: str) -> None:
        """Immediately abort a transaction in the logical layer only.

        Physical effects already applied are *not* undone; the affected
        subtrees are fenced and later reconciled with repair.

        Serialised with the step loop: interleaving the direct ABORTED
        write with a pending group commit could let the buffered STARTED
        document land last.
        """
        # repro: allow(blocking-under-lock) -- kill + fence + abort must be one atomic unit w.r.t. the step loop; releasing the mutex between them would let a commit interleave with the fence
        with self._op_mutex:
            # Drain the in-flight commit window first: this path reads
            # transaction documents and writes ABORTED directly, and a
            # later window flush would clobber those direct writes with
            # stale sealed state.
            self._drain_pipeline()
            self.signals.send(txid, KILL)
            if self._signals_present is not None:
                self._signals_present.add(txid)
            txn = self.outstanding.pop(txid, None)
            if txn is not None and txn.is_cross_shard:
                if txn.coordinator != self.shard_id:
                    # Participant prepare records are resolved only by the
                    # coordinator's decision; a local KILL cannot release
                    # the promised locks without breaking 2PC atomicity.
                    self.outstanding[txid] = txn
                    return
                with self.busy:
                    was_started = txn.state is TransactionState.STARTED
                    self._abort_cross_shard(txn, "killed")
                    if was_started:
                        # Physical execution may be in flight: fence the
                        # touched subtrees for repair, as the local KILL
                        # path does.
                        for path in sorted(txn.rwset.writes):
                            self._fence(path)
                    self.stats["killed"] += 1
                self._flush_outbound()
                return
            if txn is None:
                queued = self.todo.remove(txid)
                txn = queued or self.store.load_transaction(txid)
                if txn is None or txn.is_terminal:
                    return
                txn.error = "killed"
                txn.mark(TransactionState.ABORTED, self.clock.now())
                self.store.save_transaction(txn)
                self.stats["killed"] += 1
                self._notify(txn)
                return
            with self.busy:
                self.executor.rollback(txn)
                txn.error = "killed"
                txn.mark(TransactionState.ABORTED, self.clock.now())
                self.store.save_transaction(txn)
                self.store.clear_claim(txid)
                for path in sorted(txn.rwset.writes):
                    self._fence(path)
                self.lock_manager.release_all(txid)
                self.stats["killed"] += 1
            self._notify(txn)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> bool:
        """Write an incremental data-model checkpoint and truncate the
        applied log.  Only subtrees dirtied since the previous checkpoint
        are re-serialised; the applied-log compaction rides in a group
        commit.

        Checkpoints happen only at quiesce points (no STARTED transactions
        outstanding): the model contains the simulated-but-uncommitted
        effects of in-flight transactions, and recovery re-applies their
        logs on top of the checkpoint — a non-quiesced checkpoint would
        double-apply them after a failover.  When skipped, the dirty marks
        are retained, so the state is captured by the next quiesce-point
        checkpoint.  Serialised with the step loop (callers include the
        reconciler's reload, which runs on other threads)."""
        # repro: allow(blocking-under-lock) -- a checkpoint must capture a quiescent model; the op mutex is what guarantees no transaction applies mid-snapshot
        with self._op_mutex:
            if self.outstanding:
                return False
            # Nothing is outstanding, so the window holds no unsent
            # dispatches — but it may hold terminal-state writes the
            # checkpoint's log truncation presupposes durable.
            self._drain_pipeline()
            kv = self.store.kv
            rt_before = kv.batch_commits + kv.direct_ops
            serial_before = kv.puts + kv.deletes
            seq = self.store.applied_seq()
            self.store.save_checkpoint_incremental(self.model, seq)
            # Post-snapshot bookkeeping — log truncation, claim GC, the
            # 2PC epoch bump — rides in one batched multi instead of one
            # round-trip per record.
            with kv.batch():
                self.store.truncate_applied(seq)
                # Quiesce point: no transaction is in flight, so every
                # worker claim record is dead weight — reclaim them all at
                # once.
                self.store.clear_claims()
                if self.twopc is not None:
                    # Publish this shard's checkpoint horizon (it provably
                    # holds no unresolved cross-shard state right now) and
                    # mark/sweep the decision records this shard
                    # coordinated.  Piggybacked here, like the claim GC, so
                    # the per-commit write path carries no retention
                    # bookkeeping.
                    epoch = int(self.store.get_meta("checkpoint_epoch", 0)) + 1
                    self.store.put_meta("checkpoint_epoch", epoch)
            if self.twopc is not None:
                self.twopc.publish_horizon(self.shard_id, epoch)
                self.stats["twopc_decisions_gced"] += self.twopc.gc_decisions(
                    self.shard_id
                )
            self.store.checkpoint_stats.record_round_trips(
                kv.batch_commits + kv.direct_ops - rt_before,
                kv.puts + kv.deletes - serial_before,
            )
            self.applied_since_checkpoint = 0
            self.stats["checkpoints"] += 1
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def fork_model(self) -> DataModel:
        """An O(1) copy-on-write snapshot of the live model, serialised
        with the step loop: forking swaps the model's ownership epoch, so
        doing it mid-action would let the writer keep mutating nodes the
        fork believes frozen.  Under the op mutex the fork lands between
        steps — it still contains the simulated effects of dispatched
        (STARTED) transactions, exactly like the leader's own reads."""
        with self._op_mutex:
            return self.model.clone()

    def busy_seconds(self) -> float:
        return self.busy.busy_seconds

    def queue_depth(self) -> int:
        return len(self.todo)

    def outstanding_count(self) -> int:
        return len(self.outstanding)

    def snapshot_stats(self) -> dict[str, int]:
        return dict(self.stats)

    def io_stats(self) -> dict[str, Any]:
        """Write-path counters of the underlying persistent store, plus
        the commit pipeline's flush/window instrumentation."""
        stats = self.store.io_stats()
        stats["pipeline"] = self._pipeline.stats.as_dict()
        return stats

    def __repr__(self) -> str:
        return (
            f"<Controller {self.name} shard={self.shard_id} "
            f"recovered={self.recovered} todo={len(self.todo)}>"
        )
