"""The TROPIC controller: logical-layer transaction processing (§3, Figure 2).

The (leader) controller accepts transaction requests from inputQ, schedules
them from todoQ, simulates them against the logical data model with
constraint checking, acquires multi-granularity locks, hands runnable
transactions to the physical workers through phyQ, and performs cleanup
(commit bookkeeping or logical rollback) when the workers report results.

The controller keeps only soft state in memory; everything needed to resume
after a leader failure is persisted in the coordination store *before* the
triggering inputQ item is acknowledged, which makes message handling
idempotent across failovers (§2.3).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.common.clock import Clock, RealClock, Stopwatch
from repro.common.config import TropicConfig
from repro.common.errors import UnknownPathError
from repro.coordination.queue import DistributedQueue
from repro.core.constraints import ConstraintEngine
from repro.core.events import (
    KIND_REQUEST,
    KIND_RESULT,
    OUTCOME_ABORTED,
    OUTCOME_COMMITTED,
    execute_message,
)
from repro.core.locks import LockManager
from repro.core.persistence import TropicStore
from repro.core.procedures import ProcedureRegistry
from repro.core.recovery import recover_state
from repro.core.scheduler import FIFO, TodoQueue
from repro.core.signals import KILL, SignalBoard, TERM
from repro.core.simulation import LogicalExecutor
from repro.core.txn import Transaction, TransactionState
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel


class Controller:
    """A controller replica.  Only the elected leader executes transactions."""

    def __init__(
        self,
        name: str,
        config: TropicConfig,
        store: TropicStore,
        input_queue: DistributedQueue,
        phy_queue: DistributedQueue,
        schema: ModelSchema,
        procedures: ProcedureRegistry,
        clock: Clock | None = None,
        on_complete: Callable[[Transaction], None] | None = None,
        shard_id: int = 0,
    ):
        self.name = name
        #: Index of the data-model shard this replica serves.  All of the
        #: controller's persistent state (store, queues, election) is
        #: namespaced per shard by the platform; the lock domain and todoQ
        #: below are therefore shard-local by construction.
        self.shard_id = shard_id
        self.config = config
        self.store = store
        self.input_queue = input_queue
        self.phy_queue = phy_queue
        self.schema = schema
        self.procedures = procedures
        self.clock = clock or RealClock()
        self.on_complete = on_complete

        self.model = DataModel()
        self.constraint_engine = ConstraintEngine(schema)
        self.executor = LogicalExecutor(self.model, schema, procedures, self.constraint_engine)
        self.lock_manager = LockManager()
        self.todo = TodoQueue(config.scheduler_policy)
        self.outstanding: dict[str, Transaction] = {}
        self.signals = SignalBoard(store)

        self.busy = Stopwatch(self.clock)
        self.recovered = False
        self.applied_since_checkpoint = 0
        #: phyQ dispatches deferred until the pending group commit makes
        #: the corresponding STARTED states durable.
        self._dispatch_buffer: list[str] = []
        #: completion notifications deferred until the terminal states are
        #: durable (see _notify).
        self._notify_buffer: list[Transaction] = []
        #: Signal-board snapshot refreshed once per step (one listing
        #: round-trip instead of one read per scheduled transaction).
        self._signals_present: set[str] | None = None
        #: Serialises the step loop with cross-thread mutations
        #: (send_kill / send_term).  With group-commit batching, a direct
        #: store write racing a pending batch could be overwritten when
        #: the batch flushes (e.g. a kill's ABORTED document clobbered by
        #: the buffered STARTED document); the mutex restores the seed's
        #: sequential ordering.
        self._op_mutex = threading.RLock()
        self.stats: dict[str, int] = {
            "accepted": 0,
            "committed": 0,
            "aborted_logical": 0,
            "aborted_physical": 0,
            "failed": 0,
            "deferred": 0,
            "killed": 0,
            "checkpoints": 0,
            "input_batches": 0,
            "messages_handled": 0,
        }

    # ------------------------------------------------------------------
    # State restoration (leader takeover, §2.3)
    # ------------------------------------------------------------------

    def recover(self) -> None:
        """Rebuild logical state from the persistent store.

        Called when this replica becomes leader (including the very first
        leader).  Idempotent: calling it again simply rebuilds the same
        state from the store.
        """
        state = recover_state(
            self.store, self.schema, self.procedures, self.config, self.clock
        )
        self.model = state.model
        self.constraint_engine = ConstraintEngine(self.schema)
        self.executor = LogicalExecutor(
            self.model, self.schema, self.procedures, self.constraint_engine
        )
        self.lock_manager = state.lock_manager
        self.todo = state.todo
        self.outstanding = state.outstanding
        self.applied_since_checkpoint = len(state.replayed_committed)
        self._dispatch_buffer = []
        self._notify_buffer = []
        # Another leader may have rewritten transaction documents since
        # this replica last persisted them.
        self.store.reset_fragment_cache()
        # The rebuilt model is conservatively all-dirty, so the first
        # checkpoint after a failover is a full one.
        self.model.mark_all_dirty()
        self.recovered = True

    def demote(self) -> None:
        """Drop leader-only soft state when losing leadership."""
        self.recovered = False
        self.outstanding = {}
        self.lock_manager = LockManager()
        self.todo = TodoQueue(self.config.scheduler_policy)
        self._dispatch_buffer = []
        self._notify_buffer = []
        self._signals_present = None
        self.store.reset_fragment_cache()

    # ------------------------------------------------------------------
    # Main loop step
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Drain a batch of inputQ messages and run one scheduling pass.

        All store writes issued while handling the batch — acceptance and
        terminal state transitions, applied-log appends, signal clears —
        are coalesced into a single group commit, and the messages are
        acknowledged only after that commit: a leader crash mid-batch
        re-delivers every message to the next leader, which handles each
        idempotently (§2.3).

        Returns True if any work was performed.  All CPU time spent here is
        charged to the busy stopwatch, which backs the controller CPU
        utilisation measurements of Figure 4.
        """
        if not self.recovered:
            self.recover()
        did_work = False
        with self.busy, self._op_mutex:
            try:
                taken = self.input_queue.take_many(self.config.input_batch_size)
                if taken or not self.todo.is_empty():
                    # One listing round-trip amortised over the batch; idle
                    # polls (no messages, nothing queued) skip the board
                    # entirely — _signal_of falls back to direct reads when
                    # the snapshot is None.
                    self._signals_present = self.signals.signalled()
                else:
                    self._signals_present = None
                with self.store.batch():
                    for _, item in taken:
                        self._handle_message(item)
                    if taken:
                        did_work = True
                        self.stats["input_batches"] += 1
                        self.stats["messages_handled"] += len(taken)
                    if self.schedule():
                        did_work = True
                # The batch has committed: terminal states are durable, so
                # the buffered notifications may reach clients and the
                # consumed messages may be acknowledged.
                self._flush_notifications()
                self.input_queue.ack_many([name for name, _ in taken])
            except Exception:
                # A failed step may have lost buffered store writes while
                # the in-memory transitions survived (or vice versa).  Soft
                # state is cheap to rebuild and the consumed messages were
                # not acked, so abandon it and re-recover from the store —
                # exactly the §2.3 failover contract, applied to the same
                # replica.
                self.demote()
                raise
        return did_work

    def run_until_idle(self, max_steps: int = 1_000_000) -> int:
        """Step until no more progress can be made (used by the inline runtime)."""
        steps = 0
        while steps < max_steps and self.step():
            steps += 1
        return steps

    # ------------------------------------------------------------------
    # Message handling (Steps 2 and 5 of Figure 2)
    # ------------------------------------------------------------------

    def _handle_message(self, item: dict[str, Any]) -> None:
        kind = item.get("kind")
        if kind == KIND_REQUEST:
            self._accept(item)
        elif kind == KIND_RESULT:
            self._cleanup(item)

    def _accept(self, item: dict[str, Any]) -> None:
        """Step 2: accept a client request into todoQ."""
        txid = item["txid"]
        txn = self.store.load_transaction(txid)
        if txn is None:
            return
        if txn.state is not TransactionState.INITIALIZED:
            # Duplicate delivery after a failover; recovery already placed
            # the transaction where it belongs.
            return
        txn.mark(TransactionState.ACCEPTED, self.clock.now())
        self.store.save_transaction(txn, dirty_fields=())
        self.todo.push_back(txn)
        self.stats["accepted"] += 1

    def _cleanup(self, item: dict[str, Any]) -> None:
        """Step 5: commit bookkeeping or logical rollback after physical execution."""
        txid = item["txid"]
        txn = self.outstanding.pop(txid, None)
        if txn is None:
            txn = self.store.load_transaction(txid)
        if txn is None or txn.is_terminal:
            return  # duplicate result (idempotent cleanup)
        outcome = item.get("outcome")
        if outcome == OUTCOME_COMMITTED:
            self.store.record_applied(txid)
            txn.mark(TransactionState.COMMITTED, self.clock.now())
            self.store.save_transaction(txn, dirty_fields=())
            self._mark_dirty_writes(txn)
            self.stats["committed"] += 1
            self.applied_since_checkpoint += 1
            if self.applied_since_checkpoint >= self.config.checkpoint_every:
                self.checkpoint()  # no-op unless at a quiesce point
        else:
            # 5B: roll back the logical layer via the undo log.
            self.executor.rollback(txn)
            # Logical undo is best-effort; conservatively treat the touched
            # subtrees as diverged from the last checkpoint.
            self._mark_dirty_writes(txn)
            txn.error = item.get("error")
            if outcome == OUTCOME_ABORTED:
                txn.mark(TransactionState.ABORTED, self.clock.now())
                self.stats["aborted_physical"] += 1
            else:
                txn.mark(TransactionState.FAILED, self.clock.now())
                self.stats["failed"] += 1
                self._fence(item.get("failed_path"))
            self.store.save_transaction(txn, dirty_fields=())
        self.lock_manager.release_all(txid)
        self.signals.clear(txid)
        self._notify(txn)

    def _signal_of(self, txid: str) -> str | None:
        """Pending signal for ``txid``, consulting the per-step snapshot to
        avoid a store read for the (overwhelmingly common) unsignalled
        case.  Falls back to a direct read when no snapshot is active."""
        snapshot = self._signals_present
        if snapshot is not None and txid not in snapshot:
            return None
        return self.signals.get(txid)

    def _mark_dirty_writes(self, txn: Transaction) -> None:
        """Mark the subtrees in ``txn``'s write set dirty for incremental
        checkpointing.  The write set is the same authority the lock
        manager trusts, so it covers attribute mutations performed inside
        action simulation functions that bypass the DataModel API."""
        for path in txn.rwset.writes:
            self.model.mark_dirty(path)

    def _fence(self, path: str | None) -> None:
        """Mark a subtree inconsistent after an undo failure (§4)."""
        if not path:
            return
        try:
            self.model.mark_inconsistent(path)
        except UnknownPathError:
            return
        fenced = {str(p) for p in self.model.inconsistent_paths()}
        self.store.save_inconsistent_paths(sorted(fenced))

    def _notify(self, txn: Transaction) -> None:
        """Queue (or deliver) a completion notification.

        While a group-commit batch is open, the terminal state is not yet
        durable, so the notification is buffered and delivered only after
        the batch flushes — a client must never observe an outcome the
        store could still lose to a crash.
        """
        if self.store.kv.in_batch():
            self._notify_buffer.append(txn)
            return
        self._deliver_notification(txn)

    def _deliver_notification(self, txn: Transaction) -> None:
        if self.on_complete is not None:
            try:
                self.on_complete(txn)
            except Exception:  # noqa: BLE001 - observer bugs must not affect cleanup
                pass

    def _flush_notifications(self) -> None:
        while self._notify_buffer:
            self._deliver_notification(self._notify_buffer.pop(0))

    # ------------------------------------------------------------------
    # Scheduling and logical execution (Step 3 of Figure 2)
    # ------------------------------------------------------------------

    def schedule(self) -> bool:
        """One scheduling pass over todoQ; returns True if any transaction
        was started or aborted.

        Every currently-runnable transaction is dispatched in this single
        pass.  Dispatches to phyQ are buffered and sent only after the
        pending store writes are flushed, so a worker can never observe a
        transaction whose STARTED state is not yet durable.
        """
        progressed = False
        deferred: list[Transaction] = []
        pending = self.todo.transactions()
        for txn in pending:
            if self.todo.remove(txn.txid) is None:
                continue
            disposition = self._try_run(txn)
            if disposition == "deferred":
                deferred.append(txn)
                if self.todo.policy == FIFO:
                    break  # a blocked head blocks the FIFO queue
            else:
                progressed = True
        for txn in reversed(deferred):
            self.todo.push_front(txn)
        self._flush_dispatches()
        return progressed

    def _flush_dispatches(self) -> None:
        """Group-commit pending state changes, then hand the buffered
        runnable transactions to the physical workers in one queue write."""
        if not self._dispatch_buffer:
            return
        self.store.flush()
        # The flush made all prior state changes durable, so buffered
        # completion notifications can be delivered alongside.
        self._flush_notifications()
        batch, self._dispatch_buffer = self._dispatch_buffer, []
        self.phy_queue.put_many([execute_message(txid) for txid in batch])

    def _try_run(self, txn: Transaction) -> str:
        """Simulate, check constraints and locks, and dispatch one transaction.

        Returns ``"started"``, ``"aborted"`` or ``"deferred"`` (3A/3B/3C in
        Figure 2).
        """
        if self._signal_of(txn.txid) == KILL:
            txn.error = "killed before execution"
            txn.mark(TransactionState.ABORTED, self.clock.now())
            self.store.save_transaction(txn)
            self.stats["killed"] += 1
            self._notify(txn)
            return "aborted"

        outcome = self.executor.simulate(txn)
        if not outcome.ok:
            # 3A: constraint violation (or procedure error) — abort.  The
            # simulation was rolled back, but logical undo is best-effort,
            # so conservatively mark the touched subtrees dirty.
            self._mark_dirty_writes(txn)
            txn.error = outcome.error
            txn.mark(TransactionState.ABORTED, self.clock.now())
            self.store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
            self.stats["aborted_logical"] += 1
            self._notify(txn)
            return "aborted"

        conflict = self.lock_manager.try_acquire(txn.txid, txn.rwset)
        if conflict is not None:
            # 3B: resource conflict — undo the simulation and defer.
            self.executor.rollback(txn)
            self._mark_dirty_writes(txn)
            txn.defer_count += 1
            txn.mark(TransactionState.DEFERRED, self.clock.now())
            self.store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
            self.stats["deferred"] += 1
            return "deferred"

        # 3C: runnable — keep the simulated changes, dispatch to phyQ
        # (buffered until the STARTED state is group-committed).
        txn.mark(TransactionState.STARTED, self.clock.now())
        self.store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
        self._mark_dirty_writes(txn)
        self.outstanding[txn.txid] = txn
        self._dispatch_buffer.append(txn.txid)
        return "started"

    # ------------------------------------------------------------------
    # Signals (§4)
    # ------------------------------------------------------------------

    def send_term(self, txid: str) -> None:
        """Gracefully abort a stalled transaction (worker rolls back undo-wise)."""
        with self._op_mutex:
            self.signals.send(txid, TERM)
            if self._signals_present is not None:
                self._signals_present.add(txid)

    def send_kill(self, txid: str) -> None:
        """Immediately abort a transaction in the logical layer only.

        Physical effects already applied are *not* undone; the affected
        subtrees are fenced and later reconciled with repair.

        Serialised with the step loop: interleaving the direct ABORTED
        write with a pending group commit could let the buffered STARTED
        document land last.
        """
        with self._op_mutex:
            self.signals.send(txid, KILL)
            if self._signals_present is not None:
                self._signals_present.add(txid)
            txn = self.outstanding.pop(txid, None)
            if txn is None:
                queued = self.todo.remove(txid)
                txn = queued or self.store.load_transaction(txid)
                if txn is None or txn.is_terminal:
                    return
                txn.error = "killed"
                txn.mark(TransactionState.ABORTED, self.clock.now())
                self.store.save_transaction(txn)
                self.stats["killed"] += 1
                self._notify(txn)
                return
            with self.busy:
                self.executor.rollback(txn)
                txn.error = "killed"
                txn.mark(TransactionState.ABORTED, self.clock.now())
                self.store.save_transaction(txn)
                for path in sorted(txn.rwset.writes):
                    self._fence(path)
                self.lock_manager.release_all(txid)
                self.stats["killed"] += 1
            self._notify(txn)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> bool:
        """Write an incremental data-model checkpoint and truncate the
        applied log.  Only subtrees dirtied since the previous checkpoint
        are re-serialised; the applied-log compaction rides in a group
        commit.

        Checkpoints happen only at quiesce points (no STARTED transactions
        outstanding): the model contains the simulated-but-uncommitted
        effects of in-flight transactions, and recovery re-applies their
        logs on top of the checkpoint — a non-quiesced checkpoint would
        double-apply them after a failover.  When skipped, the dirty marks
        are retained, so the state is captured by the next quiesce-point
        checkpoint.  Serialised with the step loop (callers include the
        reconciler's reload, which runs on other threads)."""
        with self._op_mutex:
            if self.outstanding:
                return False
            seq = self.store.applied_seq()
            self.store.save_checkpoint_incremental(self.model, seq)
            self.store.truncate_applied(seq)
            self.applied_since_checkpoint = 0
            self.stats["checkpoints"] += 1
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def busy_seconds(self) -> float:
        return self.busy.busy_seconds

    def queue_depth(self) -> int:
        return len(self.todo)

    def outstanding_count(self) -> int:
        return len(self.outstanding)

    def snapshot_stats(self) -> dict[str, int]:
        return dict(self.stats)

    def io_stats(self) -> dict[str, Any]:
        """Write-path counters of the underlying persistent store."""
        return self.store.io_stats()

    def __repr__(self) -> str:
        return (
            f"<Controller {self.name} shard={self.shard_id} "
            f"recovered={self.recovered} todo={len(self.todo)}>"
        )
