"""Orchestration context: the API stored procedures use to touch resources.

A stored procedure never mutates the data model or devices directly.  It
receives an :class:`OrchestrationContext` and

* reads state with :meth:`read`, :meth:`children`, :meth:`find` and
  :meth:`query` (recorded in the read set), and
* performs actions with :meth:`do`, which simulates the action on the
  logical model, records the execution-log entry together with its undo
  action, and enforces constraints (recorded in the write set).

The resulting execution log is later replayed verbatim by the physical
layer, so the procedure's control flow runs exactly once — in the logical
layer — as the paper's simulation step prescribes (§3.1.2).
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.common.errors import ConstraintViolation, ProcedureError
from repro.core.constraints import ConstraintEngine
from repro.core.txn import Transaction
from repro.datamodel.node import Node
from repro.datamodel.path import ResourcePath
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel

#: Sub-procedure calls are bounded so a buggy composite procedure that
#: (transitively) calls itself aborts instead of recursing forever.
MAX_CALL_DEPTH = 16


class ProcedureRegistryLike(Protocol):
    """The subset of the stored-procedure registry the context relies on."""

    def get(self, name: str) -> Callable[..., Any]:
        ...  # pragma: no cover - protocol definition


class OrchestrationContext:
    """Execution context handed to stored procedures during simulation."""

    def __init__(
        self,
        model: DataModel,
        schema: ModelSchema,
        txn: Transaction,
        constraint_engine: ConstraintEngine | None = None,
        procedures: "ProcedureRegistryLike | None" = None,
    ):
        self.model = model
        self.schema = schema
        self.txn = txn
        self.constraints = constraint_engine or ConstraintEngine(schema)
        self.procedures = procedures
        self._call_depth = 0

    # ------------------------------------------------------------------
    # Read-only access (recorded in the read set)
    # ------------------------------------------------------------------

    def exists(self, path: str | ResourcePath) -> bool:
        rpath = ResourcePath.parse(path)
        self.txn.rwset.record_read(str(rpath))
        return self.model.exists(rpath)

    def node(self, path: str | ResourcePath) -> Node:
        """Return the node at ``path`` (treat it as read-only)."""
        rpath = ResourcePath.parse(path)
        self.model.check_not_fenced(rpath)
        self.txn.rwset.record_read(str(rpath))
        return self.model.get(rpath)

    def read(self, path: str | ResourcePath) -> dict[str, Any]:
        """Return a copy of the attributes of the node at ``path``."""
        return dict(self.node(path).attrs)

    def get_attr(self, path: str | ResourcePath, key: str, default: Any = None) -> Any:
        return self.node(path).get(key, default)

    def children(self, path: str | ResourcePath) -> list[str]:
        rpath = ResourcePath.parse(path)
        self.txn.rwset.record_read(str(rpath))
        return sorted(self.model.get(rpath).children)

    def find(
        self,
        entity_type: str | None = None,
        predicate: Callable[[ResourcePath, Node], bool] | None = None,
        start: str | ResourcePath = "/",
    ) -> list[str]:
        """Search the model; the searched subtree root is recorded as read."""
        rpath = ResourcePath.parse(start)
        self.txn.rwset.record_read(str(rpath))
        return [str(p) for p in self.model.find(entity_type, predicate, rpath)]

    def query(self, path: str | ResourcePath, name: str, *args: Any) -> Any:
        """Invoke a named query of the entity at ``path``."""
        node = self.node(path)
        query_def = self.schema.get(node.entity_type).get_query(name)
        return query_def.func(self.model, node, *args)

    # ------------------------------------------------------------------
    # Actions (recorded in the write set and the execution log)
    # ------------------------------------------------------------------

    def do(self, path: str | ResourcePath, action: str, *args: Any) -> Any:
        """Simulate ``action`` on the object at ``path`` and log it.

        Raises :class:`ConstraintViolation` if the resulting logical state
        violates any constraint in the affected (locked) subtree; the
        logical executor then rolls the transaction back and aborts it.
        """
        rpath = ResourcePath.parse(path)
        self.model.check_not_fenced(rpath)
        # Claim exclusive (copy-on-write) ownership of the target subtree:
        # simulation functions mutate the node and its descendants through
        # the Node API directly, which is only safe on an owned subtree.
        node = self.model.get_for_write(rpath)
        action_def = self.schema.get(node.entity_type).get_action(action)
        undo_args = action_def.undo_arguments(node, list(args))

        result = action_def.simulate(self.model, node, *args)

        self.txn.log.append(str(rpath), action, list(args), action_def.undo, undo_args)
        self.txn.rwset.record_write(str(rpath))
        scope = self.constraints.highest_constrained_ancestor(self.model, rpath)
        if scope is not None:
            self.txn.rwset.record_constraint_read(str(scope))

        violations = self.constraints.check_after_write(self.model, rpath, scope=scope)
        if violations:
            raise ConstraintViolation(
                "; ".join(violations), constraint="post-action", path=str(rpath)
            )
        return result

    # ------------------------------------------------------------------
    # Sub-procedure composition (§2.2: procedures compose other procedures)
    # ------------------------------------------------------------------

    def call(self, procedure: str, **kwargs: Any) -> Any:
        """Invoke another stored procedure inside the current transaction.

        The callee runs against the same context, so its actions extend this
        transaction's execution log and read/write set: the composite
        orchestration commits or rolls back as a single atomic unit.
        """
        if self.procedures is None:
            raise ProcedureError(
                "this context has no procedure registry; sub-procedure calls "
                "are unavailable"
            )
        if self._call_depth >= MAX_CALL_DEPTH:
            raise ProcedureError(
                f"sub-procedure call depth exceeded {MAX_CALL_DEPTH} "
                f"(while calling {procedure!r})"
            )
        func = self.procedures.get(procedure)
        self._call_depth += 1
        try:
            return func(self, **kwargs)
        finally:
            self._call_depth -= 1

    # ------------------------------------------------------------------
    # Control flow helpers
    # ------------------------------------------------------------------

    def abort(self, reason: str) -> None:
        """Abort the transaction from inside a stored procedure."""
        raise ProcedureError(reason)

    def require(self, condition: bool, reason: str) -> None:
        """Abort unless ``condition`` holds (guard clauses in procedures)."""
        if not condition:
            raise ProcedureError(reason)
