"""The TROPIC platform: public API tying all components together (Figure 1).

:class:`TropicPlatform` owns the coordination ensemble, the persistent
store, the inputQ/phyQ queues, a set of replicated controllers (leader +
followers) and the physical workers.  Clients submit stored-procedure calls
with :meth:`TropicPlatform.submit` and receive a
:class:`TransactionHandle`.

Two runtimes are provided:

* **inline** (``threaded=False``): controller and workers are stepped in
  the calling thread; execution is fully deterministic.  Used by most
  tests and by benchmarks that measure per-transaction costs.
* **threaded** (``threaded=True``): one service thread per controller
  replica and per worker, plus an optional maintenance thread (periodic
  repair, stalled-transaction watchdog).  Used by the examples, the
  EC2-trace performance benchmarks, and the high-availability experiments
  (leader failover, §6.4).

With ``config.num_shards > 1`` the data-model tree is partitioned over N
controller *shards* (see :mod:`repro.core.sharding`).  Each shard gets its
own namespaced store prefix, inputQ/phyQ, leader election and replica set;
submissions are routed client-side to the owning shard's inputQ.  Shards
share nothing, so a process may host only a subset of them
(``local_shards``) — the scale-out deployment runs one shard (plus its
replicas) per process or machine.

``local_shards`` gates *writes* only: :meth:`TropicPlatform.model_view`
serves fleet-wide reads from any process by composing the locally hosted
shard leaders with per-shard read replicas of the others
(:class:`ReadProxy` over :mod:`repro.core.replica`), selectable per call
via ``consistency="replica" | "leader" | "partial"``.

Documented in ``docs/architecture.md`` (write path, sharding, 2PC, read
path) and ``docs/operations.md`` (deployment shapes, failover drills).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.recorder import traced
from repro.common.clock import Clock, RealClock
from repro.common.config import TropicConfig
from repro.common.errors import (
    ConfigurationError,
    QuorumLostError,
    ReproError,
    SessionExpiredError,
    ShardNotLocalError,
    ShardUnavailable,
    TransactionFailed,
    TxnTimeout,
)
from repro.common.idgen import random_id
from repro.coordination.client import CoordinationClient
from repro.coordination.election import LeaderElection
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue
from repro.core.controller import Controller
from repro.core.events import request_message
from repro.core.persistence import TropicStore
from repro.core.procedures import ProcedureRegistry
from repro.core.reconcile import Reconciler, ReloadReport, RepairReport
from repro.core.readfence import fence_replica_sources
from repro.core.replica import (
    EVENT_BARRIER,
    EVENT_RESYNC,
    ReadReplica,
    Subscription,
    SubtreeDelta,
)
from repro.core.sharding import ShardMap, ShardRouter, is_global_path, unit_key
from repro.core.signals import SignalBoard
from repro.core.twopc import TWOPC_PREFIX, TwoPCLog
from repro.core.txn import Transaction, TransactionState
from repro.core.worker import Worker
from repro.datamodel.path import ResourcePath
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel
from repro.drivers.registry import DeviceRegistry
from repro.metrics.collectors import ResilienceCounters

#: Session timeout used for clients whose failure need not be detected
#: (the platform's own client and the workers').  Controller election
#: sessions use ``config.session_timeout`` instead.
_LONG_SESSION = 3600.0

INPUT_QUEUE_PATH = "/tropic/queues/inputQ"
PHY_QUEUE_PATH = "/tropic/queues/phyQ"
ELECTION_PATH = "/tropic/election"
STORE_PREFIX = "/tropic/store"
#: Global (unsharded) namespace holding the persisted shard map.
SHARD_MAP_PREFIX = "/tropic/shards"


def shard_store_prefix(shard: int, num_shards: int) -> str:
    """Coordination-store prefix of ``shard``'s persistence namespace.

    The single source of truth for the layout rule (single-shard
    deployments keep the legacy unprefixed path byte-for-byte); external
    readers — replica constructors in benchmarks and scripts — must use
    this instead of re-deriving the rule.
    """
    if num_shards == 1:
        return STORE_PREFIX
    return f"{STORE_PREFIX}/shard-{shard}"


@dataclass
class ShardRuntime:
    """Everything one controller shard owns: namespaced persistent store,
    queues, election path, controller replicas and physical workers."""

    index: int
    store: TropicStore
    input_queue: DistributedQueue
    phy_queue: DistributedQueue
    election_path: str
    controllers: list[Controller] = field(default_factory=list)
    workers: list[Worker] = field(default_factory=list)


#: Consistency levels of :meth:`TropicPlatform.model_view`.  ``"replica"``
#: serves non-hosted shards from read replicas (bounded-stale,
#: watermark-stamped); ``"leader"`` reads only in-process shard leaders and
#: refuses partial hosting; ``"partial"`` knowingly merges only the local
#: shards (foreign subtrees bootstrap-frozen) — the old ``strict=False``.
CONSISTENCY_REPLICA = "replica"
CONSISTENCY_LEADER = "leader"
CONSISTENCY_PARTIAL = "partial"
_CONSISTENCY_LEVELS = (CONSISTENCY_REPLICA, CONSISTENCY_LEADER, CONSISTENCY_PARTIAL)


@dataclass(frozen=True)
class ShardWatermark:
    """Provenance of one shard's subtrees in a fleet view.

    ``source`` is ``"leader"`` for an in-process authoritative shard
    (``applied_txn`` is ``None``: the view is the live model, not a
    log position) or ``"replica"`` for a tailed copy, whose
    ``applied_txn`` is the monotonic applied-log sequence number the
    copy reflects (see :class:`~repro.core.replica.ReadReplica`).
    """

    shard: int
    source: str
    applied_txn: int | None = None


@dataclass
class FleetView:
    """A merged read view of the whole data-model tree plus, per shard,
    where that shard's subtrees came from and how fresh they are.

    ``degraded_shards`` discloses graceful read degradation: locally
    *hosted* shards whose leader was unreachable, served from their read
    replica (bounded-stale) or — when no replica state exists — from the
    partial bootstrap-frozen copy instead of failing the whole read.  The
    per-shard watermark shows which fallback was used and how fresh it is.
    """

    model: DataModel
    watermarks: dict[int, ShardWatermark]
    consistency: str
    degraded_shards: list[int] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_shards)

    def replica_shards(self) -> list[int]:
        return sorted(
            s for s, w in self.watermarks.items() if w.source == CONSISTENCY_REPLICA
        )


@dataclass
class _ViewCacheEntry:
    """One cached merged fleet view plus the provenance needed to patch
    it incrementally.

    ``key`` pins the exact per-shard *source states* the merge was built
    from — including each source's kind (leader/replica/partial), so a
    view computed while a shard was degraded can never be served after it
    heals (or vice versa).  When only replica watermarks advanced, the
    per-shard ``ticks`` let fleet_view ask each replica exactly which
    checkpoint units changed and re-graft those alone instead of
    rebuilding the whole merged tree.
    """

    key: tuple
    view: DataModel
    #: ``(shard, kind)`` for every shard — the source *shape* of the view.
    kinds: tuple
    #: Leader sources by shard: the model object (identity) and version.
    leader_sources: dict[int, tuple[DataModel, int]]
    #: Replica sources by shard: ``(applied_txn, early_seq)``.
    replica_stamps: dict[int, tuple[int, int]]
    #: Replica change-log cursors by shard (``ReadReplica.change_tick``).
    ticks: dict[int, int]
    #: The shard whose fork the merge is based on.
    first_shard: int
    pinned: tuple


class ReadProxy:
    """Composes local authoritative shards with read replicas of the
    shards this process does not host, so fleet-wide reads work from any
    process (the leaders keep exclusive ownership of the write path).

    Replicas are created lazily — a process that never asks for a fleet
    view pays nothing — and each replica's catch-up is watch-driven, so a
    quiescent fleet costs zero coordination operations per read.
    """

    def __init__(self, platform: "TropicPlatform"):
        self._platform = platform
        self._replicas: dict[int, ReadReplica] = {}
        self._lock = traced(threading.Lock(), "ReadProxy._lock")

    def replica(self, shard: int) -> ReadReplica:
        """The (lazily created) read replica tailing ``shard``'s store."""
        with self._lock:
            replica = self._replicas.get(shard)
        if replica is not None:
            return replica
        # Construct outside the lock: KVStore's constructor issues an
        # ensure_path coordination round-trip, and holding _lock across
        # it would stall every reader behind one slow quorum.  Losing the
        # construction race only costs a duplicate (idempotent) probe;
        # setdefault keeps exactly one replica per shard.
        platform = self._platform
        sharded = platform.config.num_shards > 1
        store = TropicStore(
            KVStore(platform.client, platform._store_prefix(shard)),
            shard_id=shard if sharded else None,
            num_shards=platform.config.num_shards if sharded else None,
        )
        fresh = ReadReplica(
            store,
            platform.schema,
            platform.procedures,
            shard_id=shard,
            counters=platform.resilience,
        )
        with self._lock:
            return self._replicas.setdefault(shard, fresh)

    def replicas(self) -> dict[int, ReadReplica]:
        with self._lock:
            return dict(self._replicas)

    def subscribe(
        self,
        path: str,
        callback: "Callable[[list[SubtreeDelta]], None] | None" = None,
    ) -> Subscription:
        """Subscribe to the committed delta stream of the subtree at
        ``path``, regardless of which process hosts its owning shard.

        The subscription rides the owning shard's read replica (created
        lazily; for locally hosted shards the replica tails the local
        store), so it costs zero coordination operations while the shard
        is idle.  Gateway caches initialise from the replica's
        :meth:`~repro.core.replica.ReadReplica.snapshot` and then apply
        deltas — see ``docs/architecture.md#subtree-subscriptions``.
        """
        platform = self._platform
        shard = 0
        if platform.config.num_shards > 1:
            if is_global_path(path):
                raise ConfigurationError(
                    f"path {path!r} is above the sharding granularity; "
                    f"subscribe per subtree (e.g. per host) in a sharded "
                    f"deployment"
                )
            shard = platform.shard_router.shard_of(path)
        return self.replica(shard).subscribe(path, callback)

    def subscribe_many(self, paths: "list[str]") -> "StitchedSubscription":
        """Subscribe to several subtrees — possibly owned by different
        shards — as **one causally stitched stream**.

        Per-shard delta streams are independently timed, so a naive
        consumer of two subscriptions could observe one shard's half of a
        cross-shard 2PC commit long before the other shard's half — the
        subscription-side analogue of a torn fleet view.  The stitched
        stream holds each shard's events at the commit's barrier marker
        until every other subscribed participant's half is available, so
        a consumer that applies events in the order :meth:`
        StitchedSubscription.poll` returns them never materialises
        exactly one slice of a cross-shard transaction (see
        ``docs/architecture.md#stitched-streams``).
        """
        return StitchedSubscription(self, paths)

    def pump(self) -> int:
        """Refresh every instantiated replica (free while the coordination
        watches are parked); returns how many replicas advanced.  Drives
        subscription delivery for callers that do not read fleet views."""
        advanced = 0
        for replica in self.replicas().values():
            if replica.refresh():
                advanced += 1
        return advanced


class StitchedSubscription:
    """Causally stitched multi-shard delta stream (see
    :meth:`ReadProxy.subscribe_many`).

    One barrier-aware whole-shard subscription per involved shard feeds a
    per-shard pending queue; :meth:`poll` releases each queue's prefix in
    commit order, stopping at any cross-shard commit barrier whose other
    subscribed participants have not yet produced their half.  Holds are
    per shard — an unrelated shard's stream is never delayed — and
    resolve as soon as the lagging half is *available* (its barrier event
    was ingested, or its replica provably applied the commit — which also
    covers halves that arrived via a fence early-application or were
    absorbed into a checkpoint before their barrier could be streamed).

    Events are returned as ``(shard, event)`` pairs.  On a ``resync``
    event the shard's pending tail is dropped (the truncated stream
    cannot be patched) and the consumer must rebuild that shard's
    derived state from a snapshot — use a *fenced* fleet view so the
    rebuild itself cannot tear.
    """

    #: Bounded memory of barrier sightings (txid -> shards seen).
    BARRIER_MEMORY = 4096

    def __init__(self, proxy: ReadProxy, paths: "list[str]"):
        if not paths:
            raise ConfigurationError("subscribe_many needs at least one path")
        platform = proxy._platform
        self._paths_by_shard: dict[int, list[str]] = {}
        for path in paths:
            shard = 0
            if platform.config.num_shards > 1:
                if is_global_path(path):
                    raise ConfigurationError(
                        f"path {path!r} is above the sharding granularity; "
                        f"subscribe per subtree (e.g. per host) in a "
                        f"sharded deployment"
                    )
                shard = platform.shard_router.shard_of(path)
            parsed = str(ResourcePath.parse(path))
            self._paths_by_shard.setdefault(shard, []).append(parsed)
        #: Whole-shard streams: one ordered event source per shard keeps
        #: the commit order intact; path filtering happens at release.
        self._subs: dict[int, Subscription] = {
            shard: proxy.replica(shard).subscribe("/", include_barriers=True)
            for shard in sorted(self._paths_by_shard)
        }
        self._pending: dict[int, deque] = {
            shard: deque() for shard in self._subs
        }
        self._barriers_seen: OrderedDict[str, set[int]] = OrderedDict()
        self._closed = False

    def _matches(self, shard: int, path: "str | None") -> bool:
        if path is None:
            return False
        for wanted in self._paths_by_shard[shard]:
            if wanted == "/" or path == wanted or path.startswith(wanted + "/"):
                return True
        return False

    def _half_available(self, shard: int, txid: str) -> bool:
        """Whether ``shard``'s half of cross-shard commit ``txid`` is
        available to this consumer: its barrier was ingested, or its
        replica's model provably includes the commit."""
        if shard in self._barriers_seen.get(txid, ()):
            return True
        sub = self._subs.get(shard)
        return sub is not None and sub.replica.has_applied(txid)

    def poll(self, refresh: bool = True) -> "list[tuple[int, SubtreeDelta]]":
        """Drain the stitched stream: ``(shard, event)`` pairs in a
        cross-shard-atomic order (never exactly one participant's half of
        a 2PC commit)."""
        for shard, sub in self._subs.items():
            for event in sub.poll(refresh=refresh):
                if event.kind == EVENT_RESYNC:
                    # The stream was truncated by a checkpoint; pending
                    # events predate state the snapshot already covers.
                    self._pending[shard].clear()
                self._pending[shard].append(event)
                if event.kind == EVENT_BARRIER and event.txid is not None:
                    self._barriers_seen.setdefault(event.txid, set()).add(shard)
                    self._barriers_seen.move_to_end(event.txid)
        out: list[tuple[int, SubtreeDelta]] = []
        for shard in self._subs:
            pending = self._pending[shard]
            while pending:
                event = pending[0]
                if event.kind == EVENT_BARRIER:
                    held = any(
                        participant != shard
                        and participant in self._subs
                        and not self._half_available(participant, event.txid)
                        for participant in event.participants
                    )
                    if held:
                        break  # hold this shard's stream at the barrier
                    pending.popleft()
                    out.append((shard, event))
                    continue
                pending.popleft()
                if event.kind == EVENT_RESYNC or self._matches(shard, event.path):
                    out.append((shard, event))
        while len(self._barriers_seen) > self.BARRIER_MEMORY:
            self._barriers_seen.popitem(last=False)
        return out

    def pending(self) -> int:
        return sum(len(queue) for queue in self._pending.values())

    def shards(self) -> "list[int]":
        return sorted(self._subs)

    def close(self) -> None:
        self._closed = True
        for sub in self._subs.values():
            sub.close()

    def __repr__(self) -> str:
        return (
            f"<StitchedSubscription shards={self.shards()} "
            f"pending={self.pending()}>"
        )


class TransactionHandle:
    """Client-side handle to a submitted transaction."""

    def __init__(self, platform: "TropicPlatform", txid: str):
        self.platform = platform
        self.txid = txid

    def refresh(self) -> Transaction | None:
        return self.platform.load_transaction(self.txid)

    @property
    def state(self) -> TransactionState | None:
        txn = self.refresh()
        return None if txn is None else txn.state

    def is_done(self) -> bool:
        txn = self.refresh()
        return txn is not None and txn.is_terminal

    def wait(self, timeout: float | None = None) -> Transaction:
        """Block until the transaction reaches a terminal state."""
        return self.platform.wait_for(self.txid, timeout)

    def __repr__(self) -> str:
        return f"<TransactionHandle {self.txid}>"


class _ControllerRunner(threading.Thread):
    """Service thread hosting one controller replica."""

    def __init__(
        self, platform: "TropicPlatform", controller: Controller, election_path: str
    ):
        super().__init__(name=f"tropic-{controller.name}", daemon=True)
        self.platform = platform
        self.controller = controller
        self.shard = controller.shard_id
        self.stop_event = threading.Event()
        self.election_client = CoordinationClient(
            platform.ensemble, session_timeout=platform.config.session_timeout
        )
        self.election = LeaderElection(
            self.election_client, election_path, controller.name
        )
        self.is_leader = False
        self.became_leader_at: float | None = None

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        clock = self.platform.clock
        config = self.platform.config
        self.election.volunteer()
        last_heartbeat = clock.now()
        while not self.stop_event.is_set():
            try:
                now = clock.now()
                if now - last_heartbeat >= config.heartbeat_interval:
                    self.election_client.heartbeat()
                    last_heartbeat = now
                leading = self.election.is_leader()
                if leading and not self.is_leader:
                    self.controller.recover()
                    self.became_leader_at = clock.now()
                elif not leading and self.is_leader:
                    self.controller.demote()
                self.is_leader = leading
                did_work = self.controller.step() if leading else False
                if not did_work:
                    clock.sleep(config.queue_poll_interval)
            except SessionExpiredError:
                # An expired session never heals by waiting: re-establish
                # it (and re-enter the election) instead of looping on the
                # same dead session forever.
                self._recover_session()
                last_heartbeat = clock.now()
            except ReproError as exc:
                # Other coordination hiccups (lost quorum, leadership
                # races) are retried on the next loop iteration.
                self.platform.resilience.record_failure(exc)
                clock.sleep(config.queue_poll_interval)
            except Exception as exc:  # noqa: BLE001 - keep the replica alive
                self.platform.resilience.record_failure(exc)
                clock.sleep(config.queue_poll_interval)

    def _recover_session(self) -> None:
        """Recover from coordination-session expiry (either session).

        The platform's shared client is healed first (one reconnect fixes
        every store/queue built on it).  If this runner's *election*
        session expired, its ephemeral member znode is gone — the replica
        must step down (a leader whose session expired has lost its
        leadership the moment the znode vanished), reconnect under
        ``config.session_timeout`` and re-volunteer; it re-enters the
        election as a fresh follower.
        """
        platform = self.platform
        config = platform.config
        platform._heal_sessions()
        try:
            if not self.election_client.is_live():
                if self.is_leader:
                    self.controller.demote()
                    self.is_leader = False
                self.election_client.reconnect(config.session_timeout)
                self.election.rejoin()
                platform.resilience.session_expiries += 1
        except ReproError:
            pass  # ensemble still unhealthy; retried on the next iteration
        platform.clock.sleep(config.queue_poll_interval)

    def stop(self) -> None:
        self.stop_event.set()


class _WorkerRunner(threading.Thread):
    """Service thread hosting one physical worker."""

    def __init__(self, platform: "TropicPlatform", worker: Worker):
        super().__init__(name=f"tropic-{worker.name}", daemon=True)
        self.platform = platform
        self.worker = worker
        self.stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        clock = self.platform.clock
        config = self.platform.config
        while not self.stop_event.is_set():
            try:
                if not self.worker.step():
                    clock.sleep(config.queue_poll_interval)
            except SessionExpiredError:
                # Workers share the platform client; heal it and retry.
                self.platform._heal_sessions()
                clock.sleep(config.queue_poll_interval)
            except ReproError as exc:
                self.platform.resilience.record_failure(exc)
                clock.sleep(config.queue_poll_interval)
            except Exception as exc:  # noqa: BLE001 - keep the worker alive
                self.platform.resilience.record_failure(exc)
                clock.sleep(config.queue_poll_interval)

    def stop(self) -> None:
        self.stop_event.set()


class _MaintenanceRunner(threading.Thread):
    """Periodic repair daemon and stalled-transaction watchdog (§4)."""

    def __init__(self, platform: "TropicPlatform"):
        super().__init__(name="tropic-maintenance", daemon=True)
        self.platform = platform
        self.stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        clock = self.platform.clock
        config = self.platform.config
        last_repair = clock.now()
        while not self.stop_event.is_set():
            try:
                now = clock.now()
                if config.repair_period > 0 and now - last_repair >= config.repair_period:
                    self.platform.repair()
                    last_repair = now
                if config.txn_timeout > 0:
                    self.platform.terminate_stalled(config.txn_timeout)
            except SessionExpiredError:
                self.platform._heal_sessions()
            except ReproError as exc:
                self.platform.resilience.record_failure(exc)
            except Exception as exc:  # noqa: BLE001
                self.platform.resilience.record_failure(exc)
            clock.sleep(max(config.queue_poll_interval, 0.01))

    def stop(self) -> None:
        self.stop_event.set()


class TropicPlatform:
    """Transactional resource orchestration platform."""

    def __init__(
        self,
        schema: ModelSchema,
        procedures: ProcedureRegistry,
        config: TropicConfig | None = None,
        registry: DeviceRegistry | None = None,
        initial_model: DataModel | None = None,
        ensemble: CoordinationEnsemble | None = None,
        clock: Clock | None = None,
        threaded: bool = False,
        shard_assignments: dict[str, int] | None = None,
        local_shards: list[int] | None = None,
    ):
        self.schema = schema
        self.procedures = procedures
        self.config = config or TropicConfig()
        self.config.validate()
        self.registry = registry
        self.initial_model = initial_model
        self.clock = clock or RealClock()
        self.threaded = threaded
        self.shard_assignments = dict(shard_assignments or {})
        if local_shards is None:
            self._local_shards = list(range(self.config.num_shards))
        else:
            self._local_shards = sorted(set(int(s) for s in local_shards))
            for shard in self._local_shards:
                if not 0 <= shard < self.config.num_shards:
                    raise ConfigurationError(
                        f"local shard {shard} outside 0..{self.config.num_shards - 1}"
                    )
            if not self._local_shards:
                raise ConfigurationError("local_shards must name at least one shard")

        self.ensemble = ensemble or CoordinationEnsemble(
            num_servers=3,
            clock=self.clock,
            default_session_timeout=self.config.session_timeout,
            op_latency=self.config.coordination_latency,
        )
        self.client: CoordinationClient | None = None
        self.shard_router: ShardRouter | None = None
        self.twopc: TwoPCLog | None = None
        self.read_proxy: ReadProxy | None = None
        self.shards: dict[int, ShardRuntime] = {}
        #: inputQ of every shard (local or not): submit routing and the
        #: cross-shard 2PC protocol both need to reach foreign shards.
        self._all_input_queues: dict[int, DistributedQueue] = {}
        #: Units written by pinned cross-shard transactions, keyed to the
        #: shard that executed them — the owner's copy is bootstrap-frozen,
        #: so the merged read view must prefer the pinned shard's copy.
        self._pinned_foreign_units: dict[str, int] = {}
        # Shard-0-local aliases kept for single-shard callers (the paper's
        # deployment shape); populated by start().
        self.store: TropicStore | None = None
        self.input_queue: DistributedQueue | None = None
        self.phy_queue: DistributedQueue | None = None
        self.controllers: list[Controller] = []
        self.workers: list[Worker] = []
        self.signals: SignalBoard | None = None
        self.completed_transactions: list[Transaction] = []
        self._completed_index: dict[str, Transaction] = {}
        self._txn_shards: dict[str, int] = {}
        self._controller_runners: list[_ControllerRunner] = []
        self._worker_runners: list[_WorkerRunner] = []
        self._maintenance: _MaintenanceRunner | None = None
        self._started = False
        self._completion_lock = traced(threading.Lock(), "TropicPlatform._completion_lock")
        #: Fault-tolerance event counters shared with the queues, read
        #: replicas and service runners (see metrics.collectors).
        self.resilience = ResilienceCounters()
        self._heal_lock = traced(threading.Lock(), "TropicPlatform._heal_lock")
        #: Merged-fleet-view cache, one entry per consistency mode.  Hits
        #: are served as O(1) forks of the cached tree; a stamp mismatch
        #: confined to replica watermark advances is repaired by
        #: re-grafting only the checkpoint units the owning shards
        #: actually changed (per-subtree invalidation); see fleet_view.
        self._view_cache: dict[str, _ViewCacheEntry] = {}
        #: Views served by patching the cached merge (per-subtree
        #: invalidation) instead of a full rebuild; observability/tests.
        self._view_cache_patches = 0

    # ------------------------------------------------------------------
    # Shard namespaces
    # ------------------------------------------------------------------

    def _store_prefix(self, shard: int) -> str:
        return shard_store_prefix(shard, self.config.num_shards)

    def _input_queue_path(self, shard: int) -> str:
        if self.config.num_shards == 1:
            return INPUT_QUEUE_PATH
        return f"/tropic/queues/shard-{shard}/inputQ"

    def _phy_queue_path(self, shard: int) -> str:
        if self.config.num_shards == 1:
            return PHY_QUEUE_PATH
        return f"/tropic/queues/shard-{shard}/phyQ"

    def _election_path(self, shard: int) -> str:
        if self.config.num_shards == 1:
            return ELECTION_PATH
        return f"{ELECTION_PATH}/shard-{shard}"

    def _load_or_persist_shard_map(self) -> ShardMap:
        """Resolve the authoritative shard map.

        The first process to start persists its map in the global
        coordination namespace; every later process (restarts, other
        shard hosts) adopts the persisted one, which keeps routing stable
        across restarts regardless of local configuration drift.
        """
        shard_kv = KVStore(self.client, SHARD_MAP_PREFIX)
        persisted = shard_kv.get("map")
        if persisted is None:
            shard_map = ShardMap(self.config.num_shards, self.shard_assignments)
            if self.config.num_shards > 1:
                shard_kv.put("map", shard_map.to_dict())
            return shard_map
        shard_map = ShardMap.from_dict(persisted)
        if shard_map.num_shards != self.config.num_shards:
            raise ConfigurationError(
                f"persisted shard map has {shard_map.num_shards} shards but "
                f"config.num_shards={self.config.num_shards}; resharding "
                f"requires an explicit migration, not a restart"
            )
        return shard_map

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "TropicPlatform":
        """Bring up the store, queues, controllers and workers."""
        if self._started:
            return self
        config = self.config
        self.client = CoordinationClient(self.ensemble, session_timeout=_LONG_SESSION)
        self.shard_router = ShardRouter(
            self._load_or_persist_shard_map(), config.cross_shard_policy
        )

        sharded = config.num_shards > 1
        if sharded:
            # Global (unsharded) namespaces: every shard's inputQ (for
            # routing and 2PC peer traffic) and the 2PC decision log.
            self._all_input_queues = {
                shard: DistributedQueue(
                    self.client,
                    self._input_queue_path(shard),
                    self.clock,
                    counters=self.resilience,
                    reconnect_on_expiry=True,
                )
                for shard in range(config.num_shards)
            }
            self.twopc = TwoPCLog(KVStore(self.client, TWOPC_PREFIX))
        self.read_proxy = ReadProxy(self)
        num_controllers = config.num_controllers if self.threaded else 1
        for shard in self._local_shards:
            store = TropicStore(
                KVStore(self.client, self._store_prefix(shard)),
                shard_id=shard if sharded else None,
                num_shards=config.num_shards if sharded else None,
            )
            runtime = ShardRuntime(
                index=shard,
                store=store,
                input_queue=self._all_input_queues.get(shard)
                or DistributedQueue(
                    self.client,
                    self._input_queue_path(shard),
                    self.clock,
                    counters=self.resilience,
                    reconnect_on_expiry=True,
                ),
                phy_queue=DistributedQueue(
                    self.client,
                    self._phy_queue_path(shard),
                    self.clock,
                    counters=self.resilience,
                    reconnect_on_expiry=True,
                ),
                election_path=self._election_path(shard),
            )

            # Bootstrap the shard's data-model checkpoint on first start.
            # Every shard checkpoints the full initial model: a shard is
            # authoritative for its own subtrees only, but keeping the full
            # tree lets subtree-local constraint checks and reads work
            # without cross-shard calls (foreign subtrees are never
            # mutated locally, so they are simply a bootstrap-frozen view).
            checkpoint, _ = store.load_checkpoint()
            if checkpoint is None:
                model = (
                    self.initial_model if self.initial_model is not None else DataModel()
                )
                store.save_checkpoint(model, 0)

            for index in range(num_controllers):
                prefix = f"controller-{shard}-{index}" if sharded else f"controller-{index}"
                runtime.controllers.append(
                    Controller(
                        name=f"{prefix}-{random_id('c')[-4:]}",
                        config=config,
                        store=store,
                        input_queue=runtime.input_queue,
                        phy_queue=runtime.phy_queue,
                        schema=self.schema,
                        procedures=self.procedures,
                        clock=self.clock,
                        on_complete=self._on_complete,
                        shard_id=shard,
                        router=self.shard_router if sharded else None,
                        peer_queues=self._all_input_queues if sharded else None,
                        twopc=self.twopc,
                    )
                )
            for index in range(config.num_workers):
                name = f"worker-{shard}-{index}" if sharded else f"worker-{index}"
                runtime.workers.append(
                    Worker(
                        name=name,
                        store=store,
                        phy_queue=runtime.phy_queue,
                        input_queue=runtime.input_queue,
                        registry=self.registry,
                        config=config,
                        clock=self.clock,
                    )
                )
            self.shards[shard] = runtime

        first = self.shards[self._local_shards[0]]
        self.store = first.store
        self.input_queue = first.input_queue
        self.phy_queue = first.phy_queue
        self.signals = SignalBoard(first.store)
        self.controllers = [c for rt in self.shards.values() for c in rt.controllers]
        self.workers = [w for rt in self.shards.values() for w in rt.workers]

        if self.threaded:
            for runtime in self.shards.values():
                for controller in runtime.controllers:
                    runner = _ControllerRunner(self, controller, runtime.election_path)
                    self._controller_runners.append(runner)
                    runner.start()
            for worker in self.workers:
                runner = _WorkerRunner(self, worker)
                self._worker_runners.append(runner)
                runner.start()
            if self.config.repair_period > 0 or self.config.txn_timeout > 0:
                self._maintenance = _MaintenanceRunner(self)
                self._maintenance.start()
        else:
            # Inline runtime: one controller per shard, recovered eagerly.
            for runtime in self.shards.values():
                runtime.controllers[0].recover()

        self._started = True
        return self

    def stop(self) -> None:
        """Stop service threads and close coordination sessions."""
        for runner in self._controller_runners:
            runner.stop()
        for runner in self._worker_runners:
            runner.stop()
        if self._maintenance is not None:
            self._maintenance.stop()
        for runner in self._controller_runners:
            runner.join(timeout=2.0)
        for runner in self._worker_runners:
            runner.join(timeout=2.0)
        if self._maintenance is not None:
            self._maintenance.join(timeout=2.0)
        self._controller_runners = []
        self._worker_runners = []
        self._maintenance = None
        self._started = False

    def __enter__(self) -> "TropicPlatform":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    @property
    def local_shards(self) -> list[int]:
        return list(self._local_shards)

    def _resolve_shard(self, procedure: str, args: dict[str, Any] | None) -> int:
        """Owning shard for one submission (client-side routing)."""
        if self.config.num_shards == 1:
            return 0
        return self.shard_router.resolve(procedure, args)

    def _route_transaction(
        self, procedure: str, args: dict[str, Any] | None, txn: Transaction
    ) -> int:
        """Route one submission, stamping the 2PC coordinator and the
        provisional participant set into the transaction document when the
        argument paths span shards under ``cross_shard_policy='2pc'``.
        (The coordinator recomputes the authoritative set from the
        simulated read/write set at prepare time.)"""
        if self.config.num_shards == 1:
            return 0
        decision = self.shard_router.plan(procedure, args)
        if decision.cross_shard and self.shard_router.policy == "2pc":
            txn.coordinator = decision.shard
            txn.participants = sorted(decision.shards)
        return decision.shard

    def _runtime(self, shard: int) -> ShardRuntime:
        runtime = self.shards.get(shard)
        if runtime is None:
            raise ShardNotLocalError(
                f"shard {shard} is not hosted by this process "
                f"(local shards: {self._local_shards})",
                shard=shard,
            )
        return runtime

    def shard_of_txn(self, txid: str) -> int | None:
        """Shard a transaction was routed to (local submissions only have
        it cached; otherwise the local shard stores are searched)."""
        shard = self._txn_shards.get(txid)
        if shard is not None:
            return shard
        for shard, runtime in self.shards.items():
            if runtime.store.load_transaction(txid) is not None:
                return shard
        return None

    def load_transaction(self, txid: str) -> Transaction | None:
        """Load a transaction document from its owning shard's store."""
        shard = self._txn_shards.get(txid)
        if shard is not None and shard in self.shards:
            return self.shards[shard].store.load_transaction(txid)
        for runtime in self.shards.values():
            txn = runtime.store.load_transaction(txid)
            if txn is not None:
                return txn
        return None

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def submit(
        self,
        procedure: str,
        args: dict[str, Any] | None = None,
        wait: bool = True,
        timeout: float | None = 30.0,
        client: str = "",
        idempotency_token: str | None = None,
    ) -> Transaction | TransactionHandle:
        """Submit a transactional orchestration (Step 1 of Figure 2).

        The transaction is routed to the shard owning its argument paths
        and enqueued on that shard's inputQ.  With ``wait=True`` (default)
        the call blocks until the transaction reaches a terminal state and
        returns the final :class:`~repro.core.txn.Transaction`; otherwise
        it returns a :class:`TransactionHandle` immediately.

        ``idempotency_token`` makes the submission safe to re-drive after
        an *ambiguous* failure (timeout, connection loss after the enqueue,
        a crash between commit and acknowledgement): the token is persisted
        in the transaction document — the token→txid entry rides the same
        store write — so a retried ``submit`` with the same token resumes
        the original transaction (re-enqueueing its request if the first
        attempt died before the inputQ put) instead of double-applying.
        Pair with :func:`repro.common.retry.call_with_retries`, which only
        re-drives ambiguous failures when a token is attached.
        """
        self._require_started()
        if not self.procedures.has(procedure):
            raise ConfigurationError(f"unknown stored procedure {procedure!r}")
        txn = Transaction(
            procedure=procedure,
            args=dict(args or {}),
            client=client,
            idempotency_token=idempotency_token,
        )
        shard = self._route_transaction(procedure, args, txn)
        runtime = self._runtime(shard)
        if idempotency_token is not None:
            entry = runtime.store.lookup_token(idempotency_token)
            if entry is not None:
                return self._resume_tokened(runtime, shard, entry, wait, timeout)
        txn.mark(TransactionState.INITIALIZED, self.clock.now())
        if idempotency_token is not None:
            # One group commit: the document and the token→txid submission
            # record become durable together, so a crash can never leave a
            # document a retry cannot find by its token.
            with runtime.store.batch():
                runtime.store.save_transaction(txn)
                runtime.store.record_token(
                    idempotency_token, txn.txid, txn.state.value
                )
        else:
            runtime.store.save_transaction(txn)
        runtime.input_queue.put(request_message(txn.txid))
        self._txn_shards[txn.txid] = shard
        handle = TransactionHandle(self, txn.txid)
        if not wait:
            return handle
        if not self.threaded:
            self.run_until_idle()
        return handle.wait(timeout)

    def _resume_tokened(
        self,
        runtime: ShardRuntime,
        shard: int,
        entry: dict[str, Any],
        wait: bool,
        timeout: float | None,
    ) -> Transaction | TransactionHandle:
        """Resume the transaction a previously seen idempotency token maps
        to (exactly-once re-drive: no new transaction is created).

        If the original document is still non-terminal its request message
        is re-enqueued — the first attempt may have crashed between the
        document save and the inputQ put, and duplicate requests are safe
        because the controller accepts only INITIALIZED documents.
        """
        txid = entry["txid"]
        self.resilience.token_dedup_hits += 1
        self._txn_shards.setdefault(txid, shard)
        txn = runtime.store.load_transaction(txid)
        if txn is not None and not txn.is_terminal:
            runtime.input_queue.put(request_message(txid))
        handle = TransactionHandle(self, txid)
        if not wait:
            return handle
        if not self.threaded:
            self.run_until_idle()
        return handle.wait(timeout)

    def submit_many(
        self,
        requests: list[tuple[str, dict[str, Any]]],
        wait: bool = True,
        timeout: float | None = 60.0,
        idempotency_tokens: list[str | None] | None = None,
    ) -> list[Transaction | TransactionHandle]:
        """Submit a batch of transactions with submit-side batching.

        Per shard, the INITIALIZED transaction documents of the whole batch
        are group-committed in one store write and the request messages are
        enqueued in one queue write — two coordination round-trips per
        shard per batch instead of two per transaction.

        ``idempotency_tokens`` (optional, one entry per request, ``None``
        entries allowed) gives individual requests the same exactly-once
        re-drive semantics as a tokened :meth:`submit`: already-seen tokens
        resume their original transaction, fresh tokens ride the batch
        group commit together with their documents.

        The batch shares one wait deadline (``timeout`` from call entry),
        and every waited transaction is additionally bounded by
        ``config.txn_timeout`` — the same per-transaction stall deadline
        :meth:`submit` enforces — raising the typed (ambiguous, therefore
        retry-with-token-only) :class:`~repro.common.errors.TxnTimeout`.
        """
        self._require_started()
        if idempotency_tokens is not None and len(idempotency_tokens) != len(requests):
            raise ConfigurationError(
                f"idempotency_tokens must match requests 1:1 "
                f"({len(idempotency_tokens)} tokens for {len(requests)} requests)"
            )
        handles: list[TransactionHandle] = []
        per_shard: dict[int, list[Transaction]] = {}
        for index, (procedure, args) in enumerate(requests):
            if not self.procedures.has(procedure):
                raise ConfigurationError(f"unknown stored procedure {procedure!r}")
            token = idempotency_tokens[index] if idempotency_tokens else None
            txn = Transaction(
                procedure=procedure, args=dict(args or {}), idempotency_token=token
            )
            shard = self._route_transaction(procedure, args, txn)
            runtime = self._runtime(shard)  # fail fast before persisting
            if token is not None:
                entry = runtime.store.lookup_token(token)
                if entry is not None:
                    handles.append(
                        self._resume_tokened(runtime, shard, entry, False, None)
                    )
                    continue
            txn.mark(TransactionState.INITIALIZED, self.clock.now())
            per_shard.setdefault(shard, []).append(txn)
            self._txn_shards[txn.txid] = shard
            handles.append(TransactionHandle(self, txn.txid))
        for shard, txns in per_shard.items():
            runtime = self._runtime(shard)
            with runtime.store.batch():
                for txn in txns:
                    runtime.store.save_transaction(txn)
                    if txn.idempotency_token is not None:
                        runtime.store.record_token(
                            txn.idempotency_token, txn.txid, txn.state.value
                        )
            runtime.input_queue.put_many([request_message(t.txid) for t in txns])
        if not wait:
            return list(handles)
        if not self.threaded:
            self.run_until_idle()
        deadline = None if timeout is None else self.clock.now() + timeout
        results: list[Transaction | TransactionHandle] = []
        for handle in handles:
            remaining = (
                None if deadline is None else max(deadline - self.clock.now(), 0.0)
            )
            results.append(handle.wait(remaining))
        return results

    def wait_for(self, txid: str, timeout: float | None = 30.0) -> Transaction:
        """Block until ``txid`` reaches a terminal state (polling the store).

        The wait is bounded by the smaller of ``timeout`` and
        ``config.txn_timeout`` (when set), so every wait surface honours
        the configured per-transaction stall deadline uniformly.  On
        expiry raises :class:`~repro.common.errors.TxnTimeout` — typed,
        classified *ambiguous* (the transaction may still commit after the
        caller gave up), and a subclass of the builtin ``TimeoutError``
        for callers that predate the typed error.
        """
        self._require_started()
        effective = timeout
        if self.config.txn_timeout > 0:
            effective = (
                self.config.txn_timeout
                if timeout is None
                else min(timeout, self.config.txn_timeout)
            )
        deadline = None if effective is None else self.clock.now() + effective
        while True:
            txn = self._completed_lookup(txid) or self.load_transaction(txid)
            if txn is not None and txn.is_terminal:
                return txn
            if not self.threaded:
                # Inline runtime: drive execution ourselves.
                progressed = self.run_until_idle()
                txn = self._completed_lookup(txid) or self.load_transaction(txid)
                if txn is not None and txn.is_terminal:
                    return txn
                if not progressed:
                    raise TransactionFailed(
                        f"transaction {txid} cannot make progress (deadlocked or lost)",
                        txid=txid,
                    )
                continue
            if deadline is not None and self.clock.now() >= deadline:
                raise TxnTimeout(
                    f"transaction {txid} did not finish within {effective}s",
                    txid=txid,
                )
            self.clock.sleep(self.config.queue_poll_interval)

    # ------------------------------------------------------------------
    # Inline runtime driver
    # ------------------------------------------------------------------

    def run_until_idle(self, max_rounds: int = 100_000) -> int:
        """Step every local shard's controller and workers until all queues
        are drained.

        Only meaningful for the inline runtime; returns the number of
        productive rounds.
        """
        self._require_started()
        if self.threaded:
            return 0
        rounds = 0
        for _ in range(max_rounds):
            progressed = False
            for runtime in self.shards.values():
                if runtime.controllers[0].step():
                    progressed = True
                for worker in runtime.workers:
                    if worker.step():
                        progressed = True
            if not progressed and all(
                rt.input_queue.is_empty() and rt.phy_queue.is_empty()
                for rt in self.shards.values()
            ):
                break
            if progressed:
                rounds += 1
        return rounds

    # ------------------------------------------------------------------
    # Reconciliation and signals (§4)
    # ------------------------------------------------------------------

    def reconciler(self, shard: int | None = None) -> Reconciler:
        self._require_started()
        if self.registry is None:
            raise ConfigurationError("reconciliation requires a device registry")
        return Reconciler(self.leader(shard), self.registry)

    def _shard_for_repair(self, path: str) -> int | None:
        if self.config.num_shards == 1:
            return None
        if is_global_path(path):
            raise ConfigurationError(
                f"path {path!r} is above the sharding granularity; run repair/"
                f"reload per owned subtree (e.g. per host) in a sharded deployment"
            )
        return self.shard_router.shard_of(path)

    def repair(self, path: str = "/") -> RepairReport:
        """Drive the physical layer back to the logical state under ``path``.

        Sharded deployments fan a global repair (``"/"`` or a top-level
        subtree) out over every registered device owned by a locally
        hosted shard, each repaired against its owner's model — a shard's
        copy of *foreign* subtrees is bootstrap-frozen and must never be
        used as repair authority.  This keeps the periodic repair daemon
        working unchanged when ``num_shards > 1``.
        """
        if self.config.num_shards > 1 and is_global_path(path):
            return self._repair_global(path)
        return self.reconciler(self._shard_for_repair(path)).repair(path)

    def _repair_global(self, path: str) -> RepairReport:
        self._require_started()
        if self.registry is None:
            raise ConfigurationError("reconciliation requires a device registry")
        scope = path.rstrip("/")
        merged = RepairReport()
        for device_path in self.registry.device_paths():
            device_str = str(device_path)
            if scope and not device_str.startswith(scope + "/"):
                continue
            owner = self.shard_router.shard_of(device_str)
            if owner not in self.shards:
                continue  # foreign shard: its own host process repairs it
            report = self.reconciler(owner).repair(device_str)
            merged.inspected += report.inspected
            merged.actions_executed.extend(report.actions_executed)
            merged.action_errors.extend(report.action_errors)
            merged.unrepairable.extend(report.unrepairable)
        return merged

    def reload(self, path: str) -> ReloadReport:
        return self.reconciler(self._shard_for_repair(path)).reload(path)

    def _controller_for_txn(self, txid: str) -> Controller:
        shard = self.shard_of_txn(txid)
        return self.leader(shard)

    def send_term(self, txid: str) -> None:
        self._controller_for_txn(txid).send_term(txid)

    def send_kill(self, txid: str) -> None:
        self._controller_for_txn(txid).send_kill(txid)

    def terminate_stalled(self, txn_timeout: float) -> list[str]:
        """TERM every outstanding transaction older than ``txn_timeout``."""
        now = self.clock.now()
        terminated = []
        for shard in self._local_shards:
            leader = self.leader(shard)
            for txid, txn in list(leader.outstanding.items()):
                started = txn.timestamps.get(TransactionState.STARTED.value)
                if started is not None and now - started > txn_timeout:
                    leader.send_term(txid)
                    terminated.append(txid)
        return terminated

    # ------------------------------------------------------------------
    # High availability controls (§6.4)
    # ------------------------------------------------------------------

    def leader(self, shard: int | None = None) -> Controller:
        """The controller currently acting as leader of ``shard`` (default:
        the first locally hosted shard)."""
        self._require_started()
        if shard is None:
            shard = self._local_shards[0]
        runtime = self._runtime(shard)
        if not self.threaded:
            return runtime.controllers[0]
        for runner in self._controller_runners:
            if runner.shard == shard and runner.is_alive() and runner.is_leader:
                return runner.controller
        # No acknowledged leader yet (e.g. mid-failover); prefer a replica
        # that has already restored state, then any live replica.
        for runner in self._controller_runners:
            if runner.shard == shard and runner.is_alive() and runner.controller.recovered:
                return runner.controller
        for runner in self._controller_runners:
            if runner.shard == shard and runner.is_alive():
                return runner.controller
        raise ConfigurationError(f"no live controller replica for shard {shard}")

    def leader_for_path(self, path: str) -> Controller:
        """Leader of the shard owning ``path``."""
        if self.config.num_shards == 1:
            return self.leader()
        return self.leader(self.shard_router.shard_of(path))

    def leader_runner(self, shard: int | None = None) -> "_ControllerRunner | None":
        for runner in self._controller_runners:
            if shard is not None and runner.shard != shard:
                continue
            if runner.is_alive() and runner.is_leader:
                return runner
        return None

    def kill_leader(self, shard: int | None = None) -> str | None:
        """Crash the lead controller of ``shard`` (thread stop + session
        expiry); default: the first locally hosted shard.

        Returns the name of the killed controller.  Followers detect the
        failure through session expiry and elect a new leader which resumes
        the shard's in-flight transactions from its persistent store.
        """
        self._require_started()
        if not self.threaded:
            raise ConfigurationError("kill_leader requires the threaded runtime")
        if shard is None:
            shard = self._local_shards[0]
        runner = self.leader_runner(shard)
        if runner is None:
            return None
        runner.stop()
        runner.join(timeout=2.0)
        self.ensemble.expire_session(runner.election_client.session_id)
        return runner.controller.name

    def live_controller_names(self, shard: int | None = None) -> list[str]:
        return [
            r.controller.name
            for r in self._controller_runners
            if r.is_alive() and (shard is None or r.shard == shard)
        ]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _on_complete(self, txn: Transaction) -> None:
        with self._completion_lock:
            self.completed_transactions.append(txn)
            self._completed_index[txn.txid] = txn
            if (
                self.config.num_shards > 1
                and self.config.cross_shard_policy == "pin"
                and txn.state is TransactionState.COMMITTED
            ):
                self._record_pinned_writes(txn)

    def _record_pinned_writes(self, txn: Transaction) -> None:
        """Track the units a pinned transaction wrote outside its own
        shard.  The owners' copies of those units are bootstrap-frozen, so
        the merged read view must prefer the pinned shard's copy — the
        documented pin visibility hazard, surfaced instead of silently
        reading stale owner state.  (In-process only; separate processes
        cannot see it, which is why pin is deprecated in favour of 2pc.)"""
        shard = self._txn_shards.get(txn.txid)
        if shard is None:
            return
        for path in txn.rwset.writes:
            if is_global_path(path):
                continue
            if self.shard_router.shard_of(path) != shard:
                self._pinned_foreign_units[unit_key(path)] = shard

    def _completed_lookup(self, txid: str) -> Transaction | None:
        """Terminal transaction from the in-process observer index, sparing
        a store read + document decode per wait (the store remains the
        source of truth for cross-process callers)."""
        with self._completion_lock:
            return self._completed_index.get(txid)

    def completed(self) -> list[Transaction]:
        with self._completion_lock:
            return list(self.completed_transactions)

    def latencies(self) -> list[float]:
        """Submit-to-terminal latencies of completed transactions, in seconds."""
        return [
            latency
            for txn in self.completed()
            if (latency := txn.latency()) is not None
        ]

    def controller_stats(self) -> dict[str, int]:
        """Controller counters, summed over all locally hosted shards."""
        stats: dict[str, int] = {}
        for shard in self._local_shards:
            for key, value in self.leader(shard).snapshot_stats().items():
                stats[key] = stats.get(key, 0) + value
        return stats

    def controller_busy_seconds(self) -> float:
        return sum(controller.busy_seconds() for controller in self.controllers)

    def resilience_stats(self) -> dict[str, int]:
        """Fault-tolerance counters (retries, token dedups, session
        expiries, watch re-arms, degraded reads) for reports and the CLI."""
        return self.resilience.as_dict()

    def _resolve_consistency(
        self, strict: bool | None, consistency: str | None
    ) -> str:
        """Map the (legacy) ``strict`` flag and the explicit ``consistency``
        argument onto one of the consistency levels; ``config.read_mode``
        supplies the default."""
        if consistency is not None:
            if consistency not in _CONSISTENCY_LEVELS:
                raise ConfigurationError(
                    f"unknown consistency {consistency!r}; "
                    f"choose from {_CONSISTENCY_LEVELS}"
                )
            return consistency
        if strict is True:
            return CONSISTENCY_LEADER
        if strict is False:
            return CONSISTENCY_PARTIAL
        return self.config.read_mode

    def model_view(
        self,
        strict: bool | None = None,
        consistency: str | None = None,
        fence: bool = True,
    ) -> DataModel:
        """A read view of the logical data model (see :meth:`fleet_view`).

        Single shard: the leader's live model (zero copies).  Sharded: a
        merged snapshot assembling every shard's *owned* second-level
        subtrees into one tree, where each shard's subtrees come from the
        in-process leader when the shard is locally hosted and — under the
        default ``consistency="replica"`` — from a read replica tailing
        the owner's committed log otherwise, so fleet reads work from any
        process (``local_shards`` no longer gates reads).

        ``consistency="leader"`` (or the legacy ``strict=True``) keeps the
        strict behaviour: :class:`ShardUnavailable` is raised when this
        process does not host every shard.  ``strict=False`` (or
        ``consistency="partial"``) knowingly accepts the old partial merge
        with bootstrap-frozen foreign subtrees.

        Use :meth:`fleet_view` for the same view plus per-shard watermarks
        (which shards came from replicas, and at which applied-log
        position).

        Units written by pinned cross-shard transactions (deprecated
        ``cross_shard_policy='pin'``) are taken from the *pinned* shard's
        model rather than the owner's, whose copy never saw those writes.

        Sharded views are assembled from O(1) copy-on-write forks of the
        shard models with shared-subtree grafts, and the merged tree is
        cached keyed on every source's version/watermark — an unchanged
        fleet serves each call with one O(1) fork, so this is safe to call
        in read inner loops.
        """
        return self.fleet_view(
            strict=strict, consistency=consistency, fence=fence
        ).model

    def _view_cache_key(
        self,
        local_models: dict[int, DataModel],
        replicas: dict[int, ReadReplica],
        pinned_units: dict[str, int],
    ) -> tuple[tuple, tuple]:
        """The fleet-view cache key plus the per-shard source-kind shape.

        Every shard 0..N-1 contributes an explicit ``(shard, kind, ...)``
        element — leader (model identity + version), replica
        (``applied_txn``, ``early_seq``, checkpoint presence) or partial —
        so source *transitions* (degraded shard healing, replica
        bootstrap appearing, fence early-applications) always miss the
        cache even when the surviving stamps coincide."""
        parts: list[tuple] = []
        kinds: list[tuple[int, str]] = []
        for shard in range(self.config.num_shards):
            if shard in local_models:
                model = local_models[shard]
                parts.append((shard, "leader", model, model.version))
                kinds.append((shard, "leader"))
            elif shard in replicas:
                replica = replicas[shard]
                parts.append(
                    (
                        shard,
                        "replica",
                        replica.applied_txn,
                        replica.early_seq,
                        replica.has_checkpoint,
                    )
                )
                kinds.append((shard, "replica"))
            else:
                parts.append((shard, "partial"))
                kinds.append((shard, "partial"))
        key = (tuple(parts), tuple(sorted(pinned_units.items())))
        return key, tuple(kinds)

    def _patch_cached_view(
        self,
        cached: "_ViewCacheEntry | None",
        kinds: tuple,
        first_shard: int,
        sources: dict[int, DataModel],
        local_models: dict[int, DataModel],
        replicas: dict[int, ReadReplica],
        replica_stamps: dict[int, tuple[int, int]],
        pinned_units: dict[str, int],
    ) -> DataModel | None:
        """Repair the cached merged view by re-grafting only the
        checkpoint units whose owning shard advanced, or return ``None``
        when only a full rebuild is sound (source shape changed, a
        replica re-bootstrapped or its change log was evicted, the base
        shard itself moved, pins are active, or a leader failed over)."""
        if cached is None or cached.kinds != kinds or cached.first_shard != first_shard:
            return None
        pinned = tuple(sorted(pinned_units.items()))
        if cached.pinned != pinned or pinned:
            return None
        dirty: dict[int, set[str] | None] = {}
        for shard, model in local_models.items():
            old = cached.leader_sources.get(shard)
            if old is None or old[0] is not model:
                return None
            if old[1] != model.version:
                if shard == first_shard:
                    # The base fork itself changed; patching would keep
                    # serving the stale base tree.
                    return None
                dirty[shard] = None  # unknown units: re-graft all it owns
        for shard, replica in replicas.items():
            old_stamp = cached.replica_stamps.get(shard)
            new_stamp = replica_stamps.get(shard)
            if old_stamp is None or new_stamp is None:
                return None
            if old_stamp != new_stamp:
                if shard == first_shard:
                    return None
                units = replica.units_changed_since(cached.ticks.get(shard, -1))
                if units is None:
                    return None
                dirty[shard] = units
        if not dirty:
            return None
        router = self.shard_router
        view = cached.view.clone()
        for shard, units in sorted(dirty.items()):
            owner_model = sources[shard]
            if units is None:
                units = set()
                for tree in (view, owner_model):
                    for top_name, top in tree.root.children.items():
                        for child_name in top.children:
                            path = f"/{top_name}/{child_name}"
                            if router.shard_of(path) == shard:
                                units.add(path)
            for path in sorted(units):
                if router.shard_of(path) != shard:
                    # A shard logged a change outside its own units (pin
                    # era residue): the ownership model this patch relies
                    # on does not hold — rebuild.
                    return None
                if owner_model.exists(path):
                    view.replace_subtree(path, owner_model.get(path))
                elif view.exists(path):
                    view.delete(path, recursive=True)
        self._view_cache_patches += 1
        return view

    def fleet_view(
        self,
        strict: bool | None = None,
        consistency: str | None = None,
        fence: bool = True,
    ) -> FleetView:
        """The merged fleet read view plus per-shard provenance.

        Returns a :class:`FleetView` whose ``watermarks`` name, for every
        shard, whether its subtrees came from the in-process leader
        (authoritative, live) or from a :class:`~repro.core.replica.
        ReadReplica` (bounded-stale), and — for replicas — the monotonic
        ``applied_txn`` watermark the copy reflects.

        Replica-sourced views are **atomic across shards** with respect
        to cross-shard 2PC commits: before merging, the decision-log-aware
        read fence (:mod:`repro.core.readfence`) aligns the replica
        watermarks past any commit decision spanning them, so the view
        never contains exactly one participant's slice of a cross-shard
        transaction.  ``fence=False`` skips the alignment (benchmarks,
        and callers that prefer raw per-shard staleness over atomicity).
        """
        self._require_started()
        mode = self._resolve_consistency(strict, consistency)
        if self.config.num_shards == 1:
            try:
                return FleetView(
                    model=self.leader().model,
                    watermarks={0: ShardWatermark(0, CONSISTENCY_LEADER)},
                    consistency=mode,
                )
            except (ConfigurationError, SessionExpiredError, QuorumLostError):
                # Leader unreachable (all replicas down, or coordination
                # lost).  consistency='leader' callers asked for
                # authoritative-or-fail; everyone else degrades gracefully.
                if mode == CONSISTENCY_LEADER:
                    raise
                return self._degraded_single_shard_view(mode)
        missing = [
            shard
            for shard in range(self.config.num_shards)
            if shard not in self.shards
        ]
        if missing and mode == CONSISTENCY_LEADER:
            raise ShardUnavailable(
                f"model_view(consistency='leader') needs shards {missing} "
                f"which this process does not host (local shards: "
                f"{self._local_shards}); read from a process hosting all "
                f"shards, or use consistency='replica' to serve them from "
                f"read replicas of the owners' committed logs",
                shards=missing,
            )
        watermarks: dict[int, ShardWatermark] = {}
        local_leaders: dict[int, Controller] = {}
        local_models: dict[int, DataModel] = {}
        degraded: list[int] = []
        for shard in self._local_shards:
            try:
                leader = self.leader(shard)
            except (ConfigurationError, SessionExpiredError, QuorumLostError):
                # Hosted shard with no reachable leader: degrade this one
                # shard to its read replica (under consistency='replica')
                # or to the partial bootstrap-frozen copy, instead of
                # failing the whole fleet read.
                if mode == CONSISTENCY_LEADER:
                    raise
                degraded.append(shard)
                watermarks[shard] = ShardWatermark(shard, CONSISTENCY_PARTIAL)
                continue
            local_leaders[shard] = leader
            local_models[shard] = leader.model
            watermarks[shard] = ShardWatermark(shard, CONSISTENCY_LEADER)
        if degraded:
            self._heal_sessions()
            self.resilience.degraded_reads += 1
        # Non-hosted shards are disclosed in the watermarks in *every*
        # mode: a partial view's bootstrap-frozen shards must be visible
        # to staleness audits, not silently absent.
        for shard in missing:
            watermarks[shard] = ShardWatermark(shard, CONSISTENCY_PARTIAL)
        replicas: dict[int, ReadReplica] = {}
        if mode == CONSISTENCY_REPLICA:
            for shard in sorted(set(missing) | set(degraded)):
                replica = self.read_proxy.replica(shard)
                try:
                    replica.refresh()
                except ReproError:
                    # Coordination unreachable: serve the replica's last
                    # materialised state below, if it ever bootstrapped.
                    pass
                if not replica.has_checkpoint:
                    # The shard's store was never bootstrapped by any owner
                    # process: the replica's empty model is a placeholder,
                    # not "this shard owns nothing".  Keep this process's
                    # bootstrap-frozen copy of the shard's units (partial
                    # semantics, disclosed in the watermark) rather than
                    # deleting them from the view.
                    watermarks[shard] = ShardWatermark(shard, CONSISTENCY_PARTIAL)
                    continue
                replicas[shard] = replica
                watermarks[shard] = ShardWatermark(
                    shard, CONSISTENCY_REPLICA, replica.applied_txn
                )
        # Decision-log-aware read fence: align the replica sources past
        # any cross-shard 2PC commit spanning them, so the merge below
        # cannot contain half of one.  Free when quiescent (no open
        # barriers -> no coordination reads).
        fence_rewinds: dict[int, tuple[DataModel, int]] = {}
        fence_bypass_cache = False
        if fence and replicas:
            fenced = fence_replica_sources(
                replicas, set(local_leaders), self.twopc
            )
            for shard in fenced.degraded:
                # Neither advanceable nor rewindable: disclosed partial
                # staleness for this view beats a silent torn read.
                replicas.pop(shard, None)
                watermarks[shard] = ShardWatermark(shard, CONSISTENCY_PARTIAL)
            if fenced.rewinds or fenced.degraded:
                # Rewinds are view-local forks and degradations depend on
                # decision-log reachability — neither is captured by the
                # source stamps, so such a view must not be cached (nor
                # served from the cache).
                fence_rewinds = fenced.rewinds
                fence_bypass_cache = True
            for shard, replica in replicas.items():
                if shard not in fence_rewinds:
                    watermarks[shard] = ShardWatermark(
                        shard, CONSISTENCY_REPLICA, replica.applied_txn
                    )
        with self._completion_lock:
            pinned_units = dict(self._pinned_foreign_units)
        # The merged tree is cached keyed on every shard's source *kind
        # and* change stamp: model objects compare by identity, so a
        # leader's version counter (bumped by each mutation entry point)
        # and a replica's watermark pair (applied_txn, early_seq — early
        # fence applications change the model without moving applied_txn)
        # pin the exact states the cached merge was built from, while the
        # explicit kind keeps a view computed under degraded/partial
        # sourcing from ever being served for a healed shard (or vice
        # versa).  An unchanged fleet serves each view with one O(1) fork
        # of the cached tree; a change confined to replica advances
        # re-grafts only the checkpoint units their owners touched; any
        # other change rebuilds the merge (itself only O(units) pointer
        # grafts over copy-on-write forks, never a deep copy).
        cache_key, kinds = self._view_cache_key(
            local_models, replicas, pinned_units
        )
        cached = self._view_cache.get(mode)
        if (
            not fence_bypass_cache
            and cached is not None
            and cached.key == cache_key
        ):
            return FleetView(
                model=cached.view.clone(),
                watermarks=watermarks,
                consistency=mode,
                degraded_shards=sorted(degraded),
            )
        # Fork under each leader's op mutex: the fork swaps the live
        # model's ownership epoch, which must not race an in-flight step's
        # ownership checks (the fork still shows dispatched transactions'
        # simulated effects, like the leader's own reads always have).
        sources: dict[int, DataModel] = {
            shard: leader.fork_model() for shard, leader in local_leaders.items()
        }
        replica_ticks: dict[int, int] = {}
        replica_stamps: dict[int, tuple[int, int]] = {}
        snapshot_failed = False
        for shard, replica in list(replicas.items()):
            if shard in fence_rewinds:
                # The fence cut this shard back to a pre-commit fork to
                # atomically exclude an unconfirmable cross-shard commit;
                # serve that fork instead of the replica's live state.
                rewound_model, rewound_applied = fence_rewinds[shard]
                sources[shard] = rewound_model.clone()
                watermarks[shard] = ShardWatermark(
                    shard, CONSISTENCY_REPLICA, rewound_applied
                )
                continue
            # A locked snapshot, not the live model: another thread's
            # concurrent refresh mutates the replica model in place, and
            # merging from it could capture a half-applied transaction.
            # The snapshot is an O(1) copy-on-write fork under the lock,
            # consistent with the watermark that stamps it.
            try:
                sources[shard], applied_txn = replica.snapshot()
            except ReproError:
                # The snapshot's own catch-up hit dead coordination; this
                # shard falls back to partial for this view only.
                del replicas[shard]
                watermarks[shard] = ShardWatermark(shard, CONSISTENCY_PARTIAL)
                snapshot_failed = True
                continue
            replica_ticks[shard] = replica.change_tick
            replica_stamps[shard] = (applied_txn, replica.early_seq)
            watermarks[shard] = ShardWatermark(
                shard, CONSISTENCY_REPLICA, applied_txn
            )
        if not sources:
            raise ShardUnavailable(
                "no shard source reachable for a fleet view (no live leader "
                "and no bootstrapped read replica)",
                shards=sorted(set(missing) | set(degraded)),
            )
        # Base the merge on the first *authoritative* local source; when
        # every local shard is degraded, any replica source can serve as
        # the base (replicas also hold the full bootstrap tree).
        authoritative = [s for s in self._local_shards if s in sources]
        first_shard = authoritative[0] if authoritative else min(sources)
        view = None
        if not fence_bypass_cache and not snapshot_failed:
            view = self._patch_cached_view(
                cached,
                kinds,
                first_shard,
                sources,
                local_models,
                replicas,
                replica_stamps,
                pinned_units,
            )
        if view is None:
            view = sources[first_shard].clone()
            # Refresh (or drop) units in the base fork that another shard
            # owns.  Grafts share the owner fork's subtrees: no unit is
            # deep-copied.
            for top_name in list(view.root.children):
                for child_name in list(view.root.children[top_name].children):
                    path = f"/{top_name}/{child_name}"
                    owner = self.shard_router.shard_of(path)
                    pinned = pinned_units.get(path)
                    if pinned is not None and pinned in sources:
                        # Pin visibility hazard: the executing shard, not
                        # the owner, has the authoritative copy of this
                        # unit.
                        owner = pinned
                    if owner == first_shard:
                        continue
                    owner_model = sources.get(owner)
                    if owner_model is None:
                        continue  # partial: foreign copy stays bootstrap-frozen
                    if owner_model.exists(path):
                        view.replace_subtree(path, owner_model.get(path))
                    else:
                        view.delete(path, recursive=True)
            # Add units the owner created after bootstrap (absent from the
            # base).
            for shard, model in sources.items():
                if shard == first_shard:
                    continue
                for top_name, top in model.root.children.items():
                    if top_name not in view.root.children:
                        continue
                    for child_name in top.children:
                        path = f"/{top_name}/{child_name}"
                        if self.shard_router.shard_of(path) == shard and not view.exists(path):
                            view.replace_subtree(path, model.get(path))
        if not snapshot_failed and not fence_bypass_cache:
            # A view missing a replica that failed to snapshot must not be
            # cached under a key that claims the replica's state; a fenced
            # rewind/degrade is view-local and equally uncacheable.
            self._view_cache[mode] = _ViewCacheEntry(
                key=cache_key,
                view=view,
                kinds=kinds,
                leader_sources={
                    shard: (model, model.version)
                    for shard, model in local_models.items()
                },
                replica_stamps=replica_stamps,
                ticks=replica_ticks,
                first_shard=first_shard,
                pinned=tuple(sorted(pinned_units.items())),
            )
        return FleetView(
            model=view.clone(),
            watermarks=watermarks,
            consistency=mode,
            degraded_shards=sorted(degraded),
        )

    def _degraded_single_shard_view(self, mode: str) -> FleetView:
        """Leader→replica→partial fallback for the single-shard deployment.

        Serves the read replica's bounded-stale model when it has one, and
        the bootstrap model (knowingly partial) as the last resort; the
        degradation is disclosed via the watermark source and
        ``FleetView.degraded_shards``.  Also heals the shared coordination
        session so subsequent reads (and the controller runners) can
        recover instead of staying degraded forever.
        """
        self._heal_sessions()
        self.resilience.degraded_reads += 1
        replica = self.read_proxy.replica(0)
        snapshot: tuple[DataModel, int] | None = None
        try:
            replica.refresh()
            if replica.has_checkpoint:
                snapshot = replica.snapshot()
        except ReproError:
            pass  # coordination still down: fall through to partial
        if snapshot is not None:
            model, applied_txn = snapshot
            return FleetView(
                model=model,
                watermarks={0: ShardWatermark(0, CONSISTENCY_REPLICA, applied_txn)},
                consistency=mode,
                degraded_shards=[0],
            )
        model = (
            self.initial_model.clone()
            if self.initial_model is not None
            else DataModel()
        )
        return FleetView(
            model=model,
            watermarks={0: ShardWatermark(0, CONSISTENCY_PARTIAL)},
            consistency=mode,
            degraded_shards=[0],
        )

    def resource_count(self) -> int:
        return self.model_view().count()

    # ------------------------------------------------------------------

    def _heal_sessions(self) -> None:
        """Re-establish the platform's shared coordination session after an
        expiry.  Every store, queue and lazily built read replica rides the
        one shared client, so a single reconnect heals them all; the
        double-checked lock keeps concurrent healers (controller + worker
        runners noticing the expiry together) from stacking orphan
        sessions.  Watches registered under the dead session are gone —
        their owners (queue consumers, replicas) re-arm on their next
        operation, which is why the wakeup contract is at-least-once.
        """
        client = self.client
        if client is None or client.is_live():
            return
        # repro: allow(blocking-under-lock) -- double-checked heal: every healer must block behind the one in-flight reconnect, or each would bump the session epoch and invalidate the others' work
        with self._heal_lock:
            if not client.is_live():
                client.reconnect()
                self.resilience.session_expiries += 1

    def _require_started(self) -> None:
        if not self._started:
            raise ConfigurationError("platform is not started; call start() first")

    def __repr__(self) -> str:
        mode = "threaded" if self.threaded else "inline"
        return (
            f"<TropicPlatform {mode} shards={self.config.num_shards} "
            f"controllers={len(self.controllers)} workers={len(self.workers)}>"
        )
