"""The TROPIC platform: public API tying all components together (Figure 1).

:class:`TropicPlatform` owns the coordination ensemble, the persistent
store, the inputQ/phyQ queues, a set of replicated controllers (leader +
followers) and the physical workers.  Clients submit stored-procedure calls
with :meth:`TropicPlatform.submit` and receive a
:class:`TransactionHandle`.

Two runtimes are provided:

* **inline** (``threaded=False``): controller and workers are stepped in
  the calling thread; execution is fully deterministic.  Used by most
  tests and by benchmarks that measure per-transaction costs.
* **threaded** (``threaded=True``): one service thread per controller
  replica and per worker, plus an optional maintenance thread (periodic
  repair, stalled-transaction watchdog).  Used by the examples, the
  EC2-trace performance benchmarks, and the high-availability experiments
  (leader failover, §6.4).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.common.clock import Clock, RealClock
from repro.common.config import TropicConfig
from repro.common.errors import ConfigurationError, ReproError, TransactionFailed
from repro.common.idgen import random_id
from repro.coordination.client import CoordinationClient
from repro.coordination.election import LeaderElection
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue
from repro.core.controller import Controller
from repro.core.events import request_message
from repro.core.persistence import TropicStore
from repro.core.procedures import ProcedureRegistry
from repro.core.reconcile import Reconciler, ReloadReport, RepairReport
from repro.core.signals import SignalBoard
from repro.core.txn import Transaction, TransactionState
from repro.core.worker import Worker
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel
from repro.drivers.registry import DeviceRegistry

#: Session timeout used for clients whose failure need not be detected
#: (the platform's own client and the workers').  Controller election
#: sessions use ``config.session_timeout`` instead.
_LONG_SESSION = 3600.0

INPUT_QUEUE_PATH = "/tropic/queues/inputQ"
PHY_QUEUE_PATH = "/tropic/queues/phyQ"
ELECTION_PATH = "/tropic/election"
STORE_PREFIX = "/tropic/store"


class TransactionHandle:
    """Client-side handle to a submitted transaction."""

    def __init__(self, platform: "TropicPlatform", txid: str):
        self.platform = platform
        self.txid = txid

    def refresh(self) -> Transaction | None:
        return self.platform.store.load_transaction(self.txid)

    @property
    def state(self) -> TransactionState | None:
        txn = self.refresh()
        return None if txn is None else txn.state

    def is_done(self) -> bool:
        txn = self.refresh()
        return txn is not None and txn.is_terminal

    def wait(self, timeout: float | None = None) -> Transaction:
        """Block until the transaction reaches a terminal state."""
        return self.platform.wait_for(self.txid, timeout)

    def __repr__(self) -> str:
        return f"<TransactionHandle {self.txid}>"


class _ControllerRunner(threading.Thread):
    """Service thread hosting one controller replica."""

    def __init__(self, platform: "TropicPlatform", controller: Controller):
        super().__init__(name=f"tropic-{controller.name}", daemon=True)
        self.platform = platform
        self.controller = controller
        self.stop_event = threading.Event()
        self.election_client = CoordinationClient(
            platform.ensemble, session_timeout=platform.config.session_timeout
        )
        self.election = LeaderElection(
            self.election_client, ELECTION_PATH, controller.name
        )
        self.is_leader = False
        self.became_leader_at: float | None = None

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        clock = self.platform.clock
        config = self.platform.config
        self.election.volunteer()
        last_heartbeat = clock.now()
        while not self.stop_event.is_set():
            try:
                now = clock.now()
                if now - last_heartbeat >= config.heartbeat_interval:
                    self.election_client.heartbeat()
                    last_heartbeat = now
                leading = self.election.is_leader()
                if leading and not self.is_leader:
                    self.controller.recover()
                    self.became_leader_at = clock.now()
                elif not leading and self.is_leader:
                    self.controller.demote()
                self.is_leader = leading
                did_work = self.controller.step() if leading else False
                if not did_work:
                    clock.sleep(config.queue_poll_interval)
            except ReproError:
                # Coordination hiccups (lost quorum, expired session) are
                # retried on the next loop iteration.
                clock.sleep(config.queue_poll_interval)
            except Exception:  # noqa: BLE001 - keep the replica alive
                clock.sleep(config.queue_poll_interval)

    def stop(self) -> None:
        self.stop_event.set()


class _WorkerRunner(threading.Thread):
    """Service thread hosting one physical worker."""

    def __init__(self, platform: "TropicPlatform", worker: Worker):
        super().__init__(name=f"tropic-{worker.name}", daemon=True)
        self.platform = platform
        self.worker = worker
        self.stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        clock = self.platform.clock
        config = self.platform.config
        while not self.stop_event.is_set():
            try:
                if not self.worker.step():
                    clock.sleep(config.queue_poll_interval)
            except ReproError:
                clock.sleep(config.queue_poll_interval)
            except Exception:  # noqa: BLE001 - keep the worker alive
                clock.sleep(config.queue_poll_interval)

    def stop(self) -> None:
        self.stop_event.set()


class _MaintenanceRunner(threading.Thread):
    """Periodic repair daemon and stalled-transaction watchdog (§4)."""

    def __init__(self, platform: "TropicPlatform"):
        super().__init__(name="tropic-maintenance", daemon=True)
        self.platform = platform
        self.stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        clock = self.platform.clock
        config = self.platform.config
        last_repair = clock.now()
        while not self.stop_event.is_set():
            try:
                now = clock.now()
                if config.repair_period > 0 and now - last_repair >= config.repair_period:
                    self.platform.repair()
                    last_repair = now
                if config.txn_timeout > 0:
                    self.platform.terminate_stalled(config.txn_timeout)
            except ReproError:
                pass
            except Exception:  # noqa: BLE001
                pass
            clock.sleep(max(config.queue_poll_interval, 0.01))

    def stop(self) -> None:
        self.stop_event.set()


class TropicPlatform:
    """Transactional resource orchestration platform."""

    def __init__(
        self,
        schema: ModelSchema,
        procedures: ProcedureRegistry,
        config: TropicConfig | None = None,
        registry: DeviceRegistry | None = None,
        initial_model: DataModel | None = None,
        ensemble: CoordinationEnsemble | None = None,
        clock: Clock | None = None,
        threaded: bool = False,
    ):
        self.schema = schema
        self.procedures = procedures
        self.config = config or TropicConfig()
        self.config.validate()
        self.registry = registry
        self.initial_model = initial_model
        self.clock = clock or RealClock()
        self.threaded = threaded

        self.ensemble = ensemble or CoordinationEnsemble(
            num_servers=3,
            clock=self.clock,
            default_session_timeout=self.config.session_timeout,
            op_latency=self.config.coordination_latency,
        )
        self.client: CoordinationClient | None = None
        self.store: TropicStore | None = None
        self.input_queue: DistributedQueue | None = None
        self.phy_queue: DistributedQueue | None = None
        self.controllers: list[Controller] = []
        self.workers: list[Worker] = []
        self.signals: SignalBoard | None = None
        self.completed_transactions: list[Transaction] = []
        self._completed_index: dict[str, Transaction] = {}
        self._controller_runners: list[_ControllerRunner] = []
        self._worker_runners: list[_WorkerRunner] = []
        self._maintenance: _MaintenanceRunner | None = None
        self._started = False
        self._completion_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "TropicPlatform":
        """Bring up the store, queues, controllers and workers."""
        if self._started:
            return self
        self.client = CoordinationClient(self.ensemble, session_timeout=_LONG_SESSION)
        self.store = TropicStore(KVStore(self.client, STORE_PREFIX))
        self.input_queue = DistributedQueue(self.client, INPUT_QUEUE_PATH, self.clock)
        self.phy_queue = DistributedQueue(self.client, PHY_QUEUE_PATH, self.clock)
        self.signals = SignalBoard(self.store)

        # Bootstrap the data-model checkpoint on first start.
        checkpoint, _ = self.store.load_checkpoint()
        if checkpoint is None:
            model = self.initial_model if self.initial_model is not None else DataModel()
            self.store.save_checkpoint(model, 0)

        num_controllers = self.config.num_controllers if self.threaded else 1
        for index in range(num_controllers):
            controller = Controller(
                name=f"controller-{index}-{random_id('c')[-4:]}",
                config=self.config,
                store=self.store,
                input_queue=self.input_queue,
                phy_queue=self.phy_queue,
                schema=self.schema,
                procedures=self.procedures,
                clock=self.clock,
                on_complete=self._on_complete,
            )
            self.controllers.append(controller)

        for index in range(self.config.num_workers):
            worker = Worker(
                name=f"worker-{index}",
                store=self.store,
                phy_queue=self.phy_queue,
                input_queue=self.input_queue,
                registry=self.registry,
                config=self.config,
                clock=self.clock,
            )
            self.workers.append(worker)

        if self.threaded:
            for controller in self.controllers:
                runner = _ControllerRunner(self, controller)
                self._controller_runners.append(runner)
                runner.start()
            for worker in self.workers:
                runner = _WorkerRunner(self, worker)
                self._worker_runners.append(runner)
                runner.start()
            if self.config.repair_period > 0 or self.config.txn_timeout > 0:
                self._maintenance = _MaintenanceRunner(self)
                self._maintenance.start()
        else:
            # Inline runtime: one controller, recovered eagerly.
            self.controllers[0].recover()

        self._started = True
        return self

    def stop(self) -> None:
        """Stop service threads and close coordination sessions."""
        for runner in self._controller_runners:
            runner.stop()
        for runner in self._worker_runners:
            runner.stop()
        if self._maintenance is not None:
            self._maintenance.stop()
        for runner in self._controller_runners:
            runner.join(timeout=2.0)
        for runner in self._worker_runners:
            runner.join(timeout=2.0)
        if self._maintenance is not None:
            self._maintenance.join(timeout=2.0)
        self._controller_runners = []
        self._worker_runners = []
        self._maintenance = None
        self._started = False

    def __enter__(self) -> "TropicPlatform":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def submit(
        self,
        procedure: str,
        args: dict[str, Any] | None = None,
        wait: bool = True,
        timeout: float | None = 30.0,
        client: str = "",
    ) -> Transaction | TransactionHandle:
        """Submit a transactional orchestration (Step 1 of Figure 2).

        With ``wait=True`` (default) the call blocks until the transaction
        reaches a terminal state and returns the final
        :class:`~repro.core.txn.Transaction`; otherwise it returns a
        :class:`TransactionHandle` immediately.
        """
        self._require_started()
        if not self.procedures.has(procedure):
            raise ConfigurationError(f"unknown stored procedure {procedure!r}")
        txn = Transaction(procedure=procedure, args=dict(args or {}), client=client)
        txn.mark(TransactionState.INITIALIZED, self.clock.now())
        self.store.save_transaction(txn)
        self.input_queue.put(request_message(txn.txid))
        handle = TransactionHandle(self, txn.txid)
        if not wait:
            if not self.threaded:
                return handle
            return handle
        if not self.threaded:
            self.run_until_idle()
        return handle.wait(timeout)

    def submit_many(
        self, requests: list[tuple[str, dict[str, Any]]], wait: bool = True, timeout: float | None = 60.0
    ) -> list[Transaction | TransactionHandle]:
        """Submit a batch of transactions, then optionally wait for all."""
        handles = [self.submit(proc, args, wait=False) for proc, args in requests]
        if not wait:
            return handles
        if not self.threaded:
            self.run_until_idle()
        return [handle.wait(timeout) for handle in handles]

    def wait_for(self, txid: str, timeout: float | None = 30.0) -> Transaction:
        """Block until ``txid`` reaches a terminal state (polling the store)."""
        self._require_started()
        deadline = None if timeout is None else self.clock.now() + timeout
        while True:
            txn = self._completed_lookup(txid) or self.store.load_transaction(txid)
            if txn is not None and txn.is_terminal:
                return txn
            if not self.threaded:
                # Inline runtime: drive execution ourselves.
                progressed = self.run_until_idle()
                txn = self._completed_lookup(txid) or self.store.load_transaction(txid)
                if txn is not None and txn.is_terminal:
                    return txn
                if not progressed:
                    raise TransactionFailed(
                        f"transaction {txid} cannot make progress (deadlocked or lost)",
                        txid=txid,
                    )
                continue
            if deadline is not None and self.clock.now() >= deadline:
                raise TimeoutError(f"transaction {txid} did not finish within {timeout}s")
            self.clock.sleep(self.config.queue_poll_interval)

    # ------------------------------------------------------------------
    # Inline runtime driver
    # ------------------------------------------------------------------

    def run_until_idle(self, max_rounds: int = 100_000) -> int:
        """Step controller and workers until every queue is drained.

        Only meaningful for the inline runtime; returns the number of
        productive rounds.
        """
        self._require_started()
        if self.threaded:
            return 0
        controller = self.controllers[0]
        rounds = 0
        for _ in range(max_rounds):
            progressed = controller.step()
            for worker in self.workers:
                if worker.step():
                    progressed = True
            if not progressed and self.input_queue.is_empty() and self.phy_queue.is_empty():
                break
            if progressed:
                rounds += 1
        return rounds

    # ------------------------------------------------------------------
    # Reconciliation and signals (§4)
    # ------------------------------------------------------------------

    def reconciler(self) -> Reconciler:
        self._require_started()
        if self.registry is None:
            raise ConfigurationError("reconciliation requires a device registry")
        return Reconciler(self.leader(), self.registry)

    def repair(self, path: str = "/") -> RepairReport:
        return self.reconciler().repair(path)

    def reload(self, path: str) -> ReloadReport:
        return self.reconciler().reload(path)

    def send_term(self, txid: str) -> None:
        self.leader().send_term(txid)

    def send_kill(self, txid: str) -> None:
        self.leader().send_kill(txid)

    def terminate_stalled(self, txn_timeout: float) -> list[str]:
        """TERM every outstanding transaction older than ``txn_timeout``."""
        leader = self.leader()
        now = self.clock.now()
        terminated = []
        for txid, txn in list(leader.outstanding.items()):
            started = txn.timestamps.get(TransactionState.STARTED.value)
            if started is not None and now - started > txn_timeout:
                leader.send_term(txid)
                terminated.append(txid)
        return terminated

    # ------------------------------------------------------------------
    # High availability controls (§6.4)
    # ------------------------------------------------------------------

    def leader(self) -> Controller:
        """The controller currently acting as leader."""
        self._require_started()
        if not self.threaded:
            return self.controllers[0]
        for runner in self._controller_runners:
            if runner.is_alive() and runner.is_leader:
                return runner.controller
        # No acknowledged leader yet (e.g. mid-failover); prefer a replica
        # that has already restored state, then any live replica.
        for runner in self._controller_runners:
            if runner.is_alive() and runner.controller.recovered:
                return runner.controller
        for runner in self._controller_runners:
            if runner.is_alive():
                return runner.controller
        raise ConfigurationError("no live controller replica")

    def leader_runner(self) -> "_ControllerRunner | None":
        for runner in self._controller_runners:
            if runner.is_alive() and runner.is_leader:
                return runner
        return None

    def kill_leader(self) -> str | None:
        """Crash the current lead controller (thread stop + session expiry).

        Returns the name of the killed controller.  Followers detect the
        failure through session expiry and elect a new leader which resumes
        in-flight transactions from the persistent store.
        """
        self._require_started()
        if not self.threaded:
            raise ConfigurationError("kill_leader requires the threaded runtime")
        runner = self.leader_runner()
        if runner is None:
            return None
        runner.stop()
        runner.join(timeout=2.0)
        self.ensemble.expire_session(runner.election_client.session_id)
        return runner.controller.name

    def live_controller_names(self) -> list[str]:
        return [r.controller.name for r in self._controller_runners if r.is_alive()]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _on_complete(self, txn: Transaction) -> None:
        with self._completion_lock:
            self.completed_transactions.append(txn)
            self._completed_index[txn.txid] = txn

    def _completed_lookup(self, txid: str) -> Transaction | None:
        """Terminal transaction from the in-process observer index, sparing
        a store read + document decode per wait (the store remains the
        source of truth for cross-process callers)."""
        with self._completion_lock:
            return self._completed_index.get(txid)

    def completed(self) -> list[Transaction]:
        with self._completion_lock:
            return list(self.completed_transactions)

    def latencies(self) -> list[float]:
        """Submit-to-terminal latencies of completed transactions, in seconds."""
        return [
            latency
            for txn in self.completed()
            if (latency := txn.latency()) is not None
        ]

    def controller_stats(self) -> dict[str, int]:
        return self.leader().snapshot_stats()

    def controller_busy_seconds(self) -> float:
        return sum(controller.busy_seconds() for controller in self.controllers)

    def resource_count(self) -> int:
        return self.leader().model.count()

    # ------------------------------------------------------------------

    def _require_started(self) -> None:
        if not self._started:
            raise ConfigurationError("platform is not started; call start() first")

    def __repr__(self) -> str:
        mode = "threaded" if self.threaded else "inline"
        return f"<TropicPlatform {mode} controllers={len(self.controllers)} workers={len(self.workers)}>"
