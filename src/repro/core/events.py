"""Message formats flowing through inputQ and phyQ (Figure 1/2).

Messages are plain JSON dictionaries so they can live in the coordination
queues.  Six kinds exist:

* ``request`` — a client submitted a transaction (already persisted in the
  store in ``initialized`` state); the controller accepts it.
* ``execute`` — the controller hands a runnable transaction to the
  physical workers via phyQ.  Carries the leader's *dispatch epoch* so a
  worker's claim record names the leadership generation that dispatched it.
* ``result`` — a worker reports the physical outcome (committed, aborted
  or failed) back to the controller via inputQ.
* ``prepare`` / ``vote`` / ``decision`` — the cross-shard two-phase-commit
  protocol between shard leaders (see :mod:`repro.core.twopc`): the
  coordinator asks each participant to validate and persist its slice of
  the execution log, participants answer with a vote, and the coordinator
  fans out the final decision (or a ``release`` when a conflicted attempt
  will be retried).
* ``wound`` — wound-wait conflict resolution between concurrent
  cross-shard transactions: a shard blocked by a *younger* transaction's
  prepared locks asks that transaction's coordinator to abort-and-retry
  it (the older transaction never waits on a younger one, so the oldest
  active transaction always progresses and prepares cannot deadlock or
  livelock).
"""

from __future__ import annotations

from typing import Any

KIND_REQUEST = "request"
KIND_EXECUTE = "execute"
KIND_RESULT = "result"
KIND_PREPARE = "prepare"
KIND_VOTE = "vote"
KIND_DECISION = "decision"
KIND_WOUND = "wound"

OUTCOME_COMMITTED = "committed"
OUTCOME_ABORTED = "aborted"
OUTCOME_FAILED = "failed"

VOTE_YES = "yes"
VOTE_NO = "no"

DECISION_COMMIT = "commit"
DECISION_ABORT = "abort"
#: Not a 2PC outcome: tells a prepared participant to drop this *attempt*
#: (undo, release locks, delete the prepare record) because the coordinator
#: will retry after a lock conflict.
DECISION_RELEASE = "release"


def request_message(txid: str) -> dict[str, Any]:
    return {"kind": KIND_REQUEST, "txid": txid}


def execute_message(txid: str, epoch: int = 0) -> dict[str, Any]:
    return {"kind": KIND_EXECUTE, "txid": txid, "epoch": epoch}


def prepare_message(
    txid: str,
    coordinator: int,
    participants: list[int],
    attempt: int,
    procedure: str,
    log: list[dict[str, Any]],
    rwset: dict[str, Any],
) -> dict[str, Any]:
    """Coordinator -> participant: validate + persist this log slice."""
    return {
        "kind": KIND_PREPARE,
        "txid": txid,
        "coordinator": coordinator,
        "participants": list(participants),
        "attempt": attempt,
        "procedure": procedure,
        "log": log,
        "rwset": rwset,
    }


def vote_message(
    txid: str, shard: int, vote: str, attempt: int, reason: str | None = None
) -> dict[str, Any]:
    """Participant -> coordinator: the prepare outcome for one attempt."""
    return {
        "kind": KIND_VOTE,
        "txid": txid,
        "shard": shard,
        "vote": vote,
        "attempt": attempt,
        "reason": reason,
    }


def decision_message(txid: str, decision: str, attempt: int = 0) -> dict[str, Any]:
    """Coordinator -> participant: commit, abort, or release-for-retry."""
    return {"kind": KIND_DECISION, "txid": txid, "decision": decision, "attempt": attempt}


def wound_message(txid: str, by: str, shard: int) -> dict[str, Any]:
    """Any shard -> ``txid``'s coordinator: the older transaction ``by`` is
    blocked by ``txid``'s prepare-phase locks on ``shard``; abort the
    (younger) ``txid``'s current attempt and retry it after a backoff."""
    return {"kind": KIND_WOUND, "txid": txid, "by": by, "shard": shard}


def result_message(
    txid: str,
    outcome: str,
    error: str | None = None,
    failed_path: str | None = None,
    worker: str = "",
) -> dict[str, Any]:
    return {
        "kind": KIND_RESULT,
        "txid": txid,
        "outcome": outcome,
        "error": error,
        "failed_path": failed_path,
        "worker": worker,
    }
