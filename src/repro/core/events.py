"""Message formats flowing through inputQ and phyQ (Figure 1/2).

Messages are plain JSON dictionaries so they can live in the coordination
queues.  Three kinds exist:

* ``request`` — a client submitted a transaction (already persisted in the
  store in ``initialized`` state); the controller accepts it.
* ``execute`` — the controller hands a runnable transaction to the
  physical workers via phyQ.
* ``result`` — a worker reports the physical outcome (committed, aborted
  or failed) back to the controller via inputQ.
"""

from __future__ import annotations

from typing import Any

KIND_REQUEST = "request"
KIND_EXECUTE = "execute"
KIND_RESULT = "result"

OUTCOME_COMMITTED = "committed"
OUTCOME_ABORTED = "aborted"
OUTCOME_FAILED = "failed"


def request_message(txid: str) -> dict[str, Any]:
    return {"kind": KIND_REQUEST, "txid": txid}


def execute_message(txid: str) -> dict[str, Any]:
    return {"kind": KIND_EXECUTE, "txid": txid}


def result_message(
    txid: str,
    outcome: str,
    error: str | None = None,
    failed_path: str | None = None,
    worker: str = "",
) -> dict[str, Any]:
    return {
        "kind": KIND_RESULT,
        "txid": txid,
        "outcome": outcome,
        "error": error,
        "failed_path": failed_path,
        "worker": worker,
    }
