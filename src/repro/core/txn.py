"""Transactions, execution logs and read/write sets (§3).

A transaction is a call to a stored procedure.  Its *execution log* is the
sequence of ``(resource path, action, args, undo action, undo args)``
records produced by logical simulation (Table 1 shows the log of
``spawnVM``); the log is replayed by the physical layer and is also the
basis for rollback in both layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.common.idgen import monotonic_id
from repro.common.jsonutil import deep_copy


class TransactionState(str, enum.Enum):
    """Life-cycle states of a transactional orchestration (Figure 2)."""

    INITIALIZED = "initialized"
    ACCEPTED = "accepted"
    DEFERRED = "deferred"
    #: Cross-shard coordinator: locks held, prepare requests outstanding.
    PREPARING = "preparing"
    #: Cross-shard participant: log slice applied, locks held, vote cast —
    #: the durable *prepare record* of two-phase commit.
    PREPARED = "prepared"
    STARTED = "started"
    COMMITTED = "committed"
    ABORTED = "aborted"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (
            TransactionState.COMMITTED,
            TransactionState.ABORTED,
            TransactionState.FAILED,
        )


#: States in which the transaction still occupies the logical layer.
ACTIVE_STATES = (
    TransactionState.ACCEPTED,
    TransactionState.DEFERRED,
    TransactionState.PREPARING,
    TransactionState.PREPARED,
    TransactionState.STARTED,
)


@dataclass
class LogRecord:
    """One entry of an execution log (one row of Table 1)."""

    seq: int
    path: str
    action: str
    args: list[Any] = field(default_factory=list)
    undo_action: str | None = None
    undo_args: list[Any] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "path": self.path,
            "action": self.action,
            "args": deep_copy(self.args),
            "undo_action": self.undo_action,
            "undo_args": deep_copy(self.undo_args),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LogRecord":
        return cls(
            seq=int(data["seq"]),
            path=data["path"],
            action=data["action"],
            args=list(data.get("args") or []),
            undo_action=data.get("undo_action"),
            undo_args=list(data.get("undo_args") or []),
        )

    def __repr__(self) -> str:
        return f"<LogRecord #{self.seq} {self.path} {self.action}{tuple(self.args)}>"


class ExecutionLog:
    """Ordered list of :class:`LogRecord` produced by logical simulation."""

    def __init__(self, records: list[LogRecord] | None = None):
        self.records: list[LogRecord] = list(records or [])

    def append(
        self,
        path: str,
        action: str,
        args: list[Any],
        undo_action: str | None,
        undo_args: list[Any],
    ) -> LogRecord:
        record = LogRecord(
            seq=len(self.records) + 1,
            path=path,
            action=action,
            args=list(args),
            undo_action=undo_action,
            undo_args=list(undo_args),
        )
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> LogRecord:
        return self.records[index]

    def to_dict(self) -> list[dict[str, Any]]:
        return [record.to_dict() for record in self.records]

    @classmethod
    def from_dict(cls, data: list[dict[str, Any]]) -> "ExecutionLog":
        return cls([LogRecord.from_dict(item) for item in data or []])

    def as_table(self) -> list[tuple[int, str, str, str, str, str]]:
        """Render the log in the format of Table 1 of the paper."""
        rows = []
        for record in self.records:
            rows.append(
                (
                    record.seq,
                    record.path,
                    record.action,
                    "[" + ", ".join(str(a) for a in record.args) + "]",
                    record.undo_action or "-",
                    "[" + ", ".join(str(a) for a in record.undo_args) + "]",
                )
            )
        return rows

    def format_table(self) -> str:
        header = ("#", "resource object path", "action", "args", "undo action", "undo args")
        rows = [tuple(str(col) for col in row) for row in self.as_table()]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)


@dataclass
class ReadWriteSet:
    """Resource paths read and written during simulation (drives locking)."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    #: paths of the highest constrained ancestors of written objects,
    #: R-locked to keep their subtrees read-only to concurrent writers (§3.1.3)
    constraint_reads: set[str] = field(default_factory=set)

    def record_read(self, path: str) -> None:
        self.reads.add(path)

    def record_write(self, path: str) -> None:
        self.writes.add(path)

    def record_constraint_read(self, path: str) -> None:
        self.constraint_reads.add(path)

    def to_dict(self) -> dict[str, list[str]]:
        return {
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "constraint_reads": sorted(self.constraint_reads),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReadWriteSet":
        data = data or {}
        return cls(
            reads=set(data.get("reads") or []),
            writes=set(data.get("writes") or []),
            constraint_reads=set(data.get("constraint_reads") or []),
        )


@dataclass
class Transaction:
    """A transactional orchestration operation."""

    procedure: str
    args: dict[str, Any] = field(default_factory=dict)
    txid: str = field(default_factory=lambda: monotonic_id("txn"))
    state: TransactionState = TransactionState.INITIALIZED
    log: ExecutionLog = field(default_factory=ExecutionLog)
    rwset: ReadWriteSet = field(default_factory=ReadWriteSet)
    error: str | None = None
    result: Any = None
    client: str = ""
    defer_count: int = 0
    timestamps: dict[str, float] = field(default_factory=dict)
    #: Cross-shard transactions only: the shard coordinating two-phase
    #: commit, every shard whose subtrees the transaction touches (the
    #: coordinator included), and the coordinator's vote tally for the
    #: current attempt (``defer_count`` doubles as the attempt number).
    coordinator: int | None = None
    participants: list[int] = field(default_factory=list)
    votes: dict[str, str] = field(default_factory=dict)
    #: Client-supplied idempotency token.  Persisted with the document so
    #: the controller's token→txid ack index survives failover and a
    #: retried submission after an ambiguous failure deduplicates instead
    #: of double-applying.  ``None`` (the default) keeps token-less
    #: documents byte-identical to the pre-resilience format.
    idempotency_token: str | None = None
    #: Wound-wait soft state (never serialised, deliberately absent from
    #: ``to_dict``): how many times an older transaction wounded this one
    #: out of its prepare phase, and how many scheduling passes it still
    #: sits out before retrying.  Lost on failover by design — the backoff
    #: restarts from zero; only the durable DEFERRED document decides that
    #: the transaction requeues at all.
    wound_count: int = 0
    wound_cooldown: int = 0

    # -- state transitions ------------------------------------------------

    def mark(self, state: TransactionState, now: float | None = None) -> None:
        self.state = state
        if now is not None:
            self.timestamps[state.value] = now

    @property
    def is_terminal(self) -> bool:
        return self.state.is_terminal

    @property
    def is_cross_shard(self) -> bool:
        """True when this transaction spans more than one controller shard
        (and therefore runs under the two-phase-commit protocol)."""
        return len(self.participants) > 1

    def latency(self) -> float | None:
        """Submission-to-terminal-state latency, if both timestamps are known."""
        submitted = self.timestamps.get(TransactionState.INITIALIZED.value)
        finished = None
        for state in (TransactionState.COMMITTED, TransactionState.ABORTED, TransactionState.FAILED):
            if state.value in self.timestamps:
                finished = self.timestamps[state.value]
        if submitted is None or finished is None:
            return None
        return finished - submitted

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data = {
            "txid": self.txid,
            "procedure": self.procedure,
            "args": deep_copy(self.args),
            "state": self.state.value,
            "log": self.log.to_dict(),
            "rwset": self.rwset.to_dict(),
            "error": self.error,
            "result": deep_copy(self.result) if self.result is not None else None,
            "client": self.client,
            "defer_count": self.defer_count,
            "timestamps": dict(self.timestamps),
        }
        if self.participants or self.votes or self.coordinator is not None:
            # Cross-shard transactions only; single-shard documents stay
            # byte-identical to the pre-2PC format (from_dict defaults).
            data["coordinator"] = self.coordinator
            data["participants"] = list(self.participants)
            data["votes"] = dict(self.votes)
        if self.idempotency_token is not None:
            # Same conditional pattern: only tokened submissions carry the
            # extra field (from_dict defaults it away).
            data["idempotency_token"] = self.idempotency_token
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Transaction":
        txn = cls(
            procedure=data["procedure"],
            args=dict(data.get("args") or {}),
            txid=data["txid"],
            state=TransactionState(data.get("state", "initialized")),
            log=ExecutionLog.from_dict(data.get("log") or []),
            rwset=ReadWriteSet.from_dict(data.get("rwset") or {}),
            error=data.get("error"),
            result=data.get("result"),
            client=data.get("client", ""),
            defer_count=int(data.get("defer_count", 0)),
            timestamps=dict(data.get("timestamps") or {}),
            coordinator=data.get("coordinator"),
            participants=[int(s) for s in data.get("participants") or []],
            votes=dict(data.get("votes") or {}),
            idempotency_token=data.get("idempotency_token"),
        )
        return txn

    def __repr__(self) -> str:
        return f"<Transaction {self.txid} {self.procedure} {self.state.value}>"
