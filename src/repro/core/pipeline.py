"""Pipelined group commit: the leader's two-stage write path.

The classic controller loop is strictly serial: accept → simulate/lock →
``store.flush()`` → dispatch → ack, so every batch's CPU work idles while
the previous batch's coordination round-trips are on the wire.  This
module splits the loop into a **CPU stage** (drain inputQ, handle
messages, schedule/simulate/lock, buffer store writes) and an **I/O
stage** (group-commit flush, then the post-durability actions already
gated on it), connected by a bounded in-flight window of
:class:`SealedStep` records (``config.pipeline_depth``).

While batch N's flush is pending, batch N+1 simulates against the
already-updated in-memory model; the lock manager serialises true
conflicts, and the sealed-batch read overlay (:meth:`KVStore.set_sealed`)
lets the CPU stage read window-pending documents (duplicate detection,
``applied_seq``).  All post-durability effects of a step — phyQ
dispatches, 2PC fan-out, completion notifications, inputQ acks — are held
in its :class:`SealedStep` until the covering flush commits, so the
durability invariants are *unchanged* at any depth: ack-after-durable,
STARTED-durable-before-dispatch, decision-durable-before-fan-out.

Crash semantics are unchanged too: a failed flush loses the window's
writes, the controller demotes and re-recovers, and the unacked inputQ
messages re-deliver.  Three named crash edges pin this in the fault
matrix (see :mod:`repro.testing.faults`):

* ``pipeline-pre-flush`` — the whole window (possibly several sealed
  steps) is still in memory; nothing of it is durable.
* ``pipeline-post-flush-pre-ack`` — a sealed step's writes are durable
  and its dispatches/fan-out/notifications were applied, but its inputQ
  acks were not; the successor re-receives and handles idempotently.
* ``pipeline-window-crash`` — a seal finds at least one *older* sealed
  step already in the window (reachable only at depth > 1): the crash
  loses multiple steps' worth of unflushed state at once.

At ``pipeline_depth=1`` the sequence is byte-for-byte the pre-pipeline
loop: seal is immediately followed by its covering flush and effects.
See ``docs/architecture.md#the-pipelined-write-path``.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Any, Callable

from repro.coordination.kvstore import KVStore, WriteBatch

#: Named crash edges of the pipelined write path (armed through
#: :class:`repro.testing.faults.FaultInjector` via the controller's
#: ``fault_hook``).
PIPELINE_PRE_FLUSH = "pipeline-pre-flush"
PIPELINE_POST_FLUSH_PRE_ACK = "pipeline-post-flush-pre-ack"
PIPELINE_WINDOW_CRASH = "pipeline-window-crash"

#: Bound on retained per-flush latency samples (p99 estimation).
_LATENCY_WINDOW = 4096


class SealedStep:
    """One CPU-stage iteration's sealed output: the detached write batch
    plus every post-durability effect gated on its covering flush."""

    __slots__ = (
        "batch", "dispatches", "dispatch_epoch", "outbound", "notifications", "acks",
    )

    def __init__(
        self,
        batch: WriteBatch | None,
        dispatches: list[str],
        dispatch_epoch: int,
        outbound: list[tuple[int, dict[str, Any]]],
        notifications: list[Any],
        acks: list[str],
    ) -> None:
        self.batch = batch
        self.dispatches = dispatches
        self.dispatch_epoch = dispatch_epoch
        self.outbound = outbound
        self.notifications = notifications
        self.acks = acks

    def is_empty(self) -> bool:
        return (
            (self.batch is None or self.batch.is_empty())
            and not self.dispatches
            and not self.outbound
            and not self.notifications
            and not self.acks
        )


class PipelineStats:
    """Commit-pipeline instrumentation: per-flush latency (with a bounded
    sample window for p99), in-flight window depth high-water mark, and
    stalls on a full window."""

    __slots__ = (
        "steps_sealed", "flushes", "batches_flushed", "flush_seconds",
        "last_flush_seconds", "window_high_water", "stalls", "_latencies",
    )

    def __init__(self) -> None:
        self.steps_sealed = 0
        self.flushes = 0
        self.batches_flushed = 0
        self.flush_seconds = 0.0
        self.last_flush_seconds = 0.0
        self.window_high_water = 0
        #: Times the CPU stage filled the window to ``pipeline_depth`` and
        #: had to wait for the covering flush (counted only at depth > 1;
        #: at depth 1 every commit is synchronous by construction).
        self.stalls = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)

    def record_flush(self, seconds: float, batches: int) -> None:
        self.flushes += 1
        self.batches_flushed += batches
        self.flush_seconds += seconds
        self.last_flush_seconds = seconds
        self._latencies.append(seconds)

    def p99_flush_seconds(self) -> float:
        """The 99th-percentile flush latency over the retained sample
        window (0.0 before the first flush)."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, int(len(ordered) * 0.99))
        return ordered[index]

    def mean_flush_seconds(self) -> float:
        return self.flush_seconds / self.flushes if self.flushes else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "steps_sealed": self.steps_sealed,
            "flushes": self.flushes,
            "batches_flushed": self.batches_flushed,
            "flush_seconds": self.flush_seconds,
            "last_flush_seconds": self.last_flush_seconds,
            "mean_flush_seconds": self.mean_flush_seconds(),
            "p99_flush_seconds": self.p99_flush_seconds(),
            "window_high_water": self.window_high_water,
            "stalls": self.stalls,
        }


class CommitPipeline:
    """Bounded in-flight window of sealed per-step write batches.

    The controller seals each step's thread-local batch (detached via
    :meth:`KVStore.detach_batch`) together with the step's deferred
    effects into the window; :meth:`flush` commits every windowed batch
    as **one** ``multi`` (in seal order, last-writer-wins across batches)
    and only then applies each step's effects, oldest first.

    Collaborators are injected as callables so the pipeline stays free of
    controller internals: ``commit`` (the store-level merged-batch commit,
    preserving fault-injection wrapper semantics), ``effects`` (applies
    one sealed step's post-durability actions) and ``fault`` (the named
    crash-edge hook).
    """

    def __init__(
        self,
        kv: KVStore,
        depth: int,
        commit: Callable[[list[WriteBatch]], int],
        effects: Callable[[SealedStep], None],
        fault: Callable[[str], None],
    ) -> None:
        self.kv = kv
        self.depth = max(1, depth)
        self._commit = commit
        self._effects = effects
        self._fault = fault
        self.window: list[SealedStep] = []
        #: inputQ item names taken by windowed steps but not yet acked;
        #: the controller excludes them from ``take_many`` so depth > 1
        #: windows do not re-take the queue head.
        self.pending_acks: set[str] = set()
        self.stats = PipelineStats()

    def seal(self, sealed: SealedStep) -> bool:
        """Admit one step's sealed output to the window.  Empty steps
        (no writes, no effects) are dropped — they need no flush and, as
        before the pipeline, send no acks."""
        self.stats.steps_sealed += 1
        if sealed.is_empty():
            return False
        self.window.append(sealed)
        if sealed.acks:
            self.pending_acks.update(sealed.acks)
        self.kv.set_sealed(
            tuple(
                step.batch
                for step in self.window
                if step.batch is not None and not step.batch.is_empty()
            )
        )
        depth_now = len(self.window)
        if depth_now > self.stats.window_high_water:
            self.stats.window_high_water = depth_now
        if self.depth > 1 and depth_now >= self.depth:
            self.stats.stalls += 1
        if depth_now >= 2:
            # Multiple sealed steps are in memory with nothing durable:
            # the widest crash-loss window the pipeline can open.
            self._fault(PIPELINE_WINDOW_CRASH)
        return True

    def should_flush(self) -> bool:
        return len(self.window) >= self.depth

    def flush(self) -> bool:
        """Commit every windowed batch as one ``multi``, then apply each
        sealed step's post-durability effects in seal order.  Returns
        whether any deferred *effect* (dispatch, fan-out, notification,
        ack) was applied — bare writes don't count as progress, so an
        idle poll that merely re-commits unchanged scheduling state does
        not keep run-until-idle drivers spinning.  On failure the window
        is already dropped — the caller demotes and re-recovers, exactly
        as for a failed serial group commit."""
        window = self.window
        if not window:
            return False
        self.window = []
        batches = [
            step.batch
            for step in window
            if step.batch is not None and not step.batch.is_empty()
        ]
        if batches:
            self._fault(PIPELINE_PRE_FLUSH)
            started = perf_counter()
            self._commit(batches)
            self.stats.record_flush(perf_counter() - started, len(batches))
        self.kv.set_sealed(())
        applied_effects = False
        for step in window:
            self._effects(step)
            if step.dispatches or step.outbound or step.notifications or step.acks:
                applied_effects = True
            for name in step.acks:
                self.pending_acks.discard(name)
        return applied_effects

    def abort_step(self) -> None:
        """Unwind path for an exception inside the CPU stage: commit the
        window plus the current thread's partial batch (writes only),
        dropping every deferred effect — unacked messages re-deliver and
        lost dispatches are re-dispatched on recovery.  Mirrors the
        pre-pipeline contract where the batch context manager still
        flushed partial writes while an exception unwound the step; a
        commit failure (or an armed ``pre-commit`` crash) propagates
        exactly as an unwind-flush failure did."""
        batch = self.kv.detach_batch()
        window, self.window = self.window, []
        self.pending_acks = set()
        self.kv.set_sealed(())
        batches = [
            step.batch
            for step in window
            if step.batch is not None and not step.batch.is_empty()
        ]
        if batch is not None and not batch.is_empty():
            batches.append(batch)
        if batches:
            self._commit(batches)

    def clear(self) -> None:
        """Drop the window and overlay without committing (demotion: the
        writes are lost exactly like a dying leader's buffered commit)."""
        self.window = []
        self.pending_acks = set()
        self.kv.set_sealed(())
