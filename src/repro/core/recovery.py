"""Leader failover recovery (§2.3, evaluated in §6.4).

Controllers keep state in memory only as a cached copy.  When a follower
takes over, it restores the previous leader's state from the persistent
store:

1. load the latest data-model checkpoint,
2. replay the execution logs of transactions committed since that
   checkpoint (the *applied log*), in commit order,
3. re-apply the logical effects and re-acquire the locks of in-flight
   (started) transactions and of *prepared* two-phase-commit participants
   (prepared-lock retention: a participant that voted yes must hold its
   locks across restarts until the coordinator's decision arrives), and
4. put accepted/deferred transactions back into todoQ.

Cross-shard transactions found mid-protocol are *classified* here and
resolved by the controller after restoration (it owns the queues and the
global decision log): ``preparing`` coordinators are presumed aborted,
``prepared`` participants consult the decision log, and ``started``
coordinators whose decision record exists have their commit finished.

Every step is idempotent: the procedure only reads persistent state and the
resulting in-memory state is the same no matter how many times it runs, so
a leader can fail at any point without losing submitted transactions.

The same checkpoint/log readers back the per-shard read replicas
(:mod:`repro.core.replica`); failover semantics are documented in
``docs/architecture.md#failover-and-recovery`` and the operational
expectations in ``docs/operations.md#failover-expectations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Clock, RealClock
from repro.common.config import TropicConfig
from repro.common.errors import RecoveryError, UnknownPathError
from repro.core.locks import LockManager
from repro.core.persistence import TropicStore
from repro.core.procedures import ProcedureRegistry
from repro.core.scheduler import TodoQueue
from repro.core.simulation import LogicalExecutor
from repro.core.txn import Transaction, TransactionState
from repro.datamodel.schema import ModelSchema
from repro.datamodel.tree import DataModel


def _check_shard_stamp(store: TropicStore) -> None:
    """Refuse to recover from a checkpoint written under another shard
    layout (see :class:`~repro.core.persistence.TropicStore`)."""
    if store.shard_id is None:
        return
    meta = store.kv.get(store.CHECKPOINT_META)
    stamp = (meta or {}).get("shard")
    if not stamp:
        return  # pre-sharding checkpoint (or single-shard legacy layout)
    if (int(stamp.get("shard_id", -1)), int(stamp.get("num_shards", -1))) != (
        store.shard_id,
        store.num_shards,
    ):
        raise RecoveryError(
            f"checkpoint was written by shard {stamp.get('shard_id')} of "
            f"{stamp.get('num_shards')} but this controller is shard "
            f"{store.shard_id} of {store.num_shards}; refusing to recover "
            f"across a shard-layout change"
        )


def replay_committed(
    store: TropicStore, executor: LogicalExecutor, from_seq: int
) -> tuple[set[str], list[str], int]:
    """Apply the execution logs of transactions committed after ``from_seq``
    (per the applied log), in commit order.

    This is the one replayable reader of the committed-transaction stream:
    leader failover (below) and per-shard read replicas
    (:class:`repro.core.replica.ReadReplica`) both rebuild a model as
    *checkpoint + this replay*, so their views can never diverge by
    construction.  Returns ``(seen_txids, replayed_txids, last_seq)``:
    ``seen_txids`` is every txid the applied log names (even if its
    document is unreadable), ``replayed_txids`` those whose logs were
    applied, and ``last_seq`` the highest sequence number observed
    (``from_seq`` when the log holds nothing newer).
    """
    seen: set[str] = set()
    replayed: list[str] = []
    last_seq = from_seq
    for seq, txid in store.applied_entries(from_seq):
        seen.add(txid)
        last_seq = seq
        txn = store.load_transaction(txid)
        if txn is None:
            continue
        executor.apply_log(txn.log)
        replayed.append(txid)
    return seen, replayed, last_seq


@dataclass
class RecoveredState:
    """In-memory controller state rebuilt from the persistent store."""

    model: DataModel
    lock_manager: LockManager
    todo: TodoQueue
    outstanding: dict[str, Transaction]
    replayed_committed: list[str] = field(default_factory=list)
    completed_started: list[str] = field(default_factory=list)
    #: Cross-shard coordinators that failed mid-prepare (presumed abort:
    #: their simulated effects were never checkpointed or applied-logged,
    #: so there is nothing to undo — the controller writes the abort).
    preparing: list[Transaction] = field(default_factory=list)
    #: Prepared 2PC participants: effects re-applied, locks re-acquired,
    #: outcome to be resolved against the global decision log.
    prepared: list[Transaction] = field(default_factory=list)


def recover_state(
    store: TropicStore,
    schema: ModelSchema,
    procedures: ProcedureRegistry,
    config: TropicConfig,
    clock: Clock | None = None,
) -> RecoveredState:
    """Rebuild the leader's soft state from the coordination store.

    In a sharded deployment each shard recovers from its own namespaced
    store, so this replays only the failed shard's transaction log and
    checkpoint documents.  A checkpoint stamped for a different shard
    layout is refused: re-routing subtrees between lock domains behind a
    recovering leader's back would break isolation silently.
    """
    clock = clock or RealClock()

    _check_shard_stamp(store)
    checkpoint_model, checkpoint_seq = store.load_checkpoint()
    model = checkpoint_model if checkpoint_model is not None else DataModel()
    executor = LogicalExecutor(model, schema, procedures)

    # Step 2: replay committed transactions since the checkpoint, in order
    # (the same reader the read replicas tail; see replay_committed).
    applied_txids, replayed, _ = replay_committed(store, executor, checkpoint_seq)

    # Steps 3-4: rebuild in-flight state.
    lock_manager = LockManager()
    todo = TodoQueue(config.scheduler_policy)
    outstanding: dict[str, Transaction] = {}
    completed_started: list[str] = []
    preparing: list[Transaction] = []
    prepared: list[Transaction] = []

    transactions = sorted(store.load_all_transactions(), key=lambda t: t.txid)
    tokened_terminal: list[Transaction] = []
    for txn in transactions:
        if txn.is_terminal:
            if txn.idempotency_token is not None:
                tokened_terminal.append(txn)
        elif txn.state in (TransactionState.ACCEPTED, TransactionState.DEFERRED):
            todo.push_back(txn)
        elif txn.state is TransactionState.PREPARING:
            # Cross-shard coordinator that died before logging a decision:
            # presumed abort.  Its simulated effects lived only in the dead
            # leader's memory (checkpoints quiesce around outstanding
            # transactions), so no undo is needed here; the controller
            # records the abort and informs the participants.
            preparing.append(txn)
        elif txn.state in (TransactionState.STARTED, TransactionState.PREPARED):
            if txn.txid in applied_txids:
                # The previous leader recorded the commit in the applied log
                # but crashed before updating the transaction document.
                # Its effects were replayed above; finish the cleanup now.
                txn.mark(TransactionState.COMMITTED, clock.now())
                store.save_transaction(txn)
                completed_started.append(txn.txid)
                if txn.idempotency_token is not None:
                    tokened_terminal.append(txn)
                continue
            executor.apply_log(txn.log)
            # Prepared-lock retention: grants the failed leader already
            # made (to dispatched transactions and to 2PC participants
            # that voted yes) survive the failover.
            lock_manager.reacquire(txn.txid, txn.rwset)
            outstanding[txn.txid] = txn
            if txn.state is TransactionState.PREPARED:
                prepared.append(txn)

    # Rebuild the idempotency-token ack index: an entry normally rides the
    # same group commit as the terminal document, so the only gap is the
    # crash-between-commit-and-ack window where the applied log names a
    # txid whose document was still STARTED/PREPARED (converted above) —
    # plus any entry lost alongside a terminal rewrite.  Reconciling from
    # the terminal documents (which carry the token) is idempotent.
    if tokened_terminal:
        known = store.token_entries()
        for txn in tokened_terminal:
            if txn.idempotency_token not in known:
                store.record_token(txn.idempotency_token, txn.txid, txn.state.value)

    # Restore inconsistency fencing (§4).
    for path in store.load_inconsistent_paths():
        try:
            model.mark_inconsistent(path)
        except UnknownPathError:
            continue

    return RecoveredState(
        model=model,
        lock_manager=lock_manager,
        todo=todo,
        outstanding=outstanding,
        replayed_committed=replayed,
        completed_started=completed_started,
        preparing=preparing,
        prepared=prepared,
    )
