"""Subtree sharding of the controller (scale-out of the logical layer).

The paper's single lead controller serially orders every transaction, which
caps platform throughput regardless of how fast the write path gets.  This
module partitions the *data-model tree* over N controller shards: each
shard owns a disjoint set of second-level subtrees (the same granularity as
the incremental checkpoint units, e.g. one ``vmHost`` or ``storageHost``
per unit) and runs its own leader election, inputQ, phyQ, lock domain and
checkpoint namespace.  Shards share nothing, so a shard is an independent
failure and recovery domain — a shard failover replays only that shard's
transaction log and checkpoint documents — and shards may be hosted by
separate processes (or machines/ensembles) without further coordination.

Ownership is decided by the :class:`ShardMap`:

* an explicit ``assignments`` table maps *unit keys* (the ``/top/child``
  prefix of a path) to shard indices; deployments use it to co-locate
  resources that transact together (TCloud pairs each compute host with
  the storage host that serves its images), and
* any unit without an explicit assignment falls back to a content-stable
  hash (CRC-32 of the unit key), so routing is deterministic across
  process restarts and independent of Python's randomised ``hash()``.

Paths at or above the sharding granularity (the root and top-level nodes
such as ``/vmRoot``) are *global*: a transaction that addresses them spans
every shard by definition.

Cross-shard transactions — those whose argument paths resolve to more than
one shard — are handled by policy (see ``TropicConfig.cross_shard_policy``):

* ``"reject"`` (default): refuse at submit time with
  :class:`~repro.common.errors.CrossShardTransaction`.  This preserves the
  paper's safety story unchanged — every accepted transaction is serialised
  by exactly one shard's lock domain.
* ``"pin"`` (deprecated): deterministically pin the transaction to the
  lowest involved shard.  Atomicity and recovery still hold (one shard
  executes, logs and recovers it), but two guarantees degrade:
  (1) *isolation* becomes per-shard — the pinned shard's locks do not
  exclude transactions on the other involved shards — and (2) *read
  visibility* of the foreign-subtree effects is limited to the pinned
  shard: each shard's copy of subtrees it does not own is bootstrap-frozen,
  so the owning shard never observes what the pinned shard wrote there
  (the in-process merged read view patches this over by preferring the
  pinned shard's copy for units it wrote, but separate processes cannot).
  Deprecated in favour of ``"2pc"``; kept for demos and single-writer
  workloads.
* ``"2pc"``: run true two-phase commit across the shard leaders.  The
  lowest involved shard coordinates; every involved shard validates,
  locks and durably prepares its slice of the execution log before the
  coordinator logs the commit decision.  Atomicity, isolation and owner
  read visibility all hold at cross-shard scope; see
  :mod:`repro.core.twopc` for the protocol and its recovery rules.

Sharding granularity, the shard-map format and the routing rules are
documented in ``docs/architecture.md#sharding-the-controller``.
"""

from __future__ import annotations

import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.common.errors import ConfigurationError, CrossShardTransaction
from repro.datamodel.path import ResourcePath

#: Policies for transactions whose paths span more than one shard.
CROSS_SHARD_POLICIES = ("reject", "pin", "2pc")


def stable_shard(key: str, num_shards: int) -> int:
    """Deterministic shard index for ``key`` (stable across processes).

    Python's builtin ``hash`` is salted per process, which would re-route
    the tree on every restart; CRC-32 is stable, cheap and well spread for
    the short path prefixes used as keys.
    """
    return zlib.crc32(key.encode("utf-8")) % num_shards


def unit_key(path: "str | ResourcePath") -> str:
    """The sharding key of ``path``: its ``/top/child`` unit prefix.

    Matches the incremental-checkpoint unit granularity.  Paths above that
    granularity (root, top-level nodes) return their own prefix and are
    treated as *global* by the router.
    """
    rpath = ResourcePath.parse(path)
    parts = rpath.parts[:2]
    return "/" + "/".join(parts)


def is_global_path(path: "str | ResourcePath") -> bool:
    """True for paths at or above the sharding granularity (depth < 2)."""
    return ResourcePath.parse(path).depth < 2


class ShardMap:
    """Assignment of data-model subtrees (checkpoint units) to shards.

    The serialised form (:meth:`to_dict`) is persisted once in the global
    (unsharded) coordination namespace at bootstrap, so every client,
    gateway and controller process resolves the same map::

        {"version": 1, "num_shards": 4,
         "assignments": {"/vmRoot/vmHost0": 0, "/storageRoot/storageHost0": 0, ...}}

    Units absent from ``assignments`` are owned by ``crc32(unit) % N``.
    """

    VERSION = 1

    def __init__(self, num_shards: int, assignments: dict[str, int] | None = None):
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        self.assignments: dict[str, int] = {}
        for key, shard in (assignments or {}).items():
            shard = int(shard)
            if not 0 <= shard < self.num_shards:
                raise ConfigurationError(
                    f"assignment {key!r} -> {shard} outside 0..{self.num_shards - 1}"
                )
            self.assignments[unit_key(key)] = shard

    def shard_of(self, path: "str | ResourcePath") -> int:
        """The shard owning ``path`` (via its unit key)."""
        if self.num_shards == 1:
            return 0
        key = unit_key(path)
        assigned = self.assignments.get(key)
        if assigned is not None:
            return assigned
        return stable_shard(key, self.num_shards)

    def owns(self, shard: int, path: "str | ResourcePath") -> bool:
        return self.shard_of(path) == shard

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.VERSION,
            "num_shards": self.num_shards,
            "assignments": dict(sorted(self.assignments.items())),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardMap":
        return cls(int(data["num_shards"]), data.get("assignments") or {})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (self.num_shards, self.assignments) == (other.num_shards, other.assignments)

    def __repr__(self) -> str:
        return f"<ShardMap shards={self.num_shards} assignments={len(self.assignments)}>"


def colocated_assignments(groups: Iterable[Iterable[str]], num_shards: int) -> dict[str, int]:
    """Build an assignment table placing each *group* of paths on one shard.

    Groups are distributed round-robin, so equally sized groups balance
    across shards.  TCloud passes one group per storage host: the storage
    host plus every compute host whose disk images it serves, which keeps
    ``spawnVM``/``destroyVM`` single-shard.
    """
    assignments: dict[str, int] = {}
    for index, group in enumerate(groups):
        shard = index % num_shards
        for path in group:
            assignments[unit_key(path)] = shard
    return assignments


def extract_paths(value: Any) -> Iterator[str]:
    """Yield every data-model path mentioned in a transaction's arguments.

    Stored-procedure arguments carry resource addresses as absolute
    slash-separated strings (``vm_host``, ``storage_host``, ``router`` ...)
    possibly nested in lists/dicts (composite procedures).  Anything that
    starts with ``/`` and parses as a resource path is treated as one.
    """
    if isinstance(value, str):
        if value.startswith("/"):
            try:
                ResourcePath.parse(value)
            except Exception:  # noqa: BLE001 - not a path, ignore
                return
            yield value
        return
    if isinstance(value, dict):
        for item in value.values():
            yield from extract_paths(item)
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            yield from extract_paths(item)


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of routing one transaction's argument paths."""

    shard: int
    shards: frozenset[int] = field(default_factory=frozenset)
    cross_shard: bool = False
    global_scope: bool = False
    paths: tuple[str, ...] = ()


class ShardRouter:
    """Routes submitted transactions to the shard owning their paths."""

    def __init__(self, shard_map: ShardMap, policy: str = "reject"):
        if policy not in CROSS_SHARD_POLICIES:
            raise ConfigurationError(
                f"unknown cross_shard_policy {policy!r}; choose from {CROSS_SHARD_POLICIES}"
            )
        if policy == "pin" and shard_map.num_shards > 1:
            warnings.warn(
                "cross_shard_policy='pin' executes cross-shard transactions "
                "with per-shard isolation only, and their effects on foreign "
                "subtrees are visible solely through the pinned shard; "
                "switch to cross_shard_policy='2pc' for atomic, isolated "
                "cross-shard transactions",
                DeprecationWarning,
                stacklevel=2,
            )
        self.map = shard_map
        self.policy = policy

    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    def shard_of(self, path: "str | ResourcePath") -> int:
        return self.map.shard_of(path)

    def owns(self, shard: int, path: "str | ResourcePath") -> bool:
        return self.map.owns(shard, path)

    def route_paths(self, paths: Iterable[str]) -> RouteDecision:
        """Route a set of concrete paths; does not apply the policy."""
        paths = tuple(paths)
        if self.num_shards == 1:
            return RouteDecision(shard=0, shards=frozenset({0}), paths=paths)
        shards: set[int] = set()
        global_scope = False
        for path in paths:
            if is_global_path(path):
                global_scope = True
            else:
                shards.add(self.map.shard_of(path))
        if global_scope:
            shards.update(range(self.num_shards))
        if not shards:
            # No addressable paths (pure-argument procedures): default shard.
            return RouteDecision(shard=0, shards=frozenset({0}), paths=paths)
        if len(shards) == 1:
            (only,) = shards
            return RouteDecision(shard=only, shards=frozenset(shards), paths=paths)
        return RouteDecision(
            shard=min(shards),
            shards=frozenset(shards),
            cross_shard=True,
            global_scope=global_scope,
            paths=paths,
        )

    def route_args(self, args: dict[str, Any] | None) -> RouteDecision:
        return self.route_paths(extract_paths(args or {}))

    def plan(self, procedure: str, args: dict[str, Any] | None) -> RouteDecision:
        """Full routing decision for a submission, applying the policy.

        For cross-shard submissions: ``pin`` and ``2pc`` both place the
        transaction on the lowest involved shard (``decision.shard``, the
        2PC *coordinator*); ``reject`` raises.  The caller distinguishes
        the policies — under ``2pc`` the platform stamps the coordinator
        and the provisional participant set into the transaction document.
        """
        decision = self.route_args(args)
        if not decision.cross_shard or self.policy in ("pin", "2pc"):
            return decision
        raise CrossShardTransaction(
            f"transaction {procedure!r} spans shards {sorted(decision.shards)} "
            f"(paths {list(decision.paths)}); cross-shard transactions are "
            f"rejected under the 'reject' policy — split the orchestration "
            f"per shard or submit with cross_shard_policy='2pc'",
            shards=sorted(decision.shards),
        )

    def resolve(self, procedure: str, args: dict[str, Any] | None) -> int:
        """Owning (or coordinating) shard for a submission."""
        return self.plan(procedure, args).shard

    def __repr__(self) -> str:
        return f"<ShardRouter shards={self.num_shards} policy={self.policy}>"
