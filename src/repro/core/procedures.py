"""Stored procedure registry.

Orchestration logic is specified as *stored procedures* composed of
queries, actions and other stored procedures (§2.2).  A procedure is a
Python callable ``proc(ctx, **kwargs)`` that receives an
:class:`~repro.core.context.OrchestrationContext`.  Procedures are
registered by name so that every controller replica — including a follower
taking over after failover — resolves the same transaction request to the
same code.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import ConfigurationError, ProcedureError

ProcedureFn = Callable[..., Any]


class ProcedureRegistry:
    """Named collection of stored procedures for one deployment."""

    def __init__(self) -> None:
        self._procedures: dict[str, ProcedureFn] = {}

    def register(self, name: str, func: ProcedureFn) -> ProcedureFn:
        if name in self._procedures:
            raise ConfigurationError(f"duplicate stored procedure {name!r}")
        self._procedures[name] = func
        return func

    def procedure(self, name: str | None = None) -> Callable[[ProcedureFn], ProcedureFn]:
        """Decorator form of :meth:`register`."""

        def decorator(func: ProcedureFn) -> ProcedureFn:
            self.register(name or func.__name__, func)
            return func

        return decorator

    def get(self, name: str) -> ProcedureFn:
        try:
            return self._procedures[name]
        except KeyError:
            raise ProcedureError(f"unknown stored procedure {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._procedures

    def names(self) -> list[str]:
        return sorted(self._procedures)

    def merge(self, other: "ProcedureRegistry") -> "ProcedureRegistry":
        """Add every procedure of ``other`` into this registry."""
        for name in other.names():
            self.register(name, other.get(name))
        return self

    def __len__(self) -> int:
        return len(self._procedures)


#: Convenience registry for small scripts and examples.
DEFAULT_REGISTRY = ProcedureRegistry()


def procedure(name: str | None = None) -> Callable[[ProcedureFn], ProcedureFn]:
    """Register a stored procedure in the module-level default registry."""
    return DEFAULT_REGISTRY.procedure(name)
