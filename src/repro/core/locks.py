"""Multi-granularity lock manager (§3.1.3).

TROPIC uses pessimistic concurrency control with hierarchical intention
locking [Gray/Ramakrishnan]: a transaction takes read (R) or write (W)
locks on the objects it uses and intention locks (IR/IW) on all ancestors
of those objects, so conflicts can be detected high up the tree.  Per the
paper's footnote: *IW locks conflict with R and W locks, while IR locks
conflict with W locks*.

All locks of a transaction are acquired atomically at schedule time (after
simulation has inferred the read/write sets); if any requested lock
conflicts with an outstanding transaction, the transaction is deferred and
retried later, so deadlock cannot occur.
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.recorder import traced
from repro.core.txn import ReadWriteSet
from repro.datamodel.path import ResourcePath


class LockMode(str, enum.Enum):
    """Lock modes of the multi-granularity scheme."""

    IR = "IR"
    IW = "IW"
    R = "R"
    W = "W"


#: Compatibility matrix: ``COMPATIBLE[(held, requested)]`` is True when a lock
#: of mode ``requested`` may coexist with a held lock of mode ``held``.
COMPATIBLE: dict[tuple[LockMode, LockMode], bool] = {
    (LockMode.IR, LockMode.IR): True,
    (LockMode.IR, LockMode.IW): True,
    (LockMode.IR, LockMode.R): True,
    (LockMode.IR, LockMode.W): False,
    (LockMode.IW, LockMode.IR): True,
    (LockMode.IW, LockMode.IW): True,
    (LockMode.IW, LockMode.R): False,
    (LockMode.IW, LockMode.W): False,
    (LockMode.R, LockMode.IR): True,
    (LockMode.R, LockMode.IW): False,
    (LockMode.R, LockMode.R): True,
    (LockMode.R, LockMode.W): False,
    (LockMode.W, LockMode.IR): False,
    (LockMode.W, LockMode.IW): False,
    (LockMode.W, LockMode.R): False,
    (LockMode.W, LockMode.W): False,
}


def compatible(held: LockMode, requested: LockMode) -> bool:
    return COMPATIBLE[(held, requested)]


#: For each requested mode, the held modes that conflict with it (derived
#: from the compatibility matrix; used for O(1) aggregate conflict checks).
_INCOMPATIBLE_WITH: dict[LockMode, tuple[LockMode, ...]] = {
    requested: tuple(
        held for held in LockMode if not COMPATIBLE[(held, requested)]
    )
    for requested in LockMode
}


@dataclass
class LockConflictInfo:
    """Description of the first conflict found for a lock request."""

    path: str
    requested: LockMode
    held: LockMode
    holder: str


class LockManager:
    """Tracks locks held by outstanding transactions."""

    def __init__(self) -> None:
        # path -> txid -> set of modes held by that transaction on that path
        self._locks: dict[ResourcePath, dict[str, set[LockMode]]] = defaultdict(dict)
        self._by_txn: dict[str, set[ResourcePath]] = defaultdict(set)
        # path -> mode -> number of transactions holding that mode.  The
        # aggregate makes conflict detection O(1) per requested lock even
        # when hundreds of outstanding transactions hold intention locks on
        # a hot ancestor (e.g. the root).
        self._mode_counts: dict[ResourcePath, dict[LockMode, int]] = defaultdict(dict)
        self._mutex = traced(threading.RLock(), "LockManager._mutex")
        self.acquisitions = 0
        self.conflicts_detected = 0

    # -- building lock requests --------------------------------------------

    @staticmethod
    def requests_for(rwset: ReadWriteSet) -> dict[ResourcePath, LockMode]:
        """Expand a read/write set into the full set of locks to acquire,
        including intention locks on ancestors.

        Stronger modes win when the same path is implied several times
        (W > R > IW > IR).
        """
        strength = {LockMode.IR: 0, LockMode.IW: 1, LockMode.R: 2, LockMode.W: 3}
        requests: dict[ResourcePath, LockMode] = {}

        def add(path: ResourcePath, mode: LockMode) -> None:
            current = requests.get(path)
            if current is None or strength[mode] > strength[current]:
                requests[path] = mode

        def add_with_intentions(path_str: str, mode: LockMode, intention: LockMode) -> None:
            path = ResourcePath.parse(path_str)
            add(path, mode)
            for ancestor in path.ancestors():
                add(ancestor, intention)

        for path_str in rwset.writes:
            add_with_intentions(path_str, LockMode.W, LockMode.IW)
        for path_str in rwset.reads:
            add_with_intentions(path_str, LockMode.R, LockMode.IR)
        for path_str in rwset.constraint_reads:
            add_with_intentions(path_str, LockMode.R, LockMode.IR)
        return requests

    # -- conflict detection and acquisition -----------------------------------

    def find_conflict(
        self, txid: str, requests: dict[ResourcePath, LockMode]
    ) -> LockConflictInfo | None:
        """Return the first conflict between ``requests`` and locks held by
        *other* transactions, or ``None`` if all requests are grantable.

        The fast path consults the per-path mode counts; only when a
        conflicting mode is genuinely held by another transaction does it
        scan the holders to name the conflicting party.
        """
        with self._mutex:
            for path, requested in requests.items():
                counts = self._mode_counts.get(path)
                if not counts:
                    continue
                own = self._locks[path].get(txid, ())
                for held in _INCOMPATIBLE_WITH[requested]:
                    held_count = counts.get(held, 0)
                    if held in own:
                        held_count -= 1
                    if held_count > 0:
                        holder = next(
                            other
                            for other, modes in self._locks[path].items()
                            if other != txid and held in modes
                        )
                        self.conflicts_detected += 1
                        return LockConflictInfo(
                            path=str(path), requested=requested, held=held, holder=holder
                        )
            return None

    def find_conflicts(
        self, txid: str, requests: dict[ResourcePath, LockMode]
    ) -> list[LockConflictInfo]:
        """Every conflict between ``requests`` and locks held by *other*
        transactions, at most one per conflicting holder (the first path on
        which that holder blocks the request).

        Wound-wait conflict resolution needs the full holder set, not just
        the first conflict: each holder's txid is compared with the
        requester's to decide locally — with no global coordination state —
        whether the holder is wounded (requester older) or waited on
        (requester younger).  Returns ``[]`` when all requests are
        grantable.
        """
        conflicts: list[LockConflictInfo] = []
        seen: set[str] = set()
        with self._mutex:
            for path, requested in requests.items():
                counts = self._mode_counts.get(path)
                if not counts:
                    continue
                own = self._locks[path].get(txid, ())
                for held in _INCOMPATIBLE_WITH[requested]:
                    held_count = counts.get(held, 0)
                    if held in own:
                        held_count -= 1
                    if held_count <= 0:
                        continue
                    for other, modes in self._locks[path].items():
                        if other == txid or held not in modes or other in seen:
                            continue
                        seen.add(other)
                        conflicts.append(
                            LockConflictInfo(
                                path=str(path),
                                requested=requested,
                                held=held,
                                holder=other,
                            )
                        )
            if conflicts:
                self.conflicts_detected += 1
        return conflicts

    def acquire(self, txid: str, requests: dict[ResourcePath, LockMode]) -> None:
        """Grant all requested locks to ``txid`` (caller must have checked
        :meth:`find_conflict` first; this method does not block)."""
        with self._mutex:
            for path, mode in requests.items():
                modes = self._locks[path].setdefault(txid, set())
                if mode not in modes:
                    modes.add(mode)
                    counts = self._mode_counts[path]
                    counts[mode] = counts.get(mode, 0) + 1
                self._by_txn[txid].add(path)
                self.acquisitions += 1

    def reacquire(self, txid: str, rwset: ReadWriteSet) -> dict[ResourcePath, LockMode]:
        """Unconditionally re-grant the locks implied by ``rwset``.

        Failover recovery uses this to retain locks across restarts for
        transactions that were already *granted* them by the failed leader:
        STARTED transactions executing in the physical layer and PREPARED
        two-phase-commit participants (whose prepare vote promised the
        coordinator the locks stay held until a decision arrives).  The
        grants cannot conflict if the previous leader scheduled correctly;
        acquiring unconditionally keeps recovery total even if they do.
        """
        requests = self.requests_for(rwset)
        with self._mutex:
            self.acquire(txid, requests)
        return requests

    def try_acquire(self, txid: str, rwset: ReadWriteSet) -> LockConflictInfo | None:
        """Convenience: expand, check and acquire in one step."""
        requests = self.requests_for(rwset)
        with self._mutex:
            conflict = self.find_conflict(txid, requests)
            if conflict is not None:
                return conflict
            self.acquire(txid, requests)
            return None

    def release_all(self, txid: str) -> int:
        """Release every lock held by ``txid``; returns the number released."""
        released = 0
        with self._mutex:
            for path in self._by_txn.pop(txid, set()):
                holders = self._locks.get(path)
                if holders and txid in holders:
                    counts = self._mode_counts.get(path)
                    for mode in holders[txid]:
                        if counts is not None:
                            remaining = counts.get(mode, 0) - 1
                            if remaining > 0:
                                counts[mode] = remaining
                            else:
                                counts.pop(mode, None)
                    released += len(holders[txid])
                    del holders[txid]
                    if not holders:
                        del self._locks[path]
                        self._mode_counts.pop(path, None)
        return released

    # -- introspection ------------------------------------------------------------

    def holders(self, path: str | ResourcePath) -> dict[str, set[LockMode]]:
        with self._mutex:
            return {
                txid: set(modes)
                for txid, modes in self._locks.get(ResourcePath.parse(path), {}).items()
            }

    def locks_of(self, txid: str) -> dict[ResourcePath, set[LockMode]]:
        with self._mutex:
            result = {}
            for path in self._by_txn.get(txid, set()):
                modes = self._locks.get(path, {}).get(txid)
                if modes:
                    result[path] = set(modes)
            return result

    def active_transactions(self) -> set[str]:
        with self._mutex:
            return set(self._by_txn)

    def total_locked_paths(self) -> int:
        with self._mutex:
            return len(self._locks)

    def clear(self) -> None:
        with self._mutex:
            self._locks.clear()
            self._by_txn.clear()
            self._mode_counts.clear()
