"""The decision-log-aware read fence: cross-shard-atomic replica reads.

A fleet view merges per-shard sources at independent watermarks, so
between a 2PC coordinator's commit and a participant's processing of the
decision, a replica-consistency view could contain exactly one
participant's slice of a cross-shard transaction — a *torn* read that
breaks the atomicity the write path's two-phase commit guarantees.

This module closes that window.  Every :class:`~repro.core.replica.
ReadReplica` opens an :class:`~repro.core.replica.Barrier` when it
applies a cross-shard commit (the applied-log entries are stamped with
the participant set; see :meth:`~repro.core.persistence.TropicStore.
record_applied`).  Before a merge, :func:`fence_replica_sources` walks
the open barriers and, for each commit not yet confirmed on every fenced
participant, either

* **advances** the lagging replica — a forced catch-up, then
  :meth:`~repro.core.replica.ReadReplica.early_apply` of the prepared
  slice once the durable commit decision is verified in the
  :class:`~repro.core.twopc.TwoPCLog` (this is safe precisely because a
  barrier can only exist *after* the coordinator made the commit
  decision durable: decision record first, applied entry second), or
* **rewinds** — when the decision log is unreachable, the advanced
  shards' views are cut back to their pre-commit barrier forks so the
  whole transaction is atomically excluded; the cut cascades (excluding
  one commit excludes every later cross-shard commit on that shard, and
  *their* other halves elsewhere) until it reaches a fixed point, or
* **degrades** the shard to partial-consistency for this view, when
  neither is possible (no document, no barrier) — disclosed staleness
  instead of silent tearing.

Leader-hosted shards are authoritative and never lag behind a durable
decision's effects on their own slice (a participant leader carries the
slice from PREPARE time), so they auto-confirm.  Shards served at
partial consistency are outside the fence's atomicity domain — their
copies are bootstrap-frozen and disclosed as such in the watermarks.

The fence is cheap when quiescent: with no open barriers it performs no
coordination reads at all, so single-shard workloads pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.replica import Barrier, ReadReplica

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.twopc import TwoPCLog
    from repro.datamodel.tree import DataModel


@dataclass
class FenceResult:
    """Outcome of one fence pass over a set of replica sources."""

    #: Commits whose prepared slice was applied early on a lagging shard.
    advanced: int = 0
    #: Commits checked against the fence (confirmed or acted on).
    checked: int = 0
    #: Per-shard view-local rewinds: ``shard -> (model, applied_txn)``;
    #: the caller must serve these forks *instead of* the replicas' live
    #: snapshots (and must not cache the resulting view — the rewind is
    #: not a state the replica will report again).
    rewinds: dict[int, tuple["DataModel", int]] = field(default_factory=dict)
    #: Shards that could be neither advanced nor rewound; the caller must
    #: degrade them to partial consistency for this view.
    degraded: list[int] = field(default_factory=list)


def fence_replica_sources(
    replicas: dict[int, ReadReplica],
    leader_shards: set[int],
    twopc: "TwoPCLog | None",
    max_passes: int = 8,
) -> FenceResult:
    """Align replica sources so no cross-shard commit is half-visible.

    ``replicas`` are the shards about to be merged from read replicas;
    ``leader_shards`` the shards merged from in-process leaders (always
    authoritative).  Confirmed barriers are closed; lagging shards are
    advanced via the decision log; failing that, advanced shards are
    rewound or degraded (see the module docstring for the full policy).
    """
    result = FenceResult()
    if not replicas:
        return result
    fenced = set(replicas) | set(leader_shards)
    unresolvable: set[str] = set()
    for _ in range(max_passes):
        # Snapshot the frontier: every cross-shard commit some replica has
        # applied but the fence has not yet confirmed fleet-visible.
        candidates: dict[str, Barrier] = {}
        for replica in replicas.values():
            for barrier in replica.open_barriers():
                if barrier.txid not in unresolvable:
                    candidates.setdefault(barrier.txid, barrier)
        if not candidates:
            break
        progressed = False
        for txid, barrier in candidates.items():
            result.checked += 1
            # A participant outside the fenced sources (partial shard) is
            # bootstrap-frozen and disclosed; it cannot be aligned and
            # does not block confirmation of the shards that can be.
            laggards = [
                shard
                for shard in barrier.participants
                if shard in replicas and not replicas[shard].has_applied(txid)
            ]
            if not laggards:
                for shard in barrier.participants:
                    if shard in replicas:
                        replicas[shard].close_barrier(txid)
                progressed = True
                continue
            committed = (
                twopc.commit_participants(txid, barrier.coordinator)
                if twopc is not None
                else None
            )
            if committed is None:
                # No durable commit decision readable — yet some shard
                # applied the commit, so the decision *was* made and this
                # log is unreachable or GC'd.  Atomically exclude the
                # transaction instead of advancing on faith.
                _exclude(replicas, leader_shards, barrier, laggards, result)
                unresolvable.add(txid)
                progressed = True
                continue
            for shard in laggards:
                replica = replicas[shard]
                replica.refresh(force=True)
                if replica.has_applied(txid):
                    progressed = True
                    continue
                outcome = replica.early_apply(txid)
                if outcome == "applied":
                    result.advanced += 1
                    progressed = True
                elif outcome == "already":
                    progressed = True
                else:
                    _exclude(replicas, leader_shards, barrier, laggards, result)
                    unresolvable.add(txid)
                    progressed = True
                    break
        if not progressed:
            break
    return result


def _exclude(
    replicas: dict[int, ReadReplica],
    leader_shards: set[int],
    barrier: Barrier,
    laggards: list[int],
    result: FenceResult,
) -> None:
    """Resolve an unadvanceable commit: rewind the shards that have it,
    unless a leader-served participant already shows it — a leader cannot
    be rewound, so excluding the commit elsewhere would tear the view the
    other way; the lagging shards degrade to partial instead."""
    if any(shard in leader_shards for shard in barrier.participants):
        for shard in laggards:
            if shard not in result.degraded:
                result.degraded.append(shard)
        return
    _rewind_or_degrade(replicas, {barrier.txid}, result)


def _rewind_or_degrade(
    replicas: dict[int, ReadReplica],
    exclude: set[str],
    result: FenceResult,
) -> None:
    """Atomically exclude the commits in ``exclude`` from the view.

    Every shard that applied one of them is cut back to the pre-commit
    fork of its *earliest* excluded barrier.  Cutting a shard also drops
    every cross-shard commit it applied after that point, whose other
    halves must then be excluded on their shards too — iterate to the
    fixed point (terminates: cuts only move earlier and the exclude set
    only grows, both bounded).  A shard that applied an excluded commit
    but has no barrier for it (evicted, or it is leader-served) cannot be
    cut and is degraded to partial for this view.
    """
    cuts: dict[int, Barrier] = {}
    degraded: set[int] = set()
    changed = True
    while changed:
        changed = False
        for shard, replica in replicas.items():
            if shard in degraded:
                continue
            barriers = replica.open_barriers()
            target = next((b for b in barriers if b.txid in exclude), None)
            if target is None:
                if any(replica.has_applied(txid) for txid in exclude):
                    # Applied but not rewindable: the barrier is gone.
                    degraded.add(shard)
                    changed = True
                continue
            if not target.rewindable:
                # A bootstrap-tail barrier has no pre-commit fork to
                # rewind to; disclosed partiality beats silent tearing.
                degraded.add(shard)
                changed = True
                continue
            current = cuts.get(shard)
            if current is not None and current.tick <= target.tick:
                continue
            cuts[shard] = target
            changed = True
            # Everything at or after the cut is excluded with it.
            for barrier in barriers:
                if barrier.tick >= target.tick and barrier.txid not in exclude:
                    exclude.add(barrier.txid)
    for shard in degraded:
        cuts.pop(shard, None)
        if shard not in result.degraded:
            result.degraded.append(shard)
    for shard, barrier in cuts.items():
        existing = result.rewinds.get(shard)
        if existing is None or barrier.pre_applied < existing[1]:
            result.rewinds[shard] = (barrier.pre_model, barrier.pre_applied)
