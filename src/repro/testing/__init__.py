"""Deterministic test infrastructure for the TROPIC reproduction.

This package ships with the library (rather than hiding in ``tests/``) so
integration tests, property tests and downstream experiments can all build
multi-shard clusters and inject controller crashes at named failure points
without hand-rolling controller/ensemble wiring.
"""

from repro.testing.chaos import ChaosReport, ChaosScenario, run_chaos, run_soak
from repro.testing.cluster import ShardedCluster
from repro.testing.faults import (
    ALL_FAILURE_POINTS,
    CONNECTION_LOSS,
    ENSEMBLE_FAULT_KINDS,
    EXPIRE_SESSION,
    LATENCY_SPIKE,
    PARTITION,
    FAILURE_POINTS,
    MID_CHECKPOINT,
    PIPELINE_FAILURE_POINTS,
    PIPELINE_POST_FLUSH_PRE_ACK,
    PIPELINE_PRE_FLUSH,
    PIPELINE_WINDOW_CRASH,
    POST_COMMIT_PRE_ACK,
    PRE_CHECKPOINT,
    PRE_COMMIT,
    PRE_DISPATCH,
    TWOPC_FAILURE_POINTS,
    TWOPC_POST_DECISION,
    TWOPC_POST_PREPARE,
    TWOPC_PRE_DECISION,
    TWOPC_PRE_PREPARE,
    CrashPoint,
    FaultInjector,
    FaultyEnsemble,
    FaultyKVStore,
    FaultyQueue,
    FaultyTropicStore,
)
from repro.testing.models import SNAPSHOT_BENCH_SIZES, build_host_fleet_model

__all__ = [
    "ChaosReport",
    "ChaosScenario",
    "run_chaos",
    "run_soak",
    "ShardedCluster",
    "SNAPSHOT_BENCH_SIZES",
    "build_host_fleet_model",
    "CrashPoint",
    "FaultInjector",
    "FaultyEnsemble",
    "FaultyKVStore",
    "FaultyQueue",
    "FaultyTropicStore",
    "ALL_FAILURE_POINTS",
    "FAILURE_POINTS",
    "PIPELINE_FAILURE_POINTS",
    "TWOPC_FAILURE_POINTS",
    "PRE_COMMIT",
    "POST_COMMIT_PRE_ACK",
    "PRE_CHECKPOINT",
    "MID_CHECKPOINT",
    "PRE_DISPATCH",
    "PIPELINE_PRE_FLUSH",
    "PIPELINE_POST_FLUSH_PRE_ACK",
    "PIPELINE_WINDOW_CRASH",
    "TWOPC_PRE_PREPARE",
    "TWOPC_POST_PREPARE",
    "TWOPC_PRE_DECISION",
    "TWOPC_POST_DECISION",
    "ENSEMBLE_FAULT_KINDS",
    "EXPIRE_SESSION",
    "CONNECTION_LOSS",
    "LATENCY_SPIKE",
    "PARTITION",
]
