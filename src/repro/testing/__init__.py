"""Deterministic test infrastructure for the TROPIC reproduction.

This package ships with the library (rather than hiding in ``tests/``) so
integration tests, property tests and downstream experiments can all build
multi-shard clusters and inject controller crashes at named failure points
without hand-rolling controller/ensemble wiring.
"""

from repro.testing.cluster import ShardedCluster
from repro.testing.faults import (
    FAILURE_POINTS,
    MID_CHECKPOINT,
    POST_COMMIT_PRE_ACK,
    PRE_CHECKPOINT,
    PRE_COMMIT,
    CrashPoint,
    FaultInjector,
    FaultyKVStore,
    FaultyQueue,
    FaultyTropicStore,
)

__all__ = [
    "ShardedCluster",
    "CrashPoint",
    "FaultInjector",
    "FaultyKVStore",
    "FaultyQueue",
    "FaultyTropicStore",
    "FAILURE_POINTS",
    "PRE_COMMIT",
    "POST_COMMIT_PRE_ACK",
    "PRE_CHECKPOINT",
    "MID_CHECKPOINT",
]
