"""Synthetic data-model builders shared by benchmarks and tests.

The snapshot benchmarks (``benchmarks/bench_writepath.py`` micro-guard
and ``scripts/measure_replica.py`` scaling section) must measure the
*same* tree shape, or the CI guard and the recorded BENCH evidence drift
apart silently — so the builder lives here, importable by both.
"""

from __future__ import annotations

from repro.datamodel.tree import DataModel

#: Model sizes (in hosts) the O(1)-snapshot evidence is collected at.
SNAPSHOT_BENCH_SIZES = (50, 200, 800)


def build_host_fleet_model(hosts: int, vms_per_host: int = 2) -> DataModel:
    """A fleet-shaped model: ``/vmRoot/host<i>`` units with a fixed number
    of VM children each, matching the checkpoint-unit granularity the
    snapshot benchmarks care about."""
    model = DataModel()
    model.create("/vmRoot", "vmRoot")
    for h in range(hosts):
        model.create(f"/vmRoot/host{h}", "vmHost", {"mem_mb": 4096})
        for v in range(vms_per_host):
            state = "running" if v % 2 == 0 else "stopped"
            model.create(f"/vmRoot/host{h}/vm{v}", "vm", {"state": state})
    return model
