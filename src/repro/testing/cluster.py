"""A deterministic N-shard controller cluster for tests.

Integration tests used to hand-roll ensemble + store + queue + controller
wiring per test module.  :class:`ShardedCluster` builds the same topology
the platform does — per-shard namespaced stores, inputQ/phyQ and
controllers over one in-process coordination ensemble — but exposes the
pieces individually, with deterministic inline stepping, crash/replace
controls and optional fault injection (:mod:`repro.testing.faults`).

A "crash" is modelled the way a process death looks to the rest of the
system: the controller instance (all soft state, fragment caches included)
is abandoned and a brand-new replica with a brand-new store facade takes
over the shard, recovering purely from the coordination store.
"""

from __future__ import annotations

from typing import Any

from repro.common.config import TropicConfig
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue
from repro.core.controller import Controller
from repro.core.events import request_message
from repro.core.persistence import TropicStore
from repro.core.reconcile import Reconciler
from repro.core.sharding import ShardMap, ShardRouter
from repro.core.twopc import TWOPC_PREFIX, TwoPCLog
from repro.core.txn import Transaction, TransactionState
from repro.core.worker import Worker
from repro.testing.faults import (
    CrashPoint,
    FaultInjector,
    FaultyKVStore,
    FaultyQueue,
    FaultyTropicStore,
)
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures


class ShardedCluster:
    """N controller shards over one coordination ensemble, stepped inline."""

    def __init__(
        self,
        num_shards: int = 1,
        num_vm_hosts: int = 4,
        num_storage_hosts: int = 2,
        host_mem_mb: int = 8192,
        config: TropicConfig | None = None,
        cross_shard_policy: str = "reject",
        with_devices: bool = True,
        injector: FaultInjector | None = None,
        faulty_shards: tuple[int, ...] = (),
        ensemble: CoordinationEnsemble | None = None,
    ):
        self.num_shards = num_shards
        #: Injectable so chaos scenarios can substitute a
        #: :class:`~repro.testing.faults.FaultyEnsemble` with a scheduled
        #: ensemble-fault plan.
        self.ensemble = ensemble or CoordinationEnsemble(
            num_servers=3, default_session_timeout=3600.0
        )
        self.client = CoordinationClient(self.ensemble)
        self.config = (config or TropicConfig()).with_overrides(
            num_shards=num_shards, cross_shard_policy=cross_shard_policy
        )
        self.schema = build_schema()
        self.procedures = build_procedures()
        self.inventory = build_inventory(
            num_vm_hosts=num_vm_hosts,
            num_storage_hosts=num_storage_hosts,
            host_mem_mb=host_mem_mb,
            with_devices=with_devices,
        )
        # Same co-location scheme as build_tcloud: a storage host shares a
        # shard with every compute host whose images it serves.
        from repro.tcloud.service import tcloud_shard_assignments

        assignments = (
            tcloud_shard_assignments(self.inventory, num_shards) if num_shards > 1 else {}
        )
        self.router = ShardRouter(ShardMap(num_shards, assignments), cross_shard_policy)
        self.injector = injector or FaultInjector()
        self.faulty_shards = set(faulty_shards)
        #: Global 2PC decision log + checkpoint horizons (shared by all
        #: shards; prepare admission itself is wound-wait, fully local).
        self.twopc = TwoPCLog(KVStore(self.client, TWOPC_PREFIX))

        #: Reference (never-faulty) store per shard, used by workers and by
        #: test assertions.
        self.stores: dict[int, TropicStore] = {}
        self.input_queues: dict[int, DistributedQueue] = {}
        self.phy_queues: dict[int, DistributedQueue] = {}
        self.controllers: dict[int, Controller] = {}
        self.workers: dict[int, Worker] = {}
        #: Terminal transactions whose completion was delivered to the
        #: client observer — the "acknowledged" set a failover must keep.
        self.acked: list[Transaction] = []
        self.submitted: list[Transaction] = []
        self._generation = 0

        # Two passes: every shard's queues must exist before any controller
        # is wired (controllers snapshot the peer-queue map for 2PC).
        for shard in self.shard_ids:
            store = self._plain_store(shard)
            self.stores[shard] = store
            self.input_queues[shard] = DistributedQueue(self.client, self._input_path(shard))
            self.phy_queues[shard] = DistributedQueue(self.client, self._phy_path(shard))
            store.save_checkpoint(self.inventory.model, 0)
        for shard in self.shard_ids:
            self.controllers[shard] = self.new_controller(shard)
            self.workers[shard] = Worker(
                f"worker-{shard}",
                self.stores[shard],
                self.phy_queues[shard],
                self.input_queues[shard],
                self.inventory.registry,
                config=self.config,
            )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def shard_ids(self) -> list[int]:
        return list(range(self.num_shards))

    def _store_prefix(self, shard: int) -> str:
        return f"/tropic/store/shard-{shard}"

    def _input_path(self, shard: int) -> str:
        return f"/tropic/queues/shard-{shard}/inputQ"

    def _phy_path(self, shard: int) -> str:
        return f"/tropic/queues/shard-{shard}/phyQ"

    def _plain_store(self, shard: int) -> TropicStore:
        kwargs: dict[str, Any] = {}
        if self.num_shards > 1:
            kwargs = {"shard_id": shard, "num_shards": self.num_shards}
        return TropicStore(KVStore(self.client, self._store_prefix(shard)), **kwargs)

    def new_controller(self, shard: int, faulty: bool | None = None) -> Controller:
        """A fresh controller replica for ``shard`` (a newly elected leader
        with no memory of its predecessor).  ``faulty`` defaults to whether
        the shard is listed in ``faulty_shards``; successors created by
        :meth:`replace_controller` are always clean."""
        if faulty is None:
            faulty = shard in self.faulty_shards
        self._generation += 1
        stamp: dict[str, Any] = {}
        if self.num_shards > 1:
            stamp = {"shard_id": shard, "num_shards": self.num_shards}
        if faulty:
            store = FaultyTropicStore(
                FaultyKVStore(self.client, self._store_prefix(shard), self.injector),
                self.injector,
                **stamp,
            )
            input_queue: DistributedQueue = FaultyQueue(
                self.client, self._input_path(shard), self.injector
            )
        else:
            store = self._plain_store(shard)
            input_queue = self.input_queues[shard]
        return Controller(
            name=f"ctrl-{shard}-{self._generation}",
            config=self.config,
            store=store,
            input_queue=input_queue,
            phy_queue=self.phy_queues[shard],
            schema=self.schema,
            procedures=self.procedures,
            on_complete=self._on_complete,
            shard_id=shard,
            router=self.router if self.num_shards > 1 else None,
            peer_queues=self.input_queues if self.num_shards > 1 else None,
            twopc=self.twopc if self.num_shards > 1 else None,
            fault_hook=self.injector.hit if faulty else None,
        )

    def replace_controller(self, shard: int) -> Controller:
        """Fail the shard over to a fresh, clean replica."""
        self.controllers[shard] = self.new_controller(shard, faulty=False)
        return self.controllers[shard]

    def _on_complete(self, txn: Transaction) -> None:
        self.acked.append(txn)

    # ------------------------------------------------------------------
    # Submission (client-side routing, as the platform does it)
    # ------------------------------------------------------------------

    def submit(self, procedure: str, args: dict[str, Any]) -> Transaction:
        decision = self.router.plan(procedure, args)
        shard = decision.shard
        txn = Transaction(procedure=procedure, args=dict(args))
        if decision.cross_shard and self.router.policy == "2pc":
            txn.coordinator = shard
            txn.participants = sorted(decision.shards)
        txn.mark(TransactionState.INITIALIZED, 0.0)
        self.stores[shard].save_transaction(txn)
        self.input_queues[shard].put(request_message(txn.txid))
        self.submitted.append(txn)
        return txn

    def submit_cross_spawn(self, vm_name: str, vm_host_index: int = 0,
                           mem_mb: int = 512) -> Transaction:
        """Submit a spawnVM that provably spans two shards: the VM goes to
        ``vm_host_index``'s compute host while its disk image goes to a
        storage host owned by a *different* shard."""
        vm_host = self.inventory.vm_hosts[vm_host_index % len(self.inventory.vm_hosts)]
        home = self.router.shard_of(vm_host)
        foreign = [
            host for host in self.inventory.storage_hosts
            if self.router.shard_of(host) != home
        ]
        if not foreign:
            raise AssertionError("no storage host on a foreign shard; "
                                 "use more shards or hosts")
        return self.submit(
            "spawnVM",
            {
                "vm_name": vm_name,
                "image_template": "template-small",
                "storage_host": foreign[0],
                "vm_host": vm_host,
                "mem_mb": mem_mb,
            },
        )

    def submit_spawn(
        self,
        vm_name: str,
        host_index: int = 0,
        mem_mb: int = 512,
        template: str = "template-small",
        vm_host: str | None = None,
        storage_host: str | None = None,
    ) -> Transaction:
        """Submit a spawnVM pinned to a compute host and its paired storage
        host (single-shard by construction of the shard map)."""
        host_index %= len(self.inventory.vm_hosts)
        if vm_host is None:
            vm_host = self.inventory.vm_hosts[host_index]
        if storage_host is None:
            storage_host = self.inventory.storage_host_for(host_index)
        return self.submit(
            "spawnVM",
            {
                "vm_name": vm_name,
                "image_template": template,
                "storage_host": storage_host,
                "vm_host": vm_host,
                "mem_mb": mem_mb,
            },
        )

    def shard_of(self, path_or_txn: "str | Transaction") -> int:
        if isinstance(path_or_txn, Transaction):
            return self.router.resolve(path_or_txn.procedure, path_or_txn.args)
        return self.router.shard_of(path_or_txn)

    # ------------------------------------------------------------------
    # Inline driving
    # ------------------------------------------------------------------

    def queues_empty(self) -> bool:
        return all(
            self.input_queues[s].is_empty() and self.phy_queues[s].is_empty()
            for s in self.shard_ids
        )

    def step_all(self, failover: bool = False) -> bool:
        """One stepping round over every shard's controller and worker.

        With ``failover=True`` an injected :class:`CrashPoint` on a shard's
        controller is treated as that replica dying: it is replaced with a
        fresh clean replica, and stepping continues.
        """
        progressed = False
        for shard in self.shard_ids:
            try:
                if self.controllers[shard].step():
                    progressed = True
            except CrashPoint:
                if not failover:
                    raise
                self.replace_controller(shard)
                progressed = True
            if self.workers[shard].step():
                progressed = True
        return progressed

    def drain(self, max_rounds: int = 10_000, failover: bool = False) -> None:
        """Step all shards to quiescence (optionally failing over crashes)."""
        for _ in range(max_rounds):
            progressed = self.step_all(failover=failover)
            if not progressed and self.queues_empty():
                return
        raise AssertionError("cluster did not quiesce")

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------

    def model(self, shard: int = 0):
        return self.controllers[shard].model

    def load(self, txn: "Transaction | str") -> Transaction | None:
        """Load a transaction document, preferring the coordinator's copy
        for cross-shard transactions (participants hold prepare-record
        slices under the same txid in their own stores)."""
        txid = txn.txid if isinstance(txn, Transaction) else txn
        fallback = None
        for shard, store in self.stores.items():
            loaded = store.load_transaction(txid)
            if loaded is None:
                continue
            if not loaded.is_cross_shard or loaded.coordinator == shard:
                return loaded
            fallback = fallback or loaded
        return fallback

    def state_of(self, txn: "Transaction | str") -> TransactionState | None:
        loaded = self.load(txn)
        return None if loaded is None else loaded.state

    def reconciler(self, shard: int = 0) -> Reconciler:
        return Reconciler(self.controllers[shard], self.inventory.registry)

    def owned_hosts(self, shard: int) -> list[str]:
        """Host paths (compute + storage) owned by ``shard`` — the scope a
        sharded reconciler may compare against the devices (a shard's model
        holds bootstrap-frozen copies of foreign subtrees by design)."""
        return [
            path
            for path in [*self.inventory.vm_hosts, *self.inventory.storage_hosts]
            if self.router.shard_of(path) == shard
        ]

    def detect_is_clean(self, shard: int = 0) -> bool:
        """Cross-layer agreement over the shard's owned subtrees."""
        if self.num_shards == 1:
            return self.reconciler(shard).detect().is_empty
        reconciler = self.reconciler(shard)
        return all(reconciler.detect(path).is_empty for path in self.owned_hosts(shard))

    def __repr__(self) -> str:
        return f"<ShardedCluster shards={self.num_shards} gen={self._generation}>"
