"""Deterministic controller fault injection.

The paper claims the controller may fail "at any possible failure point"
without losing submitted transactions (§2.3).  This module makes that claim
testable *deterministically*: store/queue wrappers raise :class:`CrashPoint`
at named failure points, armed by occurrence index, so a test can crash a
controller at exactly the k-th group commit (or checkpoint, or ack) of a
workload and hand the persistent state to a successor.

The named points are the crash boundaries of the controller main loop:

* ``pre-commit`` — before a group commit applies; every buffered store
  write of the loop iteration is lost, and the consumed inputQ messages
  were never acknowledged.
* ``post-commit-pre-ack`` — the group commit is durable and completion
  notifications were delivered, but the inputQ batch is not yet
  acknowledged; the successor re-receives every message and must handle
  each idempotently.
* ``pre-checkpoint`` — before any checkpoint document is written.
* ``mid-checkpoint`` — the checkpoint committed (atomically, as one
  ``multi``) but the applied log was not yet truncated and the dirty
  flags not yet persisted as cleared in controller memory.
* ``post-flush-pre-dispatch`` — the group commit (STARTED states plus
  their dispatch markers) is durable but the execute messages never
  reached phyQ: the dispatch-loss window, closed by claim-record-aware
  re-dispatch on recovery.

Cross-shard two-phase commit adds four protocol edges (reported through
the controller's ``fault_hook``, since they are protocol positions rather
than store/queue boundaries):

* ``2pc-pre-prepare`` — coordinator: PREPARING durable, prepare requests
  never sent (successor presumed-aborts).
* ``2pc-post-prepare`` — participant: prepare record durable, vote never
  sent (successor re-votes).
* ``2pc-pre-decision`` — coordinator: physical outcome known, decision
  record not yet durable (the unacked result message re-drives cleanup).
* ``2pc-post-decision`` — coordinator: commit decision durable, fan-out
  lost (participants resolve via the global decision log).

Crashes *inside* a ``multi`` are not modelled: ZooKeeper applies a multi
atomically through its transaction log, so the real system never observes
a torn group commit.
"""

from __future__ import annotations

from repro.coordination.kvstore import KVStore, WriteBatch
from repro.coordination.queue import DistributedQueue
from repro.core.controller import (
    PRE_DISPATCH,
    TWOPC_POST_DECISION,
    TWOPC_POST_PREPARE,
    TWOPC_PRE_DECISION,
    TWOPC_PRE_PREPARE,
)
from repro.core.persistence import TropicStore

PRE_COMMIT = "pre-commit"
POST_COMMIT_PRE_ACK = "post-commit-pre-ack"
PRE_CHECKPOINT = "pre-checkpoint"
MID_CHECKPOINT = "mid-checkpoint"

#: Named failure points reachable by any workload, in main-loop order.
FAILURE_POINTS = (
    PRE_COMMIT,
    POST_COMMIT_PRE_ACK,
    PRE_CHECKPOINT,
    MID_CHECKPOINT,
    PRE_DISPATCH,
)

#: Protocol edges of cross-shard two-phase commit (reachable only by
#: workloads containing cross-shard transactions under policy ``2pc``).
TWOPC_FAILURE_POINTS = (
    TWOPC_PRE_PREPARE,
    TWOPC_POST_PREPARE,
    TWOPC_PRE_DECISION,
    TWOPC_POST_DECISION,
)

ALL_FAILURE_POINTS = FAILURE_POINTS + TWOPC_FAILURE_POINTS


class CrashPoint(Exception):
    """An injected controller crash.

    Deliberately *not* a :class:`~repro.common.errors.ReproError`: service
    loops retry those, whereas a crash must surface to the test harness so
    it can abandon the instance (the process died).
    """

    def __init__(self, point: str, occurrence: int):
        super().__init__(f"injected crash at {point} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


class FaultInjector:
    """Counts hits of each failure point and raises when an armed one is
    reached.  Occurrence counting makes runs reproducible: arming
    ``(point, k)`` always crashes at the same place of the same workload."""

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        self._hits: dict[str, int] = {}
        self.fired: list[CrashPoint] = []
        #: Set when a crash fires.  Faulty wrappers become *inert* once
        #: dead: a dying controller unwinds through batch context managers
        #: whose exits would otherwise commit the very writes the crash was
        #: supposed to lose (a dead process writes nothing).
        self.dead = False

    def arm(self, point: str, occurrence: int = 0) -> "FaultInjector":
        if point not in ALL_FAILURE_POINTS:
            raise ValueError(
                f"unknown failure point {point!r}; choose from {ALL_FAILURE_POINTS}"
            )
        self._armed[point] = occurrence
        self.dead = False
        return self

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def hits(self, point: str) -> int:
        return self._hits.get(point, 0)

    def hit(self, point: str) -> None:
        """Record one pass through ``point``; crash if armed for it."""
        count = self._hits.get(point, 0)
        self._hits[point] = count + 1
        target = self._armed.get(point)
        if target is not None and count == target:
            del self._armed[point]
            crash = CrashPoint(point, count)
            self.fired.append(crash)
            self.dead = True
            raise crash


class FaultyKVStore(KVStore):
    """KV store whose group commits pass through ``pre-commit``.

    The hit happens *before* the buffered operations are applied, so a
    crash here loses the whole batch — exactly a process death before the
    ``multi`` reaches the coordination service.
    """

    def __init__(self, client, prefix: str, injector: FaultInjector):
        super().__init__(client, prefix)
        self.injector = injector

    def flush(self) -> int:
        if self.injector.dead:
            # The process is dead: its buffered group commit is lost, not
            # applied by the unwinding batch context manager.
            if self._batch is not None and not self._batch.is_empty():
                self._batch = WriteBatch()
            return 0
        batch = self._batch
        if batch is not None and not batch.is_empty():
            self.injector.hit(PRE_COMMIT)
        return super().flush()

    def put_serialized(self, key: str, data: str) -> None:
        if self.injector.dead:
            return
        super().put_serialized(key, data)

    def delete(self, key: str, recursive: bool = False) -> None:
        if self.injector.dead:
            return
        super().delete(key, recursive)


class FaultyTropicStore(TropicStore):
    """Persistence facade wrapping checkpoints with the checkpoint points."""

    def __init__(self, kv: KVStore, injector: FaultInjector, **kwargs):
        super().__init__(kv, **kwargs)
        self.injector = injector

    def save_checkpoint_incremental(self, model, applied_seq: int) -> int:
        self.injector.hit(PRE_CHECKPOINT)
        written = super().save_checkpoint_incremental(model, applied_seq)
        # The checkpoint multi committed; the controller has not yet
        # truncated the applied log nor updated its counters.
        self.injector.hit(MID_CHECKPOINT)
        return written


class FaultyQueue(DistributedQueue):
    """inputQ wrapper crashing between group commit and acknowledgment."""

    def __init__(self, client, path: str, injector: FaultInjector, clock=None):
        super().__init__(client, path, clock)
        self.injector = injector

    def ack_many(self, names: list[str]) -> int:
        if self.injector.dead:
            return 0
        if names:
            self.injector.hit(POST_COMMIT_PRE_ACK)
        return super().ack_many(names)

    def ack(self, name: str) -> bool:
        if self.injector.dead:
            return False
        self.injector.hit(POST_COMMIT_PRE_ACK)
        return super().ack(name)
