"""Deterministic controller and ensemble fault injection.

The paper claims the controller may fail "at any possible failure point"
without losing submitted transactions (§2.3).  This module makes that claim
testable *deterministically*: store/queue wrappers raise :class:`CrashPoint`
at named failure points, armed by occurrence index, so a test can crash a
controller at exactly the k-th group commit (or checkpoint, or ack) of a
workload and hand the persistent state to a successor.

The named points are the crash boundaries of the controller main loop:

* ``pre-commit`` — before a group commit applies; every buffered store
  write of the loop iteration is lost, and the consumed inputQ messages
  were never acknowledged.
* ``post-commit-pre-ack`` — the group commit is durable and completion
  notifications were delivered, but the inputQ batch is not yet
  acknowledged; the successor re-receives every message and must handle
  each idempotently.
* ``pre-checkpoint`` — before any checkpoint document is written.
* ``mid-checkpoint`` — the checkpoint committed (atomically, as one
  ``multi``) but the applied log was not yet truncated and the dirty
  flags not yet persisted as cleared in controller memory.
* ``post-flush-pre-dispatch`` — the group commit (STARTED states plus
  their dispatch markers) is durable but the execute messages never
  reached phyQ: the dispatch-loss window, closed by claim-record-aware
  re-dispatch on recovery.

The pipelined write path (:mod:`repro.core.pipeline`) adds three edges:

* ``pipeline-pre-flush`` — the whole in-flight window (possibly several
  sealed steps at ``pipeline_depth > 1``) is still in memory; none of
  its writes are durable and none of its messages are acked.
* ``pipeline-post-flush-pre-ack`` — a sealed step's writes are durable
  and its dispatches/fan-out/notifications were applied, but its inputQ
  acks were not; the successor re-receives and handles idempotently.
* ``pipeline-window-crash`` — a seal found at least one *older* sealed
  step already windowed (reachable only at ``pipeline_depth > 1``): the
  crash loses multiple steps' worth of unflushed state at once.

Cross-shard two-phase commit adds seven protocol edges (reported through
the controller's ``fault_hook``, since they are protocol positions rather
than store/queue boundaries):

* ``2pc-pre-prepare`` — coordinator: PREPARING durable, prepare requests
  never sent (successor presumed-aborts).
* ``2pc-post-prepare`` — participant: prepare record durable, vote never
  sent (successor re-votes).
* ``2pc-pre-decision`` — coordinator: physical outcome known, decision
  record not yet durable (the unacked result message re-drives cleanup).
* ``2pc-post-decision`` — coordinator: commit decision durable, fan-out
  lost (participants resolve via the global decision log).
* ``2pc-pre-wound`` — coordinator, about to wound a younger PREPARING
  transaction: nothing of the wound is durable yet (the successor
  presumed-aborts the victim exactly as the wound would have).
* ``2pc-post-wound`` — the wound's abort decision record is durable and
  the victim's local locks are released, but the deferred retry requeue
  is not (the successor requeues the victim from its DEFERRED document;
  the retry clears the wound's abort record on entry).
* ``2pc-concurrent-prepare`` — coordinator entering the prepare fan-out
  while other cross-shard transactions are mid-protocol on the same
  shard: the multi-prepare in-flight window wound-wait opened (the
  serialisation ticket used to forbid it).

Crashes *inside* a ``multi`` are not modelled: ZooKeeper applies a multi
atomically through its transaction log, so the real system never observes
a torn group commit.

Beyond controller crashes, :class:`FaultyEnsemble` injects *ensemble-side*
faults scheduled by coordination-operation count (deterministic for a
deterministic workload): session expiry of whichever session issues the
k-th operation, one-shot connection loss, op-latency spikes, and quorum
partitions (a majority of servers crashed for a span of operations, then
restarted).  These exercise the recovery paths — session re-establishment,
watch re-arming, election re-entry, replica re-bootstrap — rather than the
crash-replay paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore, WriteBatch
from repro.coordination.queue import DistributedQueue
from repro.core.controller import (
    PIPELINE_POST_FLUSH_PRE_ACK,
    PIPELINE_PRE_FLUSH,
    PIPELINE_WINDOW_CRASH,
    PRE_DISPATCH,
    TWOPC_CONCURRENT_PREPARE,
    TWOPC_POST_DECISION,
    TWOPC_POST_PREPARE,
    TWOPC_POST_WOUND,
    TWOPC_PRE_DECISION,
    TWOPC_PRE_PREPARE,
    TWOPC_PRE_WOUND,
)
from repro.core.persistence import TropicStore

PRE_COMMIT = "pre-commit"
POST_COMMIT_PRE_ACK = "post-commit-pre-ack"
PRE_CHECKPOINT = "pre-checkpoint"
MID_CHECKPOINT = "mid-checkpoint"

#: Named failure points reachable by any workload, in main-loop order.
FAILURE_POINTS = (
    PRE_COMMIT,
    POST_COMMIT_PRE_ACK,
    PRE_CHECKPOINT,
    MID_CHECKPOINT,
    PRE_DISPATCH,
)

#: Crash edges of the pipelined write path.  The first two are reachable
#: by any workload at any ``pipeline_depth``; ``pipeline-window-crash``
#: requires ``pipeline_depth > 1`` (a seal can only find an older sealed
#: step in the window when flushes are deferred).
PIPELINE_FAILURE_POINTS = (
    PIPELINE_PRE_FLUSH,
    PIPELINE_POST_FLUSH_PRE_ACK,
    PIPELINE_WINDOW_CRASH,
)

#: Protocol edges of cross-shard two-phase commit (reachable only by
#: workloads containing cross-shard transactions under policy ``2pc``).
TWOPC_FAILURE_POINTS = (
    TWOPC_PRE_PREPARE,
    TWOPC_POST_PREPARE,
    TWOPC_PRE_DECISION,
    TWOPC_POST_DECISION,
    TWOPC_PRE_WOUND,
    TWOPC_POST_WOUND,
    TWOPC_CONCURRENT_PREPARE,
)

ALL_FAILURE_POINTS = (
    FAILURE_POINTS + PIPELINE_FAILURE_POINTS + TWOPC_FAILURE_POINTS
)


class CrashPoint(Exception):
    """An injected controller crash.

    Deliberately *not* a :class:`~repro.common.errors.ReproError`: service
    loops retry those, whereas a crash must surface to the test harness so
    it can abandon the instance (the process died).
    """

    def __init__(self, point: str, occurrence: int):
        super().__init__(f"injected crash at {point} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


class FaultInjector:
    """Counts hits of each failure point and raises when an armed one is
    reached.  Occurrence counting makes runs reproducible: arming
    ``(point, k)`` always crashes at the same place of the same workload."""

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        self._hits: dict[str, int] = {}
        self.fired: list[CrashPoint] = []
        #: Set when a crash fires.  Faulty wrappers become *inert* once
        #: dead: a dying controller unwinds through batch context managers
        #: whose exits would otherwise commit the very writes the crash was
        #: supposed to lose (a dead process writes nothing).
        self.dead = False

    def arm(self, point: str, occurrence: int = 0) -> "FaultInjector":
        if point not in ALL_FAILURE_POINTS:
            raise ValueError(
                f"unknown failure point {point!r}; choose from {ALL_FAILURE_POINTS}"
            )
        self._armed[point] = occurrence
        self.dead = False
        return self

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def hits(self, point: str) -> int:
        return self._hits.get(point, 0)

    def hit(self, point: str) -> None:
        """Record one pass through ``point``; crash if armed for it."""
        count = self._hits.get(point, 0)
        self._hits[point] = count + 1
        target = self._armed.get(point)
        if target is not None and count == target:
            del self._armed[point]
            crash = CrashPoint(point, count)
            self.fired.append(crash)
            self.dead = True
            raise crash


class FaultyKVStore(KVStore):
    """KV store whose group commits pass through ``pre-commit``.

    The hit happens *before* the buffered operations are applied, so a
    crash here loses the whole batch — exactly a process death before the
    ``multi`` reaches the coordination service.
    """

    def __init__(self, client, prefix: str, injector: FaultInjector):
        super().__init__(client, prefix)
        self.injector = injector

    def flush(self) -> int:
        if self.injector.dead:
            # The process is dead: its buffered group commit is lost, not
            # applied by the unwinding batch context manager.
            if self._batch is not None and not self._batch.is_empty():
                self._batch = WriteBatch()
            return 0
        batch = self._batch
        if batch is not None and not batch.is_empty():
            self.injector.hit(PRE_COMMIT)
        return super().flush()

    def put_serialized(self, key: str, data: str) -> None:
        if self.injector.dead:
            return
        super().put_serialized(key, data)

    def delete(self, key: str, recursive: bool = False) -> None:
        if self.injector.dead:
            return
        super().delete(key, recursive)


class FaultyTropicStore(TropicStore):
    """Persistence facade wrapping checkpoints with the checkpoint points."""

    def __init__(self, kv: KVStore, injector: FaultInjector, **kwargs):
        super().__init__(kv, **kwargs)
        self.injector = injector

    def save_checkpoint_incremental(self, model, applied_seq: int) -> int:
        self.injector.hit(PRE_CHECKPOINT)
        written = super().save_checkpoint_incremental(model, applied_seq)
        # The checkpoint multi committed; the controller has not yet
        # truncated the applied log nor updated its counters.
        self.injector.hit(MID_CHECKPOINT)
        return written


class FaultyQueue(DistributedQueue):
    """inputQ wrapper crashing between group commit and acknowledgment."""

    def __init__(self, client, path: str, injector: FaultInjector, clock=None):
        super().__init__(client, path, clock)
        self.injector = injector

    def ack_many(self, names: list[str]) -> int:
        if self.injector.dead:
            return 0
        if names:
            self.injector.hit(POST_COMMIT_PRE_ACK)
        return super().ack_many(names)

    def ack(self, name: str) -> bool:
        if self.injector.dead:
            return False
        self.injector.hit(POST_COMMIT_PRE_ACK)
        return super().ack(name)


# ----------------------------------------------------------------------
# Ensemble-side faults
# ----------------------------------------------------------------------

#: Ensemble fault kinds schedulable on a :class:`FaultyEnsemble`.
EXPIRE_SESSION = "expire-session"
CONNECTION_LOSS = "connection-loss"
LATENCY_SPIKE = "latency-spike"
PARTITION = "partition"

ENSEMBLE_FAULT_KINDS = (
    EXPIRE_SESSION,
    CONNECTION_LOSS,
    LATENCY_SPIKE,
    PARTITION,
)


@dataclass
class _ScheduledFault:
    at_op: int
    kind: str
    duration: int = 0
    value: float = 0.0


class EnsembleFaultSchedule:
    """Schedules ensemble faults by global coordination-operation count.

    Operation counting (every read/write prepare bumps the counter) makes
    the schedule deterministic for a deterministic workload: the fault
    always fires at the same protocol position.  Victims are *implicit* —
    an ``expire-session`` fault expires whichever session issues the
    trigger operation, which is exactly how real expiries land: on the
    component that happens to be talking to the ensemble.
    """

    def __init__(self, ensemble: "FaultyEnsemble"):
        self.ensemble = ensemble
        self.op_count = 0
        self._events: list[_ScheduledFault] = []
        #: ``(op_count, kind)`` of every fault fired, for assertions.
        self.fired: list[tuple[int, str]] = []
        self._latency_until: int | None = None
        self._base_latency = 0.0
        self._partition_until: int | None = None
        self._partitioned: list[int] = []

    # -- scheduling ----------------------------------------------------

    def expire_session_at(self, op: int) -> "EnsembleFaultSchedule":
        """Expire the session issuing the ``op``-th operation (it raises
        ``SessionExpiredError`` and must reconnect/re-arm/re-elect)."""
        self._events.append(_ScheduledFault(op, EXPIRE_SESSION))
        return self

    def connection_loss_at(self, op: int) -> "EnsembleFaultSchedule":
        """Fail the ``op``-th operation with ``ConnectionError`` (transient:
        the operation provably did not take effect)."""
        self._events.append(_ScheduledFault(op, CONNECTION_LOSS))
        return self

    def latency_spike_at(
        self, op: int, latency: float, duration: int
    ) -> "EnsembleFaultSchedule":
        """Charge ``latency`` seconds per operation for ``duration`` ops."""
        self._events.append(_ScheduledFault(op, LATENCY_SPIKE, duration, latency))
        return self

    def partition_at(self, op: int, duration: int) -> "EnsembleFaultSchedule":
        """Crash a majority of servers at the ``op``-th operation (quorum
        loss: every operation raises ``QuorumLostError``) and restart them
        ``duration`` operation *attempts* later."""
        self._events.append(_ScheduledFault(op, PARTITION, duration))
        return self

    def pending(self) -> int:
        return len(self._events)

    def cancel_pending(self) -> None:
        """Drop unfired events and undo any still-active degradation
        (latency spike, partition) so post-run verification reads see a
        healthy ensemble.  Fired history is kept."""
        self._events.clear()
        if self._latency_until is not None:
            self.ensemble.op_latency = self._base_latency
            self._latency_until = None
        if self._partition_until is not None:
            for index in self._partitioned:
                self.ensemble.restart_server(index)
            self._partitioned = []
            self._partition_until = None

    # -- the hook ------------------------------------------------------

    def before_op(self, session_id: str) -> None:
        self.op_count += 1
        now = self.op_count
        ensemble = self.ensemble
        if self._latency_until is not None and now >= self._latency_until:
            ensemble.op_latency = self._base_latency
            self._latency_until = None
        if self._partition_until is not None and now >= self._partition_until:
            for index in self._partitioned:
                ensemble.restart_server(index)
            self._partitioned = []
            self._partition_until = None
        due = [event for event in self._events if event.at_op <= now]
        for event in due:
            self._events.remove(event)
            self.fired.append((now, event.kind))
            if event.kind == EXPIRE_SESSION:
                # The triggering operation proceeds into the session check
                # and raises SessionExpiredError there.
                ensemble.expire_session(session_id)
            elif event.kind == CONNECTION_LOSS:
                raise ConnectionError(
                    f"injected connection loss at coordination op {now}"
                )
            elif event.kind == LATENCY_SPIKE:
                if self._latency_until is None:
                    self._base_latency = ensemble.op_latency
                ensemble.op_latency = event.value
                self._latency_until = now + max(event.duration, 1)
            elif event.kind == PARTITION:
                # Crash servers (healthy-last order) until quorum is lost;
                # the triggering op then raises QuorumLostError.  Counting
                # continues on every *attempt*, so retrying clients drive
                # the partition to heal.
                for index in range(len(ensemble.servers)):
                    if ensemble.has_quorum():
                        ensemble.crash_server(index)
                        self._partitioned.append(index)
                self._partition_until = now + max(event.duration, 1)


class FaultyEnsemble(CoordinationEnsemble):
    """Coordination ensemble with an operation-scheduled fault plan.

    Drop-in replacement for :class:`~repro.coordination.ensemble.
    CoordinationEnsemble` (pass it as the platform's ``ensemble``); faults
    are scheduled on :attr:`fault_schedule` before or during the workload.
    """

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.fault_schedule = EnsembleFaultSchedule(self)

    def _prepare_read(self, session_id: str):
        self.fault_schedule.before_op(session_id)
        return super()._prepare_read(session_id)

    def _prepare_write(self, session_id: str, payload_bytes: int = 0):
        self.fault_schedule.before_op(session_id)
        return super()._prepare_write(session_id, payload_bytes)
